# Developer conveniences; everything also works as plain pytest/python calls.

.PHONY: install test bench examples experiments serve-smoke cluster-smoke chaos-smoke recovery-smoke bench-core-smoke bench-eval-smoke bench-batch-smoke bench-ingest-smoke ci lint clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

experiments:
	python -m repro.cli experiment all --scale 0.5 --instances 15

# Boot the real HTTP server in a subprocess and hit every endpoint.
serve-smoke:
	python scripts/serve_smoke.py

# Gateway + 2 shard workers vs the single-process server: responses
# must be byte-identical across topologies, health/metrics aggregated.
cluster-smoke:
	python scripts/cluster_smoke.py

# Overload / failing-backend / reload / drain scenarios with SLO checks.
chaos-smoke:
	PYTHONPATH=src python -m repro.serve.chaos --suite load

# Crash-recovery invariants: kill -9 mid-ingest, torn WAL writes, full
# disks, cache-backend outages.  Nonzero exit (with the scenario's seed
# printed) on any acked-then-lost delta or recovery mismatch.
recovery-smoke:
	PYTHONPATH=src python -m repro.serve.chaos --suite durability

# Batch-OMP kernel vs reference: identical selections + >= 1x warm speedup.
bench-core-smoke:
	PYTHONPATH=src python scripts/bench_core_smoke.py

# ROUGE eval kernel vs reference: bitwise-equal scores + >= 1x speedup.
bench-eval-smoke:
	PYTHONPATH=src python scripts/bench_eval_smoke.py

# Cross-request batch solver + pre-screen: identical selections, and on
# a >= 4-CPU runner the 16-burst amortisation floor.
bench-batch-smoke:
	PYTHONPATH=src python scripts/bench_batch_smoke.py

# Incremental ingest: delta re-warm byte-identical to a cold rebuild,
# and on a >= 4-CPU runner a 4x re-warm speedup floor.
bench-ingest-smoke:
	PYTHONPATH=src python scripts/bench_ingest_smoke.py

# Mirrors .github/workflows/ci.yml: the test matrix plus the lint job.
# Lint is skipped with a notice when ruff is not installed locally.
ci: test lint

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI still runs it)"; \
	fi

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
