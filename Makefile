# Developer conveniences; everything also works as plain pytest/python calls.

.PHONY: install test bench examples experiments clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

experiments:
	python -m repro.cli experiment all --scale 0.5 --instances 15

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
