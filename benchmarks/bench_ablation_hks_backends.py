"""Ablation: exact TargetHkS backends (HiGHS MILP vs from-scratch B&B).

Both backends solve Eq. 7 exactly under a time limit; this bench compares
their runtime and agreement across graph sizes, plus the greedy
heuristic's speed.  Expected shape: identical objective values wherever
both prove optimality, with the combinatorial B&B fastest on small graphs
and the MILP scaling more gracefully; greedy is orders of magnitude
faster than either.
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.eval.reporting import format_table
from repro.graph.target_hks import solve_greedy, solve_ilp


def _random_weights(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    distances = rng.uniform(0, 10, (n, n))
    distances = (distances + distances.T) / 2
    np.fill_diagonal(distances, 0)
    weights = distances.max() - distances
    np.fill_diagonal(weights, 0)
    return weights


def _run_backends(sizes=(8, 12, 16), k: int = 5, trials: int = 3):
    rows = []
    mismatches = 0
    for n in sizes:
        timings = {"milp": [], "bnb": [], "greedy": []}
        for trial in range(trials):
            weights = _random_weights(n, seed=100 * n + trial)
            start = time.perf_counter()
            milp = solve_ilp(weights, k, backend="milp", time_limit=30)
            timings["milp"].append(time.perf_counter() - start)
            start = time.perf_counter()
            bnb = solve_ilp(weights, k, backend="bnb", time_limit=30)
            timings["bnb"].append(time.perf_counter() - start)
            start = time.perf_counter()
            greedy = solve_greedy(weights, k)
            timings["greedy"].append(time.perf_counter() - start)
            if milp.proven_optimal and bnb.proven_optimal:
                if abs(milp.weight - bnb.weight) > 1e-6:
                    mismatches += 1
            assert greedy.weight <= max(milp.weight, bnb.weight) + 1e-9
        rows.append(
            [
                n,
                f"{np.mean(timings['milp']) * 1000:.1f}",
                f"{np.mean(timings['bnb']) * 1000:.1f}",
                f"{np.mean(timings['greedy']) * 1000:.3f}",
            ]
        )
    return rows, mismatches


def test_ablation_hks_backends(benchmark, capsys):
    rows, mismatches = benchmark.pedantic(_run_backends, rounds=1, iterations=1)
    assert mismatches == 0, "exact backends disagreed on a proven-optimal instance"
    text = format_table(
        ["n", "MILP ms", "B&B ms", "Greedy ms"],
        rows,
        title="Ablation: exact TargetHkS backends, k=5 (mean over 3 graphs)",
    )
    emit("ablation_hks_backends", text, capsys)
