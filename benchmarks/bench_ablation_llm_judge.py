"""Ablation: the simulated LLM-judge baseline vs CompaReSetS+ (§4.6.2).

Measures the pairwise-judgment budget the greedy LLM strategy spends and
the alignment it buys, across hallucination (flip) rates, against
CompaReSetS+ on the same instances.  Expected shape: the faithful judge
is competitive on target-vs-comparative ROUGE (it optimises text
similarity directly) but spends thousands of judgments per instance where
CompaReSetS+ spends none; alignment degrades monotonically as the flip
rate rises — the cost/reliability trade-off the paper's §4.6.2 argues
qualitatively.
"""

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.core.selection import make_selector
from repro.eval.alignment import mean_alignment, target_vs_comparative_alignment
from repro.eval.reporting import format_table
from repro.eval.runner import prepare_instances
from repro.llm_sim import LlmJudgeSelector, NoisyRougeJudge

FLIP_RATES = (0.0, 0.25, 0.5, 1.0)


def _run_llm_comparison():
    instances = prepare_instances(BENCH_SETTINGS, "Cellphone")
    config = BENCH_SETTINGS.config.with_(max_reviews=3)

    rows = []
    plus = make_selector("CompaReSetS+")
    plus_results = [plus.select(inst, config) for inst in instances]
    plus_score = mean_alignment(
        [target_vs_comparative_alignment(r) for r in plus_results]
    )
    rows.append(["CompaReSetS+", "-", f"{plus_score.rouge_1 * 100:.2f}",
                 f"{plus_score.rouge_l * 100:.2f}"])

    flip_scores = {}
    for flip in FLIP_RATES:
        judge = NoisyRougeJudge(flip_probability=flip, seed=11)
        selector = LlmJudgeSelector(judge)
        results = [selector.select(inst, config) for inst in instances]
        score = mean_alignment(
            [target_vs_comparative_alignment(r) for r in results]
        )
        flip_scores[flip] = score.rouge_1
        rows.append(
            [
                f"LLM-Judge flip={flip:.2f}",
                f"{judge.calls / len(instances):.0f}",
                f"{score.rouge_1 * 100:.2f}",
                f"{score.rouge_l * 100:.2f}",
            ]
        )
    return rows, flip_scores


def test_ablation_llm_judge(benchmark, capsys):
    rows, flip_scores = benchmark.pedantic(_run_llm_comparison, rounds=1, iterations=1)
    # Hallucination monotonically destroys the judged selection's value.
    assert flip_scores[0.0] > flip_scores[1.0]
    assert flip_scores[0.25] >= flip_scores[1.0] - 1e-9
    # The fully hallucinating judge is no better than noise.
    judged_calls = [float(r[1]) for r in rows if r[1] != "-"]
    assert all(calls > 0 for calls in judged_calls)

    text = format_table(
        ["Strategy", "judgments/instance", "T-R1", "T-RL"],
        rows,
        title="Ablation: simulated LLM-judge selection vs CompaReSetS+ (Cellphone, m=3)",
    )
    emit("ablation_llm_judge", text, capsys)
