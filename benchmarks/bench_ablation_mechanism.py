"""Ablation: *why* each selector scores the ROUGE it does.

Reports the coverage/synchronisation diagnostics of
:mod:`repro.eval.coverage` for every selector, including the related-work
coverage baselines.  Expected shape: each algorithm maximises the
quantity its objective encodes — Comprehensive tops within-item aspect
coverage, CRS tops polarity balance (characteristic opinion mix),
CompaReSetS+ tops cross-item aspect overlap (synchronisation) among the
paper's methods — which is the mechanism story behind Table 3.
"""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.core.selection import make_selector
from repro.eval.coverage import (
    aspect_coverage,
    cross_item_overlap,
    polarity_balance,
    redundancy,
)
from repro.eval.reporting import format_table
from repro.eval.runner import prepare_instances

ALGORITHMS = (
    "Random",
    "Comprehensive",
    "PolarityCoverage",
    "CRS",
    "CompaReSetS_Greedy",
    "CompaReSetS",
    "CompaReSetS+",
)


def _run_mechanism():
    instances = prepare_instances(BENCH_SETTINGS, "Cellphone")
    config = BENCH_SETTINGS.config.with_(max_reviews=3)
    rows = []
    for name in ALGORITHMS:
        selector = make_selector(name)
        rng = np.random.default_rng(0)
        results = [selector.select(inst, config, rng=rng) for inst in instances]
        rows.append(
            [
                name,
                f"{np.mean([aspect_coverage(r) for r in results]):.3f}",
                f"{np.mean([cross_item_overlap(r) for r in results]):.3f}",
                f"{np.mean([polarity_balance(r) for r in results]):.3f}",
                f"{np.mean([redundancy(r) for r in results]):.3f}",
            ]
        )
    return rows


def test_ablation_mechanism(benchmark, capsys):
    rows = benchmark.pedantic(_run_mechanism, rounds=1, iterations=1)
    by_name = {row[0]: [float(v) for v in row[1:]] for row in rows}
    coverage_col, overlap_col, balance_col, _ = range(4)

    # Comprehensive exists to maximise within-item coverage.
    assert by_name["Comprehensive"][coverage_col] == max(
        values[coverage_col] for values in by_name.values()
    )
    # CRS matches the opinion mix better than Random.
    assert by_name["CRS"][balance_col] > by_name["Random"][balance_col]
    # CompaReSetS+ synchronises at least as much as CRS and CompaReSetS.
    assert by_name["CompaReSetS+"][overlap_col] >= by_name["CRS"][overlap_col] - 1e-9
    assert (
        by_name["CompaReSetS+"][overlap_col]
        >= by_name["CompaReSetS"][overlap_col] - 1e-9
    )

    text = format_table(
        ["Algorithm", "aspect coverage", "cross-item overlap", "polarity balance", "redundancy"],
        rows,
        title="Ablation: selection mechanisms (Cellphone, m=3)",
    )
    emit("ablation_mechanism", text, capsys)
