"""Ablation: the two readings of Algorithm 1 (literal vs weighted).

DESIGN.md documents an ambiguity in the paper's Algorithm 1: the target
Upsilon is written without lambda/mu scalings while the matrix rows carry
them, and line 10's acceptance compares in that unweighted space.  This
bench runs both readings and reports alignment plus the Eq.-5 objective.
Expected shape: the *literal* reading synchronises (higher among-items
ROUGE than plain CompaReSetS at tuned mu); the *weighted* reading mostly
refines the fit and does not improve alignment.
"""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.objective import compare_sets_plus_objective
from repro.eval.alignment import (
    among_items_alignment,
    mean_alignment,
    target_vs_comparative_alignment,
)
from repro.eval.reporting import format_table
from repro.eval.runner import prepare_instances


def _run_variants():
    instances = prepare_instances(BENCH_SETTINGS, "Cellphone")
    config = BENCH_SETTINGS.config.with_(max_reviews=3)
    rows = []
    baseline = [CompareSetsSelector().select(inst, config) for inst in instances]
    rows.append(("CompaReSetS (init)", baseline))
    for variant in ("literal", "weighted"):
        selector = CompareSetsPlusSelector(variant=variant)
        rows.append(
            (f"CompaReSetS+ [{variant}]", [selector.select(i, config) for i in instances])
        )
    table = []
    for label, results in rows:
        target = mean_alignment([target_vs_comparative_alignment(r) for r in results])
        among = mean_alignment([among_items_alignment(r) for r in results])
        objective = float(
            np.mean([compare_sets_plus_objective(r, config) for r in results])
        )
        table.append(
            [
                label,
                f"{target.rouge_1 * 100:.2f}",
                f"{among.rouge_1 * 100:.2f}",
                f"{among.rouge_l * 100:.2f}",
                f"{objective:.3f}",
            ]
        )
    return table


def test_ablation_plus_variant(benchmark, capsys):
    table = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    by_label = {row[0]: row for row in table}
    literal = by_label["CompaReSetS+ [literal]"]
    weighted = by_label["CompaReSetS+ [weighted]"]
    base = by_label["CompaReSetS (init)"]
    # The weighted variant strictly optimises Eq. 5.
    assert float(weighted[4]) <= float(base[4]) + 1e-6
    # The literal variant synchronises at least as well as the baseline.
    assert float(literal[2]) >= float(base[2]) - 0.15

    text = format_table(
        ["Variant", "T-R1", "A-R1", "A-RL", "Eq.5 objective"],
        table,
        title="Ablation: Algorithm 1 readings (Cellphone, m=3)",
    )
    emit("ablation_plus_variant", text, capsys)
