"""Ablation: Integer-Regression vs the exhaustive optimum vs greedy.

CompaReSetS is NP-complete, so the library approximates it; this bench
quantifies the approximation gap on instances small enough for the
brute-force solver.  Expected shape: the Integer-Regression objective
sits close to the optimum (mean ratio near 1) and below the greedy
baseline's, supporting the paper's choice of algorithm.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.core.baselines import GreedySelector, RandomSelector
from repro.core.compare_sets import CompareSetsSelector
from repro.core.exhaustive import ExhaustiveSelector
from repro.core.objective import compare_sets_objective
from repro.eval.reporting import format_table
from repro.eval.runner import prepare_instances

SMALL_SETTINGS = replace(BENCH_SETTINGS, max_instances=15, max_comparisons=4)


def _run_quality():
    instances = prepare_instances(SMALL_SETTINGS, "Cellphone")
    config = SMALL_SETTINGS.config.with_(max_reviews=2)

    exhaustive = ExhaustiveSelector()
    optima = np.array(
        [
            compare_sets_objective(exhaustive.select(inst, config), config)
            for inst in instances
        ]
    )

    rows = []
    rng = np.random.default_rng(0)
    for selector in (CompareSetsSelector(), GreedySelector(), RandomSelector()):
        objectives = np.array(
            [
                compare_sets_objective(selector.select(inst, config, rng=rng), config)
                for inst in instances
            ]
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(optima > 1e-9, objectives / optima, 1.0)
        rows.append(
            [
                selector.name,
                f"{objectives.mean():.4f}",
                f"{float(np.mean(ratios)):.3f}",
                f"{float(np.max(ratios)):.3f}",
            ]
        )
    rows.insert(
        0, [exhaustive.name, f"{optima.mean():.4f}", "1.000", "1.000"]
    )
    return rows


def test_ablation_regression_quality(benchmark, capsys):
    rows = benchmark.pedantic(_run_quality, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}
    regression_mean_ratio = float(by_name["CompaReSetS"][2])
    greedy_mean_ratio = float(by_name["CompaReSetS_Greedy"][2])
    random_mean_ratio = float(by_name["Random"][2])
    assert regression_mean_ratio < 2.0
    assert regression_mean_ratio <= random_mean_ratio
    assert greedy_mean_ratio <= random_mean_ratio

    text = format_table(
        ["Algorithm", "mean Eq.1 objective", "mean ratio vs optimum", "worst ratio"],
        rows,
        title="Ablation: approximation quality on small instances (m=2)",
    )
    emit("ablation_regression_quality", text, capsys)
