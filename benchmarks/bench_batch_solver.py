"""Bench: cross-request batch solver + large-N candidate pre-screen.

Two workloads, both asserting byte-identical selections against the
sequential/reference paths:

* **burst sweep** — 1/4/16 concurrent *distinct* select requests
  (budgets m = 1..16) against one duplicate-heavy corpus generation,
  solved in one :func:`~repro.core.batch_solver.select_many` call vs one
  at a time through :class:`~repro.core.compare_sets.CompareSetsSelector`
  with the same shared artifacts.  Reports the amortised per-request cost
  and the burst total as a multiple of the heaviest single solve;
* **screen sweep** — one huge item at N = 1k/10k/50k reviews, the
  default provable pre-screen (``screen="provable"``) vs the Gram-free
  scipy-nnls reference, plus the unscreened kernel at N = 1k (the only
  size where its O(q^2) Gram is cheap enough to build).  Records the
  kept/total screen rate from the stage counters and the speedup.

Assertion floors are CPU-aware (cgroup quota respected): on a runner
with >= 4 effective CPUs the 16-burst must come in at <= 6x the heaviest
single solve; on starved CI only the overhead floor holds (batched no
slower than 1.5x sequential).  Archives ``results/BENCH_batch.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.bench_core_solver import _instance
from benchmarks.conftest import RESULTS_DIR, emit
from repro.core.batch_solver import BatchJob, select_many
from repro.core.compare_sets import CompareSetsSelector, select_for_item
from repro.core.omp_kernel import SolverArtifacts, StageTimer
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space

BURSTS = (1, 4, 16)
BURST_ITEMS = 4
BURST_REVIEWS = 400
SCREEN_SIZES = (1_000, 10_000, 50_000)
REPEATS = 3


def _effective_cpus() -> float:
    """CPUs actually usable: the cgroup quota when set, else the count."""
    try:
        quota, period = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota != "max":
            return max(1.0, float(quota) / float(period))
    except (OSError, ValueError):
        pass
    return float(os.cpu_count() or 1)


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        begun = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begun)
    return best, result


def _burst_sweep(rng):
    instance = _instance(rng, BURST_ITEMS, BURST_REVIEWS, 6, 2, rich=False)
    config = SelectionConfig()
    space = build_space(instance, config)
    artifacts = tuple(
        SolverArtifacts(space, reviews, config.lam)
        for reviews in instance.reviews
    )
    jobs = [
        BatchJob("CompaReSetS", SelectionConfig(max_reviews=m))
        for m in range(1, max(BURSTS) + 1)
    ]

    def clear():
        for item in artifacts:
            item.clear_solve_cache()

    def solo(job):
        clear()
        return CompareSetsSelector().select(
            instance, job.config, space=space, solver_artifacts=artifacts
        )

    # Warm the Gram blocks once; every timed run clears only the solve
    # memo, i.e. the serving layer's steady state for a fresh burst.
    select_many(instance, jobs, space=space, solver_artifacts=artifacts)
    heaviest_s, _ = _best_of(lambda: solo(jobs[-1]))

    rows = []
    for burst in BURSTS:
        batch = jobs[:burst]

        def batched():
            clear()
            return select_many(
                instance, batch, space=space, solver_artifacts=artifacts
            )

        def sequential():
            clear()
            return [
                CompareSetsSelector().select(
                    instance, job.config, space=space, solver_artifacts=artifacts
                )
                for job in batch
            ]

        batched_s, batched_results = _best_of(batched)
        sequential_s, sequential_results = _best_of(sequential)
        rows.append(
            {
                "burst": burst,
                "batched_ms": batched_s * 1e3,
                "sequential_ms": sequential_s * 1e3,
                "amortised_ms": batched_s * 1e3 / burst,
                "speedup_vs_sequential": sequential_s / batched_s,
                "multiplier_vs_one_solve": batched_s / heaviest_s,
                "identical": all(
                    ours.selections == theirs.selections
                    for ours, theirs in zip(batched_results, sequential_results)
                ),
            }
        )
    return {"heaviest_solo_ms": heaviest_s * 1e3, "rows": rows}


def _screen_sweep():
    config = SelectionConfig(max_reviews=5)
    rows = []
    for count in SCREEN_SIZES:
        rng = np.random.default_rng(7)
        instance = _instance(rng, 1, count, 12, 4, rich=True)
        space = build_space(instance, config)
        reviews = instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)

        screened = SolverArtifacts(space, reviews, config.lam, screen="provable")
        timer = StageTimer()

        def screened_once():
            screened.clear_solve_cache()
            return select_for_item(
                space, reviews, tau, gamma, config, artifacts=screened,
                timer=timer,
            )

        screened_s, screened_sel = _best_of(screened_once)
        reference_s, reference_sel = _best_of(
            lambda: select_for_item(
                space, reviews, tau, gamma, config, use_kernel=False
            ),
            repeats=2 if count >= 10_000 else REPEATS,
        )
        identical = screened_sel == reference_sel
        if count == SCREEN_SIZES[0]:
            # Small enough to afford the unscreened kernel's O(q^2) Gram:
            # pin screened == unscreened kernel too.
            unscreened = SolverArtifacts(
                space, reviews, config.lam, screen="off"
            )
            identical = identical and screened_sel == select_for_item(
                space, reviews, tau, gamma, config, artifacts=unscreened
            )
        total = timer.counters.get("screen_total", 0)
        kept = timer.counters.get("screen_kept", 0)
        rows.append(
            {
                "reviews": count,
                "unique_columns": screened.base_block().num_groups,
                "screened_ms": screened_s * 1e3,
                "reference_ms": reference_s * 1e3,
                "speedup": reference_s / screened_s,
                "screen_kept_fraction": kept / total if total else 1.0,
                "rechecks": timer.counters.get("screen_rechecks", 0),
                "promoted": timer.counters.get("screen_promoted", 0),
                "identical": identical,
            }
        )
    return rows


def run_batch():
    rng = np.random.default_rng(42)
    return {
        "effective_cpus": _effective_cpus(),
        "burst": _burst_sweep(rng),
        "screen": _screen_sweep(),
    }


def render(report) -> str:
    lines = [
        "Batch solver: GEMM-stacked bursts + large-N pre-screen "
        f"({report['effective_cpus']:.1f} effective CPUs)",
        f"{'burst':>5} {'batched ms':>11} {'seq ms':>8} {'amort ms':>9} "
        f"{'vs seq':>7} {'vs one':>7} {'identical':>9}",
    ]
    for row in report["burst"]["rows"]:
        lines.append(
            f"{row['burst']:>5} {row['batched_ms']:>11.2f} "
            f"{row['sequential_ms']:>8.2f} {row['amortised_ms']:>9.2f} "
            f"{row['speedup_vs_sequential']:>6.2f}x "
            f"{row['multiplier_vs_one_solve']:>6.2f}x "
            f"{str(row['identical']):>9}"
        )
    lines.append(
        f"{'N':>7} {'q':>7} {'screen ms':>10} {'ref ms':>9} {'speedup':>8} "
        f"{'kept':>6} {'identical':>9}"
    )
    for row in report["screen"]:
        lines.append(
            f"{row['reviews']:>7} {row['unique_columns']:>7} "
            f"{row['screened_ms']:>10.2f} {row['reference_ms']:>9.2f} "
            f"{row['speedup']:>7.1f}x {row['screen_kept_fraction']:>6.1%} "
            f"{str(row['identical']):>9}"
        )
    return "\n".join(lines)


def test_batch_solver(benchmark, capsys):
    report = benchmark.pedantic(run_batch, rounds=1, iterations=1)

    for row in report["burst"]["rows"]:
        assert row["identical"], f"burst {row['burst']} selection divergence"
    largest = report["burst"]["rows"][-1]
    if report["effective_cpus"] >= 4:
        assert largest["multiplier_vs_one_solve"] <= 6.0, largest
    # Overhead floor, CPU-independent: batching must never cost more than
    # a modest premium over solving the burst one request at a time.
    assert largest["batched_ms"] <= largest["sequential_ms"] * 1.5, largest

    for row in report["screen"]:
        assert row["identical"], f"screen divergence at N={row['reviews']}"
        assert 0.0 < row["screen_kept_fraction"] <= 1.0
    biggest = report["screen"][-1]
    assert biggest["screen_kept_fraction"] < 0.5, biggest
    assert biggest["speedup"] >= 3.0, biggest

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("batch_solver", render(report), capsys)
