"""Bench: replication availability — reads through a kill and a resize.

Boots real 3-shard :class:`~repro.serve.cluster.ServingCluster`
topologies at ``replicas=1`` and ``replicas=2`` and measures what
replication buys and what it costs:

* **Kill availability** — SIGKILL one primary while client threads
  hammer warmed reads on that shard's keys; report the fraction of
  requests answered 200 during a fixed outage window.  At ``replicas=1``
  the victim's keys 503 until the supervisor restarts the worker; at
  ``replicas=2`` the gateway fails reads over to the replica, so the
  bench asserts availability >= 0.99 and every non-200 stays inside
  {429, 503}.
* **Resize availability** — grow the ``replicas=2`` topology 3 -> 4
  live under the same read hammer; every concurrent status must stay
  inside {200, 429, 503} (503 only from the bounded ingest-stall /
  handover window, always retryable).
* **Cold-miss cost** — p50 latency of all-distinct cold selects on each
  topology before any chaos, so the artefact records what the extra
  replica fan-in costs on the read path (expected: ~nothing — reads go
  to one shard either way).

Archives ``results/BENCH_failover.json``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, emit
from repro.data.instances import build_instance
from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.cluster import ClusterConfig, ServingCluster
from repro.serve.supervisor import RestartPolicy

SHARDS = 3
KILL_WINDOW_S = 3.0
HAMMER_THREADS = 4
COLD_REQUESTS = 12


def _post(base: str, body: dict) -> int:
    request = urllib.request.Request(
        f"{base}/v1/select", data=json.dumps(body).encode()
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


def _cold_p50_ms(base: str, targets: list[str]) -> float:
    latencies = []
    for index in range(COLD_REQUESTS):
        body = {
            "target": targets[index % len(targets)],
            "mu": 0.1 + 0.003 * index,
        }
        begun = time.perf_counter()
        status = _post(base, body)
        assert status == 200, (status, body)
        latencies.append(time.perf_counter() - begun)
    latencies.sort()
    return latencies[len(latencies) // 2] * 1e3


def _hammer(base: str, targets: list[str], window_s: float) -> dict:
    """Drive warmed reads from HAMMER_THREADS for ``window_s`` seconds."""
    counts: dict[int, int] = {}
    lock = threading.Lock()
    stop_at = time.monotonic() + window_s

    def loop() -> None:
        index = 0
        while time.monotonic() < stop_at:
            status = _post(base, {"target": targets[index % len(targets)]})
            with lock:
                counts[status] = counts.get(status, 0) + 1
            index += 1

    threads = [threading.Thread(target=loop) for _ in range(HAMMER_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = sum(counts.values())
    return {
        "requests": total,
        "by_status": {str(status): n for status, n in sorted(counts.items())},
        "availability": counts.get(200, 0) / total if total else 0.0,
    }


def run_failover_bench() -> dict:
    corpus = generate_corpus("Toy", scale=0.3, seed=11)
    viable = [
        p.product_id
        for p in corpus.products
        if build_instance(corpus, p.product_id, 10, min_reviews=3)
    ]
    report: dict = {
        "corpus": {"products": len(corpus.products),
                   "reviews": len(corpus.reviews)},
        "shards": SHARDS,
        "kill_window_s": KILL_WINDOW_S,
        "topologies": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        for replicas in (1, 2):
            config = ClusterConfig(
                corpus_path=corpus_path,
                shards=SHARDS,
                replicas=replicas,
                state_dir=Path(tmp) / f"replicas-{replicas}",
                engine_options={"workers": 2},
                restart_policy=RestartPolicy(base_delay=0.5, max_restarts=10),
                resize_grace=0.2,
            )
            with ServingCluster(config) as cluster:
                cold_p50 = _cold_p50_ms(cluster.base_url, viable)
                victim = cluster.plan.preference(viable[0])[0]
                victim_keys = [
                    t for t in viable
                    if cluster.plan.preference(t)[0] == victim
                ] or viable[:1]
                # Warm the victim keys (and their replicas) so the
                # hammer measures availability, not solver latency.
                for target in victim_keys:
                    assert _post(cluster.base_url, {"target": target}) == 200
                cluster.kill_shard(victim)
                kill_stats = _hammer(
                    cluster.base_url, victim_keys, KILL_WINDOW_S
                )
                entry = {
                    "cold_p50_ms": cold_p50,
                    "victim_keys": len(victim_keys),
                    "kill": kill_stats,
                }
                if replicas == 2:
                    # Wait out the restart, then grow live under load.
                    deadline = time.monotonic() + 60.0
                    while cluster.restarts()[victim] < 1:
                        assert time.monotonic() < deadline
                        time.sleep(0.2)
                    resize_stats: dict = {}
                    hammer_result: list[dict] = []
                    thread = threading.Thread(
                        target=lambda: hammer_result.append(
                            _hammer(cluster.base_url, viable, KILL_WINDOW_S)
                        )
                    )
                    begun = time.perf_counter()
                    thread.start()
                    cluster.resize(SHARDS + 1)
                    resize_stats["resize_wall_s"] = time.perf_counter() - begun
                    thread.join()
                    resize_stats.update(hammer_result[0])
                    entry["resize"] = resize_stats
                report["topologies"][f"r{replicas}"] = entry
    r1 = report["topologies"]["r1"]
    r2 = report["topologies"]["r2"]
    report["kill_availability_gain"] = (
        r2["kill"]["availability"] - r1["kill"]["availability"]
    )
    report["cold_p50_delta_ms"] = r2["cold_p50_ms"] - r1["cold_p50_ms"]
    return report


def render(report: dict) -> str:
    r1 = report["topologies"]["r1"]
    r2 = report["topologies"]["r2"]
    lines = [
        f"Replication availability ({report['shards']} shards, "
        f"{report['kill_window_s']:.0f}s SIGKILL window)",
        f"{'topology':<10} {'cold p50 ms':>12} {'kill avail':>11} "
        f"{'requests':>9}",
    ]
    for name, row in (("r1", r1), ("r2", r2)):
        lines.append(
            f"{name:<10} {row['cold_p50_ms']:>12.1f} "
            f"{row['kill']['availability']:>10.1%} "
            f"{row['kill']['requests']:>9}"
        )
    resize = r2["resize"]
    lines.append(
        f"live resize 3->4: {resize['resize_wall_s']:.2f}s wall, "
        f"{resize['availability']:.1%} of {resize['requests']} concurrent "
        f"reads answered 200 (rest {resize['by_status']})"
    )
    lines.append(
        f"cold-miss p50 delta (r2 - r1): "
        f"{report['cold_p50_delta_ms']:+.1f} ms"
    )
    return "\n".join(lines)


def test_cluster_failover_availability(benchmark, capsys):
    report = benchmark.pedantic(run_failover_bench, rounds=1, iterations=1)

    r1 = report["topologies"]["r1"]
    r2 = report["topologies"]["r2"]
    # The replication guarantee: a dead primary is invisible to readers.
    assert r2["kill"]["availability"] >= 0.99, r2["kill"]
    assert set(r2["kill"]["by_status"]) <= {"200", "429", "503"}, r2["kill"]
    # At replicas=1 the same kill must surface as 503s, never 5xx junk.
    assert set(r1["kill"]["by_status"]) <= {"200", "429", "503"}, r1["kill"]
    # Live resize never leaks a status outside the contract.
    assert set(r2["resize"]["by_status"]) <= {"200", "429", "503"}, (
        r2["resize"]
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_failover.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("cluster_failover", render(report), capsys)
