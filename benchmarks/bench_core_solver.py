"""Bench: Gram-cached Batch-OMP kernel vs the scipy-nnls reference solver.

Two workloads, both asserting *byte-identical selections* between paths:

* single-item CompaReSetS solves over growing review counts N — the
  reference rebuilds the regression stack + dedup per solve, the kernel
  serves them from :class:`~repro.core.omp_kernel.SolverArtifacts`
  (``warm`` = artifacts prebuilt with the memoised solve results cleared
  per repeat, i.e. the serving layer's steady state; ``cold`` includes
  artifact construction);
* a CompaReSetS+ multi-sweep run on a duplicate-heavy instance — the
  alternating sweeps reuse the per-item Gram blocks and memoise repeated
  subproblems, while the reference re-stacks and re-dedups every inner
  iteration.

Archives ``results/BENCH_core.json``.  Expected shape: warm single-item
speedup >= 3x from N = 500 up, and >= 5x for the multi-sweep run.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, emit
from repro.core.compare_sets import select_for_item
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.omp_kernel import SolverArtifacts
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.data.instances import ComparisonInstance
from repro.data.models import AspectMention, Product, Review

SINGLE_SIZES = (200, 500, 1000)
PLUS_ITEMS = 5
PLUS_REVIEWS = 500
REPEATS = 5


def _reviews(rng, item, count, aspects, max_width, rich):
    reviews = []
    for index in range(count):
        width = int(rng.integers(1, max_width + 1))
        chosen = sorted(rng.choice(len(aspects), size=width, replace=False))
        if rich:
            mentions = tuple(
                AspectMention(
                    aspects[a],
                    int(rng.integers(-1, 2)),
                    float(rng.integers(1, 4)) / 2,
                )
                for a in chosen
            )
        else:
            mentions = tuple(
                AspectMention(aspects[a], int(rng.choice((-1, 1))))
                for a in chosen
            )
        reviews.append(
            Review(f"r{item}-{index}", f"p{item}", "u", 4.0, "t", mentions)
        )
    return tuple(reviews)


def _instance(rng, items, count, num_aspects, max_width, rich):
    aspects = tuple(f"a{i}" for i in range(num_aspects))
    products = tuple(Product(f"p{i}", f"P{i}", "C") for i in range(items))
    return ComparisonInstance(
        products=products,
        reviews=tuple(
            _reviews(rng, i, count, aspects, max_width, rich)
            for i in range(items)
        ),
    )


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        begun = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begun)
    return best, result


def run_core():
    rng = np.random.default_rng(42)
    config = SelectionConfig(max_reviews=5)

    single = []
    for count in SINGLE_SIZES:
        # Rich mention sets (12 aspects, widths 1-4, graded strengths):
        # many distinct columns, so the reference's per-solve stack + dedup
        # costs scale with N.
        instance = _instance(rng, 1, count, 12, 4, rich=True)
        space = build_space(instance, config)
        reviews = instance.reviews[0]
        tau = space.opinion_vector(reviews)
        gamma = space.aspect_vector(reviews)

        ref_s, ref_sel = _best_of(
            lambda: select_for_item(
                space, reviews, tau, gamma, config, use_kernel=False
            )
        )
        cold_s, cold_sel = _best_of(
            lambda: select_for_item(space, reviews, tau, gamma, config)
        )
        shared = SolverArtifacts(space, reviews, config.lam)

        def warm_once():
            shared.clear_solve_cache()
            return select_for_item(
                space, reviews, tau, gamma, config, artifacts=shared
            )

        warm_s, warm_sel = _best_of(warm_once)
        single.append(
            {
                "reviews": count,
                "reference_ms": ref_s * 1e3,
                "kernel_cold_ms": cold_s * 1e3,
                "kernel_warm_ms": warm_s * 1e3,
                "speedup_warm": ref_s / warm_s,
                "identical": ref_sel == cold_sel == warm_sel,
            }
        )

    # Duplicate-heavy items (6 aspects, widths 1-2, binary sentiment):
    # review populations collapse onto few unique columns, the shape the
    # Gram cache is built for.
    plus_config = SelectionConfig(max_reviews=5, sweeps=3)
    instance = _instance(rng, PLUS_ITEMS, PLUS_REVIEWS, 6, 2, rich=False)
    space = build_space(instance, plus_config)
    artifacts = tuple(
        SolverArtifacts(space, reviews, plus_config.lam)
        for reviews in instance.reviews
    )

    ref_s, ref_result = _best_of(
        lambda: CompareSetsPlusSelector(use_kernel=False).select(
            instance, plus_config, space=space
        ),
        repeats=3,
    )
    cold_s, cold_result = _best_of(
        lambda: CompareSetsPlusSelector(use_kernel=True).select(
            instance, plus_config
        ),
        repeats=3,
    )

    def warm_plus():
        for item in artifacts:
            item.clear_solve_cache()
        return CompareSetsPlusSelector(use_kernel=True).select(
            instance, plus_config, space=space, solver_artifacts=artifacts
        )

    warm_s, warm_result = _best_of(warm_plus, repeats=3)
    plus = {
        "items": PLUS_ITEMS,
        "reviews_per_item": PLUS_REVIEWS,
        "sweeps": plus_config.sweeps,
        "reference_ms": ref_s * 1e3,
        "kernel_cold_ms": cold_s * 1e3,
        "kernel_warm_ms": warm_s * 1e3,
        "speedup_warm": ref_s / warm_s,
        "identical": ref_result.selections
        == cold_result.selections
        == warm_result.selections,
    }
    return {
        "single_item": single,
        "plus_sweep": plus,
        "stage_ms": {
            stage: round(ms, 3) for stage, ms in warm_result.timings.items()
        },
    }


def render(report) -> str:
    lines = [
        "Core solver: Gram-cached Batch-OMP kernel vs scipy-nnls reference",
        f"{'workload':<22} {'ref ms':>8} {'cold ms':>8} {'warm ms':>8} "
        f"{'speedup':>8} {'identical':>9}",
    ]
    for row in report["single_item"]:
        lines.append(
            f"{'single N=' + str(row['reviews']):<22} "
            f"{row['reference_ms']:>8.2f} {row['kernel_cold_ms']:>8.2f} "
            f"{row['kernel_warm_ms']:>8.2f} {row['speedup_warm']:>7.1f}x "
            f"{str(row['identical']):>9}"
        )
    row = report["plus_sweep"]
    label = f"plus {row['items']}x{row['reviews_per_item']} s={row['sweeps']}"
    lines.append(
        f"{label:<22} {row['reference_ms']:>8.2f} {row['kernel_cold_ms']:>8.2f} "
        f"{row['kernel_warm_ms']:>8.2f} {row['speedup_warm']:>7.1f}x "
        f"{str(row['identical']):>9}"
    )
    stages = ", ".join(
        f"{stage}={ms:.2f}" for stage, ms in report["stage_ms"].items()
    )
    lines.append(f"warm plus stage ms: {stages}")
    return "\n".join(lines)


def test_core_solver(benchmark, capsys):
    report = benchmark.pedantic(run_core, rounds=1, iterations=1)

    for row in report["single_item"]:
        assert row["identical"], f"selection divergence at N={row['reviews']}"
        if row["reviews"] >= 500:
            assert row["speedup_warm"] >= 3.0, row
    assert report["plus_sweep"]["identical"], "plus-sweep selection divergence"
    assert report["plus_sweep"]["speedup_warm"] >= 5.0, report["plus_sweep"]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_core.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("core_solver", render(report), capsys)
