"""Bench: interned-token ROUGE kernel vs the pure-Python alignment path.

Two workloads, both asserting *bitwise-identical scores* between paths:

* a Table-3-style all-pairs alignment sweep — every selector result's
  cross-item review-pair grid scored for both views, kernel
  (:class:`~repro.eval.alignment.AlignmentScorer`) vs the reference
  pair loop (``use_kernel=False``); each timed run builds a fresh scorer
  so interning/tokenisation costs are inside the measurement;
* the end-to-end Table 3 driver (solve + score + t-tests) on one
  category, kernel scorer vs reference scorer.

Archives ``results/BENCH_eval.json``.  Expected shape: >= 3x on the
alignment sweep, >= 2x end-to-end (alignment dominates the driver's
wall clock, solving does not speed up).
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, emit
from repro.eval.alignment import AlignmentScorer
from repro.eval.runner import EvaluationSettings, evaluate_selectors, prepare_instances
from repro.experiments.table3 import run_table3

ALIGN_ALGORITHMS = ("Random", "CompaReSetS")
ALIGN_SETTINGS = EvaluationSettings(
    categories=("Cellphone",),
    scale=0.8,
    seed=7,
    max_instances=20,
    max_comparisons=8,
    min_reviews=3,
    budgets=(5, 10),
)
TABLE3_SETTINGS = EvaluationSettings(
    categories=("Cellphone",),
    scale=0.8,
    seed=7,
    max_instances=12,
    max_comparisons=8,
    min_reviews=3,
    budgets=(3, 5, 10),
)


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        begun = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begun)
    return best, result


def _alignment_workload():
    """All selector results of the sweep, solved once up front."""
    instances = prepare_instances(ALIGN_SETTINGS, ALIGN_SETTINGS.categories[0])
    results = []
    for budget in ALIGN_SETTINGS.budgets:
        config = ALIGN_SETTINGS.config.with_(max_reviews=budget)
        runs = evaluate_selectors(
            ALIGN_ALGORITHMS, instances, config, seed=ALIGN_SETTINGS.seed
        )
        for run in runs.values():
            results.extend(run.results)
    return results


def run_eval_bench():
    results = _alignment_workload()

    def score_all(use_kernel):
        scorer = AlignmentScorer(use_kernel=use_kernel)
        return [scorer.score_both(result) for result in results]

    ref_s, ref_scores = _best_of(lambda: score_all(False), repeats=2)
    ker_s, ker_scores = _best_of(lambda: score_all(True), repeats=3)
    pairs = sum(target.num_pairs for target, _ in ref_scores)
    alignment = {
        "results_scored": len(results),
        "target_pairs": pairs,
        "reference_s": ref_s,
        "kernel_s": ker_s,
        "speedup": ref_s / ker_s,
        "identical": ref_scores == ker_scores,
    }

    ref_e2e_s, ref_cells = _best_of(
        lambda: run_table3(
            TABLE3_SETTINGS, scorer=AlignmentScorer(use_kernel=False)
        ),
        repeats=1,
    )
    ker_e2e_s, ker_cells = _best_of(
        lambda: run_table3(TABLE3_SETTINGS), repeats=2
    )
    end_to_end = {
        "cells": len(ker_cells),
        "reference_s": ref_e2e_s,
        "kernel_s": ker_e2e_s,
        "speedup": ref_e2e_s / ker_e2e_s,
        "identical": ref_cells == ker_cells,
    }
    return {"alignment_sweep": alignment, "table3_end_to_end": end_to_end}


def render(report) -> str:
    a, e = report["alignment_sweep"], report["table3_end_to_end"]
    lines = [
        "Evaluation engine: interned-token ROUGE kernel vs pure-Python reference",
        f"{'workload':<26} {'ref s':>8} {'kernel s':>9} {'speedup':>8} {'identical':>9}",
        f"{'alignment sweep':<26} {a['reference_s']:>8.2f} {a['kernel_s']:>9.2f} "
        f"{a['speedup']:>7.1f}x {str(a['identical']):>9}",
        f"{'table3 end-to-end':<26} {e['reference_s']:>8.2f} {e['kernel_s']:>9.2f} "
        f"{e['speedup']:>7.1f}x {str(e['identical']):>9}",
        f"({a['results_scored']} results scored both views, "
        f"{a['target_pairs']} target-view pairs; {e['cells']} table cells)",
    ]
    return "\n".join(lines)


def test_eval_alignment(benchmark, capsys):
    report = benchmark.pedantic(run_eval_bench, rounds=1, iterations=1)

    a, e = report["alignment_sweep"], report["table3_end_to_end"]
    assert a["identical"], "kernel alignment scores diverged from reference"
    assert a["speedup"] >= 3.0, a
    assert e["identical"], "table3 cells diverged between scorer paths"
    assert e["speedup"] >= 2.0, e

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_eval.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("eval_alignment", render(report), capsys)
