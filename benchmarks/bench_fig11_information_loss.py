"""Bench: regenerate Fig. 11 (information loss vs review budget m).

Measures Delta(tau_i, pi(S_i)) and cosine(tau_i, pi(S_i)) of
CompaReSetS+ selections for m in {3, 5, 10, 15, 20} on the Cellphone
workload.  Expected shape: Delta falls and cosine rises monotonically
with m; the all-items series loses more than the target-only series
(comparative selections are skewed toward the target).
"""

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.eval.plotting import ascii_line_plot
from repro.experiments.fig11 import BUDGETS, render_fig11, run_fig11


def test_fig11_information_loss(benchmark, capsys):
    points = benchmark.pedantic(
        run_fig11, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    assert [p.max_reviews for p in points] == list(BUDGETS)

    # Loss shrinks and cosine grows from the smallest to the largest budget.
    assert points[-1].target_delta < points[0].target_delta
    assert points[-1].target_cosine > points[0].target_cosine
    assert points[-1].all_items_delta < points[0].all_items_delta
    # Comparative items lose more than the target at generous budgets.
    assert points[-1].all_items_delta >= points[-1].target_delta - 1e-9

    budgets = [p.max_reviews for p in points]
    delta_plot = ascii_line_plot(
        budgets,
        {
            "Delta target": [p.target_delta for p in points],
            "Delta all items": [p.all_items_delta for p in points],
        },
        title="Fig. 11a: information loss Delta(tau, pi(S)) vs m",
    )
    cosine_plot = ascii_line_plot(
        budgets,
        {
            "cosine target": [p.target_cosine for p in points],
            "cosine all items": [p.all_items_cosine for p in points],
        },
        title="Fig. 11b: cosine(tau, pi(S)) vs m",
    )
    emit("fig11", "\n\n".join([render_fig11(points), delta_plot, cosine_plot]), capsys)
