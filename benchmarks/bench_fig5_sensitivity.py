"""Bench: regenerate Fig. 5 (lambda and mu sensitivity sweeps).

Sweeps the paper's grid {0.01, 0.1, 1, 10, 100} for lambda (CompaReSetS)
and mu (CompaReSetS+, holding the tuned lambda).  Expected shape: an
interior / small value wins and the largest values degrade ROUGE-L (the
paper selects lambda = 1 and mu = 0.1; on the synthetic corpora the same
protocol selects lambda in {0.1, 1} and mu = 0.01).
"""

import math

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.eval.plotting import ascii_line_plot
from repro.experiments.fig5 import GRID, render_fig5, run_fig5


def test_fig5_sensitivity(benchmark, capsys):
    lambda_points, best_lambda, mu_points, best_mu = benchmark.pedantic(
        run_fig5, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    assert len(lambda_points) == len(GRID) * 3
    assert len(mu_points) == len(GRID) * 3
    assert best_lambda in GRID and best_mu in GRID

    def mean_at(points, value):
        subset = [p.rouge_l for p in points if p.value == value]
        return sum(subset) / len(subset)

    # Extreme settings do not win the sweep.
    assert mean_at(lambda_points, 100.0) <= mean_at(lambda_points, best_lambda)
    assert mean_at(mu_points, 100.0) <= mean_at(mu_points, best_mu)

    def plot(points, parameter):
        values = sorted({p.value for p in points})
        datasets = sorted({p.dataset for p in points})
        series = {
            dataset: [
                100 * next(p.rouge_l for p in points
                           if p.dataset == dataset and p.value == v)
                for v in values
            ]
            for dataset in datasets
        }
        return ascii_line_plot(
            [math.log10(v) for v in values],
            series,
            title=f"Fig. 5: ROUGE-L vs log10({parameter})",
            y_format="{:.2f}",
        )

    emit(
        "fig5",
        "\n\n".join(
            [
                render_fig5(lambda_points, "lambda") + f"\n(best lambda = {best_lambda})",
                plot(lambda_points, "lambda"),
                render_fig5(mu_points, "mu") + f"\n(best mu = {best_mu})",
                plot(mu_points, "mu"),
            ]
        ),
        capsys,
    )
