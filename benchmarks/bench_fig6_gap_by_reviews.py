"""Bench: regenerate Fig. 6 (gap over Random vs review volume).

Buckets Cellphone instances by mean reviews-per-item and measures the
per-bucket ROUGE-L gap of CompaReSetS+ and CRS over Random.  Expected
shape: gaps are positive everywhere and widen for review-rich buckets
(more reviews -> harder selection -> smarter methods pull further ahead).
"""

from dataclasses import replace

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.eval.plotting import ascii_line_plot
from repro.experiments.fig6 import render_fig6, run_fig6

# More instances per bucket than the default bench settings.
FIG6_SETTINGS = replace(BENCH_SETTINGS, max_instances=60)


def test_fig6_gap_by_reviews(benchmark, capsys):
    points = benchmark.pedantic(
        run_fig6,
        args=(FIG6_SETTINGS,),
        kwargs={"num_buckets": 3},
        rounds=1,
        iterations=1,
    )
    assert points
    for view in ("target", "among"):
        plus_points = sorted(
            (p for p in points if p.view == view and p.algorithm == "CompaReSetS+"),
            key=lambda p: p.mean_reviews,
        )
        # Positive gap over Random in every bucket...
        assert all(p.gap > 0 for p in plus_points)
        # ...and the review-richest bucket beats the review-poorest.
        if len(plus_points) >= 2:
            assert plus_points[-1].gap > plus_points[0].gap - 0.01

    def plot(view):
        subset = sorted(
            (p for p in points if p.view == view), key=lambda p: p.mean_reviews
        )
        buckets = sorted({p.mean_reviews for p in subset})
        series = {}
        for algorithm in ("CRS", "CompaReSetS+"):
            series[f"{algorithm} - Random"] = [
                100
                * next(
                    p.gap
                    for p in subset
                    if p.algorithm == algorithm and p.mean_reviews == bucket
                )
                for bucket in buckets
            ]
        return ascii_line_plot(
            buckets,
            series,
            title=f"Fig. 6 ({view}): ROUGE-L gap over Random vs #reviews",
            y_format="{:+.2f}",
        )

    emit(
        "fig6",
        "\n\n".join(
            [
                render_fig6(points, "target"),
                plot("target"),
                render_fig6(points, "among"),
                plot("among"),
            ]
        ),
        capsys,
    )
