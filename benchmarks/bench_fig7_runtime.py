"""Bench: regenerate Fig. 7 (runtime vs number of comparative items).

Times CRS, CompaReSetS, and CompaReSetS+ at m in {3, 5, 10} on instances
of width n in {4, 8, 12, 16}.  Expected shape: CRS and CompaReSetS are
nearly flat in n; CompaReSetS+ grows roughly linearly (it re-solves per
item against a target that also grows with n).
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.eval.plotting import ascii_line_plot
from repro.experiments.fig7 import render_fig7, run_fig7

FIG7_SETTINGS = replace(BENCH_SETTINGS, max_instances=10)
COUNTS = (4, 8, 12, 16)


def test_fig7_runtime(benchmark, capsys):
    points = benchmark.pedantic(
        run_fig7,
        args=(FIG7_SETTINGS,),
        kwargs={"comparative_counts": COUNTS},
        rounds=1,
        iterations=1,
    )
    assert points

    def series(algorithm, m):
        by_n = {
            p.num_comparatives: p.mean_seconds
            for p in points
            if p.algorithm == algorithm and p.max_reviews == m
        }
        return [by_n[n] for n in sorted(by_n)]

    plus = np.array(series("CompaReSetS+", 3))
    crs = np.array(series("CRS", 3))
    if len(plus) >= 3 and len(crs) >= 3:
        # CompaReSetS+ is the slowest and grows faster with n than CRS.
        assert plus[-1] > crs[-1]
        assert (plus[-1] - plus[0]) > (crs[-1] - crs[0])

    plot_series = {
        algorithm: series(algorithm, 3)
        for algorithm in ("CRS", "CompaReSetS", "CompaReSetS+")
        if series(algorithm, 3)
    }
    plot = ascii_line_plot(
        sorted({p.num_comparatives for p in points}),
        plot_series,
        title="Fig. 7: runtime (s/instance) vs #comparative items (m=3)",
        y_format="{:.3f}",
    )
    emit("fig7", render_fig7(points) + "\n\n" + plot, capsys)
