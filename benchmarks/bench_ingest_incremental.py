"""Bench: incremental ingest — bordered-Gram re-warm vs cold rebuild.

One duplicate-heavy instance (1 target + 3 comparatives) at 100 / 1k /
10k reviews per item.  The warm path applies a <= 1% review delta to one
comparative through :meth:`~repro.serve.store.ItemStore.apply_delta`,
which patches the cached :class:`~repro.serve.store.InstanceArtifacts`
in place: the delta's columns are reconciled into the existing dedup
groups and the Gram matrices are extended by grid-aligned bordered
blocks (O(q * d * D)) instead of being rebuilt from scratch
(O(q^2 * D) plus a full-corpus dedup + incidence walk).  The cold path
is what a drop-and-rebuild ingest would pay: a fresh
:class:`~repro.serve.store.ItemStore` over the final corpus, artifacts
rebuilt, Gram blocks materialised.

Every size asserts the patched artifacts equal the cold build
byte-for-byte (dedup order, Gram bytes, taus/Gamma/columns) and that
per-item kernel selections match; the smallest size repeats the identity
check under all three opinion schemes.  Floors are CPU-aware (cgroup
quota respected): with >= 4 effective CPUs the re-warm at 1k
reviews/item must be >= 5x faster than the cold rebuild; on starved CI
only a 2x floor holds.  Archives ``results/BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, emit
from repro.core.omp_kernel import solve_item
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme
from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Product, Review
from repro.serve.store import ItemStore, _patch_mismatch

SIZES = (100, 1_000, 10_000)
ITEMS = 4
NUM_ASPECTS = 36
PATTERN_POOL = 512
REPEATS = 3
TARGET = "p0"
PATCHED = "p1"


def _effective_cpus() -> float:
    """CPUs actually usable: the cgroup quota when set, else the count."""
    try:
        quota, period = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota != "max":
            return max(1.0, float(quota) / float(period))
    except (OSError, ValueError):
        pass
    return float(os.cpu_count() or 1)


def _mention_pool(rng, count):
    """Distinct mention patterns; sampling them makes duplicate columns."""
    pool, seen = [], set()
    while len(pool) < count:
        k = int(rng.integers(1, 4))
        aspects = tuple(
            sorted(rng.choice(NUM_ASPECTS, size=k, replace=False).tolist())
        )
        signs = tuple(int(s) for s in rng.choice([-1, 1], size=k))
        strengths = tuple(int(s) for s in rng.integers(1, 4, size=k))
        key = (aspects, signs, strengths)
        if key in seen:
            continue
        seen.add(key)
        pool.append(
            tuple(
                AspectMention(f"a{a:02d}", sign, float(strength))
                for a, sign, strength in zip(aspects, signs, strengths)
            )
        )
    return pool


def _workload(reviews_per_item: int, seed: int = 7):
    """A corpus plus a <= 1% delta to one comparative item.

    Delta mentions are drawn from patterns already present in the corpus
    so the delta stays coverable by the cached vector space (the serving
    steady state this bench measures; novel aspects force a rebuild and
    are covered by the test suite instead).
    """
    rng = np.random.default_rng(seed + reviews_per_item)
    pool = _mention_pool(rng, min(PATTERN_POOL, 8 * reviews_per_item))
    products = [
        Product(
            f"p{i}",
            f"Item {i}",
            "bench",
            also_bought=tuple(f"p{j}" for j in range(ITEMS) if j != i),
        )
        for i in range(ITEMS)
    ]
    reviews, used = [], []
    for i in range(ITEMS):
        for j in range(reviews_per_item):
            pattern = pool[int(rng.integers(len(pool)))]
            used.append(pattern)
            reviews.append(
                Review(
                    f"r{i}-{j}",
                    f"p{i}",
                    f"u{j % 97}",
                    rating=float(1 + j % 5),
                    text="",
                    mentions=pattern,
                )
            )
    delta = tuple(
        Review(
            f"d-{j}",
            PATCHED,
            f"u{j % 97}",
            rating=float(1 + j % 5),
            text="",
            mentions=used[int(rng.integers(len(used)))],
        )
        for j in range(max(1, reviews_per_item // 100))
    )
    return Corpus("IngestBench", products, reviews), delta


def _materialise(artifacts):
    for solver in artifacts.solver:
        block = solver.base_block()
        block.gram_op
        block.gram_asp
    return artifacts


def _warm_store(corpus, config):
    store = ItemStore(corpus)
    _materialise(store.artifacts(TARGET, config))
    return store


def _selections(artifacts, config):
    results = []
    for tau, solver in zip(artifacts.taus, artifacts.solver):
        selection = solve_item(solver, tau, artifacts.gamma, config)
        results.append((selection.selected, selection.objective))
    return results


def _identical(patched, cold, config) -> bool:
    if _patch_mismatch(patched, cold) is not None:
        return False
    return _selections(patched, config) == _selections(cold, config)


def _sweep():
    config = SelectionConfig(max_reviews=5)
    rows = []
    for count in SIZES:
        corpus, delta = _workload(count)
        cold_corpus = corpus.with_appended_reviews(delta)

        patch_s, reported_ms = float("inf"), 0.0
        outcome = None
        patched_store = None
        for _ in range(REPEATS):
            store = _warm_store(corpus, config)
            begun = time.perf_counter()
            outcome = store.apply_delta(delta)
            elapsed = time.perf_counter() - begun
            if elapsed < patch_s:
                patch_s, reported_ms = elapsed, outcome.patch_ms
                patched_store = store

        cold_s, cold_art = float("inf"), None
        for _ in range(REPEATS):
            begun = time.perf_counter()
            store = ItemStore(cold_corpus)
            art = _materialise(store.artifacts(TARGET, config))
            elapsed = time.perf_counter() - begun
            if elapsed < cold_s:
                cold_s, cold_art = elapsed, art

        patched_art = patched_store.artifacts(TARGET, config)
        identical = _identical(patched_art, cold_art, config)
        if count == SIZES[0]:
            # Cheap enough to pin all three opinion schemes, not just
            # the default binary encoding.
            for scheme in (OpinionScheme.THREE_POLARITY, OpinionScheme.UNARY_SCALE):
                variant = SelectionConfig(max_reviews=5, scheme=scheme)
                warm = _warm_store(corpus, variant)
                warm.apply_delta(delta)
                cold = _materialise(
                    ItemStore(cold_corpus).artifacts(TARGET, variant)
                )
                identical = identical and _identical(
                    warm.artifacts(TARGET, variant), cold, variant
                )

        rows.append(
            {
                "reviews_per_item": count,
                "delta_reviews": len(delta),
                "unique_columns": patched_art.solver[
                    patched_art.comparative_ids.index(PATCHED) + 1
                ].base_block().num_groups,
                "patch_ms": patch_s * 1e3,
                "patch_stage_ms": reported_ms,
                "cold_ms": cold_s * 1e3,
                "speedup": cold_s / patch_s,
                "patched": outcome.patched,
                "rebuilt": outcome.rebuilt,
                "identical": identical,
            }
        )
    return rows


def run_ingest():
    return {"effective_cpus": _effective_cpus(), "rows": _sweep()}


def render(report) -> str:
    lines = [
        "Incremental ingest: bordered-Gram re-warm vs cold rebuild "
        f"({report['effective_cpus']:.1f} effective CPUs)",
        f"{'N/item':>7} {'delta':>6} {'q':>6} {'patch ms':>9} "
        f"{'cold ms':>9} {'speedup':>8} {'identical':>9}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['reviews_per_item']:>7} {row['delta_reviews']:>6} "
            f"{row['unique_columns']:>6} {row['patch_ms']:>9.2f} "
            f"{row['cold_ms']:>9.2f} {row['speedup']:>7.1f}x "
            f"{str(row['identical']):>9}"
        )
    return "\n".join(lines)


def test_ingest_incremental(benchmark, capsys):
    report = benchmark.pedantic(run_ingest, rounds=1, iterations=1)

    for row in report["rows"]:
        assert row["identical"], f"divergence at N={row['reviews_per_item']}"
        assert row["patched"] >= 1 and row["rebuilt"] == 0, row
    by_size = {row["reviews_per_item"]: row for row in report["rows"]}
    milestone = by_size[1_000]
    # Unconditional floor: patching must clearly beat the cold rebuild
    # even on a starved runner; the headline 5x floor needs real CPUs.
    assert milestone["speedup"] >= 2.0, milestone
    if report["effective_cpus"] >= 4:
        assert milestone["speedup"] >= 5.0, milestone

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ingest.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("ingest_incremental", render(report), capsys)
