"""Bench: restart latency — snapshot+WAL-tail vs cold re-ingest.

Builds one durable state directory holding a ~1000-review corpus and a
128-delta ingest history, then times the two ways a crashed server can
come back:

* **snapshot** — load the newest generation snapshot (pickled corpus +
  precomputed artifact arrays) and replay only the short WAL tail past
  its watermark;
* **cold** — re-parse the corpus JSONL, re-ingest it, replay the entire
  delta history, and rebuild the instance artifacts from scratch.

Both paths must land on the *same* generation version (that equality is
asserted — a fast recovery to the wrong state is not a recovery).  The
acceptance bar is snapshot restart >= 3x faster than cold at this size;
in practice the gap widens with corpus size and history length, which is
exactly why the engine snapshots every N deltas.  Archives
``results/BENCH_recovery.json``.
"""

from __future__ import annotations

import json
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, emit
from repro.core.problem import SelectionConfig
from repro.data.io import save_corpus
from repro.data.models import Review
from repro.data.synthetic import generate_corpus
from repro.serve.snapshot import open_durable_store
from repro.serve.wal import review_record

DELTAS = 128          # full ingest history length
WAL_TAIL = 4          # deltas past the snapshot watermark
TIMING_ROUNDS = 3     # median-of-N per recovery path

_CONFIG = SelectionConfig(max_reviews=3, lam=1.0, mu=0.1)


def _delta(n: int, product_id: str) -> Review:
    return Review(
        review_id=f"bench-delta-{n:04d}",
        product_id=product_id,
        reviewer_id=f"bench-user-{n:04d}",
        rating=4.0,
        text=f"bench delta review {n}: durable battery and screen",
        mentions=(),
    )


def _build_state(root: Path, corpus_path: Path, corpus) -> str:
    """One served lifetime: ingest history + a snapshot before the tail.

    Returns the final generation version both recovery paths must hit.
    """
    store, wal, manager, _ = open_durable_store(
        root / "state", corpus_path=corpus_path
    )
    target = store.default_target(10, 3)
    store.artifacts(target, _CONFIG)  # warm artifacts into the snapshot
    product = corpus.products[0].product_id
    for n in range(1, DELTAS + 1):
        review = _delta(n, product)
        wal.append({"kind": "delta", "reviews": [review_record(review)]})
        store.apply_delta([review])
        if n == DELTAS - WAL_TAIL:
            manager.save(store, wal_seq=wal.last_seq)
    wal.close()

    # The cold path gets the same WAL but no snapshots: the restart a
    # snapshot-less deployment would face.
    cold = root / "cold"
    cold.mkdir()
    shutil.copy(root / "state" / "ingest.wal", cold / "ingest.wal")
    return store.version


def _time_restart(state_dir: Path, corpus_path: Path, expected: str) -> dict:
    """Median time-to-first-artifact for one recovery path."""
    timings = []
    info = None
    for _ in range(TIMING_ROUNDS):
        begun = time.perf_counter()
        store, wal, _, info = open_durable_store(
            state_dir, corpus_path=corpus_path
        )
        target = store.default_target(10, 3)
        store.artifacts(target, _CONFIG)  # first request's artifact cost
        timings.append(time.perf_counter() - begun)
        wal.close()
        assert store.version == expected, (
            f"recovered {store.version}, expected {expected}"
        )
    return {
        "mode": info.mode,
        "replayed_deltas": info.replayed_deltas,
        "restored_artifacts": info.restored_artifacts,
        "restart_ms": statistics.median(timings) * 1e3,
    }


def run_recovery():
    corpus = generate_corpus("Toy", scale=0.6, seed=7)
    root = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        corpus_path = root / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        expected = _build_state(root, corpus_path, corpus)
        snapshot = _time_restart(root / "state", corpus_path, expected)
        cold = _time_restart(root / "cold", corpus_path, expected)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "corpus": {
            "products": len(corpus.products),
            "reviews": len(corpus.reviews),
        },
        "history": {"deltas": DELTAS, "wal_tail": WAL_TAIL},
        "version": expected,
        "snapshot": snapshot,
        "cold": cold,
        "speedup": cold["restart_ms"] / snapshot["restart_ms"],
    }


def render(report) -> str:
    lines = [
        "Restart latency: snapshot+WAL-tail vs cold re-ingest "
        f"({report['corpus']['reviews']} reviews, "
        f"{report['history']['deltas']}-delta history)",
        f"{'path':<10} {'mode':<14} {'replayed':>8} {'restart ms':>11}",
    ]
    for path in ("snapshot", "cold"):
        row = report[path]
        lines.append(
            f"{path:<10} {row['mode']:<14} {row['replayed_deltas']:>8} "
            f"{row['restart_ms']:>11.1f}"
        )
    lines.append(
        f"speedup: {report['speedup']:.2f}x "
        f"(both land on {report['version']})"
    )
    return "\n".join(lines)


def test_recovery(benchmark, capsys):
    report = benchmark.pedantic(run_recovery, rounds=1, iterations=1)

    # Correctness before speed: identical generation either way.
    assert report["snapshot"]["mode"] == "snapshot+wal"
    assert report["cold"]["mode"] == "cold+wal"
    assert report["snapshot"]["replayed_deltas"] == WAL_TAIL
    assert report["cold"]["replayed_deltas"] == DELTAS
    # The acceptance bar: snapshot restart at least 3x faster.
    assert report["speedup"] >= 3.0, (
        f"snapshot restart only {report['speedup']:.2f}x faster than cold"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_recovery.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("recovery", render(report), capsys)
