"""Bench: cluster scaling — cold-miss throughput at 1/2/4 shards.

Boots a real :class:`~repro.serve.cluster.ServingCluster` (gateway +
shard worker processes) per topology and drives it with all-distinct
``(target, mu)`` select requests from a client thread pool, so every
request is a cold solve on some shard and the gateway's routing/fan-out
overhead is included.  Reports aggregate requests/second per topology
and archives ``results/BENCH_cluster.json``.

Scaling is CPU-bound: shards only add throughput when they can run on
distinct cores.  The assertion floor therefore depends on the CPUs the
runner actually has (recorded in the artefact): with >= 4 effective
CPUs the 4-shard topology must beat single-shard by >= 2x; with fewer
CPUs the bench can only assert that sharding's routing + IPC overhead
stays bounded (>= 0.5x of single-shard throughput).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, emit
from repro.data.instances import build_instance
from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.serve.cluster import ClusterConfig, ServingCluster

SHARD_COUNTS = (1, 2, 4)
COLD_REQUESTS = 24
CLIENTS = 8


def _effective_cpus() -> float:
    """CPUs actually usable: the cgroup quota when set, else the count."""
    try:
        quota, period = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota != "max":
            return max(1.0, float(quota) / float(period))
    except (OSError, ValueError):
        pass
    return float(os.cpu_count() or 1)


def _post(base: str, body: dict) -> int:
    request = urllib.request.Request(
        f"{base}/v1/select", data=json.dumps(body).encode()
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


def _drive(base: str, bodies: list[dict]) -> dict:
    latencies = [0.0] * len(bodies)
    statuses = [0] * len(bodies)

    def one(index: int) -> None:
        begun = time.perf_counter()
        statuses[index] = _post(base, bodies[index])
        latencies[index] = time.perf_counter() - begun

    begun = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        list(pool.map(one, range(len(bodies))))
    wall = time.perf_counter() - begun
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q / 100 * (len(ordered) - 1)))]

    return {
        "requests": len(bodies),
        "ok": sum(1 for status in statuses if status == 200),
        "wall_s": wall,
        "rps": len(bodies) / wall,
        "p50_ms": pct(50) * 1e3,
        "p95_ms": pct(95) * 1e3,
    }


def run_cluster_sweep() -> dict:
    corpus = generate_corpus("Toy", scale=0.5, seed=7)
    viable = [
        p.product_id
        for p in corpus.products
        if build_instance(corpus, p.product_id, 10, min_reviews=3)
    ]
    # All-distinct (target, mu) pairs: every request is a cold miss on
    # its owning shard, and targets spread across the whole ring.
    bodies = [
        {"target": viable[index % len(viable)],
         "mu": 0.1 + 0.002 * (index // len(viable) + index)}
        for index in range(COLD_REQUESTS)
    ]
    topologies: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        for shards in SHARD_COUNTS:
            config = ClusterConfig(
                corpus_path=corpus_path,
                shards=shards,
                state_dir=Path(tmp) / f"topology-{shards}",
                engine_options={"workers": 2},
            )
            with ServingCluster(config) as cluster:
                stats = _drive(cluster.base_url, bodies)
            assert stats["ok"] == len(bodies), stats
            topologies[str(shards)] = stats
    base_rps = topologies["1"]["rps"]
    return {
        "corpus": {"products": len(corpus.products),
                   "reviews": len(corpus.reviews)},
        "clients": CLIENTS,
        "cpus": _effective_cpus(),
        "topologies": topologies,
        "scaling_vs_single": {
            shards: topologies[shards]["rps"] / base_rps for shards in topologies
        },
    }


def render(report: dict) -> str:
    lines = [
        f"Cluster cold-miss throughput ({report['clients']} clients, "
        f"{report['cpus']:.1f} effective CPUs)",
        f"{'shards':<6} {'requests':>8} {'req/s':>10} "
        f"{'p50 ms':>9} {'p95 ms':>9} {'vs 1':>7}",
    ]
    for shards in sorted(report["topologies"], key=int):
        row = report["topologies"][shards]
        ratio = report["scaling_vs_single"][shards]
        lines.append(
            f"{shards:<6} {row['requests']:>8} {row['rps']:>10.2f} "
            f"{row['p50_ms']:>9.1f} {row['p95_ms']:>9.1f} {ratio:>6.2f}x"
        )
    return "\n".join(lines)


def test_serve_cluster_scaling(benchmark, capsys):
    report = benchmark.pedantic(run_cluster_sweep, rounds=1, iterations=1)

    ratio4 = report["scaling_vs_single"]["4"]
    if report["cpus"] >= 4:
        # Real parallelism available: 4 shards must at least double
        # aggregate cold-miss throughput over the single shard.
        assert ratio4 >= 2.0, report["scaling_vs_single"]
    else:
        # CPU-starved runner: shards time-slice one core, so scaling is
        # impossible — only the routing/IPC overhead bound is checkable.
        assert ratio4 >= 0.5, report["scaling_vs_single"]

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cluster.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("serve_cluster", render(report), capsys)
