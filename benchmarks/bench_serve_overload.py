"""Bench: overload behaviour — served vs shed latency across load multiples.

Drives the in-process `SelectionEngine` behind an `AdmissionController`
with synchronized request bursts at 1x / 4x / 16x of the admission
capacity (`max_pending`).  At 1x everything is served; past capacity the
excess is shed with `Overloaded`.  The interesting numbers are the two
latency distributions: served requests should stay flat as offered load
grows (the queue is bounded, so queueing delay is bounded), and shed
requests should be answered in well under a millisecond — refusing work
must cost nothing.

Writes ``results/BENCH_overload.json`` with per-multiple percentiles so
PRs can compare shedding behaviour over time.
"""

from __future__ import annotations

import json
import threading
import time

from benchmarks.conftest import RESULTS_DIR, emit
from repro.data.synthetic import generate_corpus
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.engine import SelectionEngine, SelectRequest
from repro.serve.store import ItemStore

CAPACITY = 8  # admission max_pending: the queue the bursts are sized against
MULTIPLES = (1, 4, 16)
WORKERS = 2


def _percentiles(latencies_ms):
    ordered = sorted(latencies_ms)

    def pct(q):
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(q / 100 * (len(ordered) - 1)))]

    return {"p50_ms": pct(50), "p95_ms": pct(95), "p99_ms": pct(99)}


def _burst(engine, size, offset):
    """Fire ``size`` distinct concurrent selects; split served/shed latencies."""
    served: list[float] = []
    shed: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(size)

    def one(index: int) -> None:
        # Distinct mu per request: no cache hit or single-flight coalescing.
        request = SelectRequest(m=2, mu=0.1 + 0.001 * (offset + index))
        barrier.wait()
        begun = time.perf_counter()
        try:
            engine.select(request)
        except Overloaded:
            with lock:
                shed.append((time.perf_counter() - begun) * 1e3)
            return
        with lock:
            served.append((time.perf_counter() - begun) * 1e3)

    threads = [
        threading.Thread(target=one, args=(index,)) for index in range(size)
    ]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begun
    return served, shed, wall


def run_overload():
    corpus = generate_corpus("Toy", scale=0.5, seed=7)
    report = {"capacity": CAPACITY, "workers": WORKERS, "phases": {}}
    offset = 0
    for multiple in MULTIPLES:
        # A fresh engine per multiple: no warm cache, no shared counters.
        engine = SelectionEngine(
            ItemStore(corpus),
            workers=WORKERS,
            cache_size=CAPACITY * 32,
            admission=AdmissionController(max_pending=CAPACITY),
        )
        try:
            size = CAPACITY * multiple
            served, shed, wall = _burst(engine, size, offset)
            offset += size
            report["phases"][f"{multiple}x"] = {
                "offered": size,
                "served": len(served),
                "shed": len(shed),
                "shed_ratio": len(shed) / size,
                "wall_s": round(wall, 3),
                "served_latency": _percentiles(served),
                "shed_latency": _percentiles(shed),
            }
        finally:
            engine.close()
    return report


def render(report) -> str:
    lines = [
        f"Serving under overload (capacity {report['capacity']} pending, "
        f"{report['workers']} workers)",
        f"{'load':<5} {'offered':>8} {'served':>7} {'shed':>6} "
        f"{'served p50':>11} {'served p99':>11} {'shed p99':>9}",
    ]
    for multiple in MULTIPLES:
        row = report["phases"][f"{multiple}x"]
        lines.append(
            f"{str(multiple) + 'x':<5} {row['offered']:>8} {row['served']:>7} "
            f"{row['shed']:>6} {row['served_latency']['p50_ms']:>9.1f}ms "
            f"{row['served_latency']['p99_ms']:>9.1f}ms "
            f"{row['shed_latency']['p99_ms']:>7.3f}ms"
        )
    return "\n".join(lines)


def test_serve_overload(benchmark, capsys):
    report = benchmark.pedantic(run_overload, rounds=1, iterations=1)

    within = report["phases"]["1x"]
    flooded = report["phases"]["16x"]
    assert within["shed"] == 0, "within-capacity bursts must not shed"
    assert flooded["shed"] > 0, "16x capacity must shed the excess"
    assert flooded["served"] >= CAPACITY
    # Refusal must be orders of magnitude cheaper than serving.
    assert flooded["shed_latency"]["p99_ms"] < 10.0

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_overload.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("serve_overload", render(report), capsys)
