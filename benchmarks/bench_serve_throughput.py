"""Bench: serving throughput — cold vs warm-cache request rates.

Drives the in-process `SelectionEngine` (the same object `repro-cli
serve` wraps in HTTP) with a cold phase of all-distinct requests (every
one a cache miss, artifacts shared) and a warm phase repeating one
request (every one a cache hit).  Reports requests/second and p50/p95
latency per phase and archives them as ``results/BENCH_serve.json``.

Expected shape: warm-cache requests are orders of magnitude faster than
cold solves, and warm p50 sits well under the 10 ms online budget.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, emit
from repro.data.synthetic import generate_corpus
from repro.serve.engine import SelectionEngine, SelectRequest
from repro.serve.store import ItemStore

COLD_REQUESTS = 24
WARM_REQUESTS = 200


def _timed_requests(engine, requests):
    latencies = []
    for request in requests:
        begun = time.perf_counter()
        engine.select(request)
        latencies.append(time.perf_counter() - begun)
    return latencies


def _phase_stats(latencies):
    ordered = sorted(latencies)
    total = sum(ordered)

    def pct(q):
        return ordered[min(len(ordered) - 1, int(q / 100 * (len(ordered) - 1)))]

    return {
        "requests": len(ordered),
        "rps": len(ordered) / total if total else float("inf"),
        "p50_ms": pct(50) * 1e3,
        "p95_ms": pct(95) * 1e3,
    }


def run_throughput():
    corpus = generate_corpus("Toy", scale=0.5, seed=7)
    engine = SelectionEngine(ItemStore(corpus), cache_size=COLD_REQUESTS + 8)
    try:
        # All-distinct (m, mu) pairs: every request misses the result
        # cache but shares the store's precomputed artifacts.
        cold = _timed_requests(
            engine,
            [
                SelectRequest(m=1 + index % 4, mu=0.1 * (1 + index // 4))
                for index in range(COLD_REQUESTS)
            ],
        )
        warm_request = SelectRequest(m=3)
        engine.select(warm_request)  # populate
        warm = _timed_requests(engine, [warm_request] * WARM_REQUESTS)
        stats = engine.cache.stats()
        return {
            "corpus": {"products": len(corpus.products),
                       "reviews": len(corpus.reviews)},
            "cold": _phase_stats(cold),
            "warm": _phase_stats(warm),
            "cache": {"hits": stats.hits, "misses": stats.misses,
                      "hit_ratio": stats.hit_ratio},
        }
    finally:
        engine.close()


def render(report) -> str:
    lines = ["Serving throughput (cold = all misses, warm = all hits)",
             f"{'phase':<6} {'requests':>8} {'req/s':>10} "
             f"{'p50 ms':>9} {'p95 ms':>9}"]
    for phase in ("cold", "warm"):
        row = report[phase]
        lines.append(
            f"{phase:<6} {row['requests']:>8} {row['rps']:>10.1f} "
            f"{row['p50_ms']:>9.3f} {row['p95_ms']:>9.3f}"
        )
    lines.append(f"cache hit ratio: {report['cache']['hit_ratio']:.3f}")
    return "\n".join(lines)


def test_serve_throughput(benchmark, capsys):
    report = benchmark.pedantic(run_throughput, rounds=1, iterations=1)

    assert report["warm"]["p50_ms"] < 10.0, "warm hits must stay online-fast"
    assert report["warm"]["rps"] > report["cold"]["rps"]
    assert report["cache"]["hits"] >= WARM_REQUESTS

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    emit("serve_throughput", render(report), capsys)
