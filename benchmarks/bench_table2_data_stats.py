"""Bench: regenerate Table 2 (dataset statistics).

Times corpus generation + statistics for the three categories and prints
the regenerated table.  Expected shape: per-category review-per-product
and comparison-list averages track the paper's (18.64/25.57 Cellphone,
14.06/34.33 Toy, 12.10/12.03 Clothing); absolute counts scale with the
benchmark's corpus scale.
"""

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.data.statistics import analyze_corpus, render_analysis
from repro.eval.runner import cached_corpus
from repro.experiments.table2 import render_table2, run_table2


def test_table2_data_stats(benchmark, capsys):
    stats = benchmark.pedantic(
        run_table2, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    assert len(stats) == 3
    for s in stats:
        assert s.num_products > 0
        assert s.avg_reviews_per_product > 5

    # Extended distributional view of one category (beyond the paper's
    # Table 2) to document the corpus shape the experiments run on.
    analysis = analyze_corpus(
        cached_corpus("Cellphone", BENCH_SETTINGS.scale, BENCH_SETTINGS.seed)
    )
    emit("table2", render_table2(stats) + "\n\n" + render_analysis(analysis), capsys)
