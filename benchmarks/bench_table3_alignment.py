"""Bench: regenerate Table 3 (review alignment vs baselines).

Runs all five selectors over every (category, m) workload and reports
both panels.  Expected shape (paper): CompaReSetS+ best, CompaReSetS
second, CRS third, Greedy and Random behind, on both the
target-vs-comparative and among-items views.
"""

import pytest

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.experiments.table3 import render_table3, run_table3


@pytest.fixture(scope="module")
def cells():
    return run_table3(BENCH_SETTINGS)


def test_table3_alignment(benchmark, capsys):
    cells = benchmark.pedantic(
        run_table3, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    # 3 datasets x 3 budgets x 2 views x 5 algorithms
    assert len(cells) == 90

    def mean_rouge1(algorithm, view):
        values = [
            c.scores.rouge_1
            for c in cells
            if c.algorithm == algorithm and c.view == view
        ]
        return sum(values) / len(values)

    for view in ("target", "among"):
        assert mean_rouge1("CRS", view) > mean_rouge1("Random", view)
        assert mean_rouge1("CompaReSetS", view) > mean_rouge1("CRS", view)
        assert mean_rouge1("CompaReSetS+", view) >= mean_rouge1("CompaReSetS", view) - 0.002

    emit(
        "table3",
        render_table3(cells, "target") + "\n\n" + render_table3(cells, "among"),
        capsys,
    )
