"""Bench: regenerate Table 4 (opinion-definition generalisation).

ROUGE-L of every selector under binary / 3-polarity / unary-scale opinion
vectors on the Cellphone workload (m = 3).  Expected shape: CompaReSetS /
CompaReSetS+ lead overall; CRS weakens under unary-scale, where the
set-level sigmoid breaks the linear-regression proxy.
"""

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.core.vectors import OpinionScheme
from repro.experiments.table4 import render_table4, run_table4


def test_table4_opinion_schemes(benchmark, capsys):
    cells = benchmark.pedantic(
        run_table4, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    assert len(cells) == 15

    def score(algorithm, scheme):
        return next(
            c.rouge_l for c in cells if c.algorithm == algorithm and c.scheme == scheme
        )

    for scheme in OpinionScheme:
        assert score("CompaReSetS+", scheme) > score("Random", scheme)
        assert score("CompaReSetS", scheme) > score("Random", scheme)

    emit("table4", render_table4(cells), capsys)
