"""Bench: regenerate Table 5 (TargetHkS approximation ratios).

Builds the §3.1 similarity graph per instance from CompaReSetS+
selections and compares the time-limited exact ILP, the greedy heuristic,
and the random baseline.  Expected shape: greedy's objective-value ratio
is within a fraction of a percent of the ILP (paper: -0.00002..-0.00015),
Random trails by ~20%, and the optimality percentage is high (the paper's
sub-100% cells at k = 10 came from Gurobi hitting 60 s on n ~ 34 graphs;
HiGHS proves our smaller instances optimal more often).
"""

from benchmarks.conftest import WIDE_SETTINGS, emit
from repro.experiments.table5 import render_table5, run_table5


def test_table5_hks_ratio(benchmark, capsys):
    # The from-scratch branch and bound is the 60-second-Gurobi stand-in
    # here: it proves optimality orders of magnitude faster than the HiGHS
    # linearisation on these graph sizes (see bench_ablation_hks_backends).
    rows = benchmark.pedantic(
        run_table5,
        args=(WIDE_SETTINGS,),
        kwargs={"time_limit": 5.0, "backend": "bnb"},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 9  # 3 datasets x 3 k
    for row in rows:
        comparison = row.comparison
        if comparison.num_instances == 0:
            continue
        # Greedy hugs the optimum; Random pays a double-digit penalty.
        assert comparison.greedy_ratio > -0.02
        assert comparison.random_ratio < comparison.greedy_ratio
        assert comparison.random_ratio < -0.05
    emit("table5", render_table5(rows), capsys)
