"""Bench: regenerate Table 6 (alignment after core-list narrowing).

Narrows each instance to k = m items with Random / Top-k similarity /
TargetHkS_Greedy / TargetHkS_ILP (selections fixed to CompaReSetS+) and
re-scores ROUGE.  Expected shape: ILP ~= Greedy > Top-k similarity >
Random, with Top-k approaching the others as k grows.
"""

from benchmarks.conftest import WIDE_SETTINGS, emit
from repro.experiments.table6 import render_table6, run_table6


def test_table6_core_list(benchmark, capsys):
    rows = benchmark.pedantic(
        run_table6,
        args=(WIDE_SETTINGS,),
        kwargs={"time_limit": 5.0, "backend": "bnb"},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 72  # 3 datasets x 3 k x 4 strategies x 2 views

    def mean_rouge_l(strategy, view):
        values = [
            c.scores.rouge_l for c in rows if c.strategy == strategy and c.view == view
        ]
        return sum(values) / len(values)

    for view in ("target", "among"):
        assert mean_rouge_l("TargetHkS_ILP", view) > mean_rouge_l("Random", view)
        assert mean_rouge_l("TargetHkS_Greedy", view) > mean_rouge_l("Random", view)
        # Greedy tracks the exact solver closely.
        assert abs(
            mean_rouge_l("TargetHkS_Greedy", view) - mean_rouge_l("TargetHkS_ILP", view)
        ) < 0.01

    emit(
        "table6",
        render_table6(rows, "target") + "\n\n" + render_table6(rows, "among"),
        capsys,
    )
