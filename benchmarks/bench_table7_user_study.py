"""Bench: regenerate Table 7 (the simulated user study).

Builds the survey material (3 examples per category, narrowed to 3 items
of 3 reviews) and runs 5 simulated annotators per example.  Expected
shape: CompaReSetS+ >= CRS >= Random on Q1/Q3 means and on Krippendorff's
alpha (the paper reports 3.73/3.69/3.47 on Q1 and alpha 0.299/0.050/-0.039).
"""

from benchmarks.conftest import BENCH_SETTINGS, emit
from repro.experiments.table7 import render_table7, run_table7


def test_table7_user_study(benchmark, capsys):
    outcomes = benchmark.pedantic(
        run_table7, args=(BENCH_SETTINGS,), rounds=1, iterations=1
    )
    by_name = {o.algorithm: o for o in outcomes}
    assert set(by_name) == {"Random", "CRS", "CompaReSetS+"}
    assert by_name["CompaReSetS+"].q1_similarity >= by_name["Random"].q1_similarity
    assert by_name["CompaReSetS+"].q3_comparison >= by_name["Random"].q3_comparison
    assert by_name["CompaReSetS+"].alpha >= by_name["Random"].alpha
    emit("table7", render_table7(outcomes), capsys)
