"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once under pytest-benchmark timing, prints the rendered table
to the terminal (bypassing capture), and archives it under
``benchmarks/results/`` so a run leaves a comparable artefact.

Workload sizes are scaled to keep the full suite around a few minutes;
scale up ``BENCH_SETTINGS`` for closer-to-paper statistics.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.problem import SelectionConfig
from repro.eval.runner import EvaluationSettings

BENCH_SETTINGS = EvaluationSettings(
    scale=0.8,
    seed=7,
    max_instances=30,
    max_comparisons=8,
    min_reviews=3,
    budgets=(3, 5, 10),
)

# Wider instances for the TargetHkS experiments (k = 10 needs >= 11 items).
# mu = 1.0 here: on the synthetic corpora the pairwise aspect distances are
# small relative to the per-item fit terms (z is tens, not the paper's 500),
# so the paper's mu = 0.1 would leave the similarity graph effectively
# additive and every narrowing strategy would coincide; mu = 1 restores the
# graph structure the paper's setting produces on real data.
WIDE_SETTINGS = EvaluationSettings(
    scale=0.8,
    seed=7,
    max_instances=20,
    max_comparisons=30,
    min_reviews=3,
    budgets=(3, 5, 10),
    config=SelectionConfig(lam=1.0, mu=1.0),
)

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str, capsys) -> None:
    """Print a rendered table to the live terminal and archive it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    with capsys.disabled():
        print(f"\n{text}\n")
