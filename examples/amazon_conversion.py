#!/usr/bin/env python
"""Converting a McAuley-format Amazon dump into a working corpus.

The real dataset is not redistributable, so this example fabricates a
tiny dump pair in the exact on-disk format (strict-JSON reviews +
metadata with "also bought" lists), converts it with
:func:`repro.data.amazon.convert_amazon` — including aspect mining and
sentiment extraction from the raw text — and runs the full selection +
narrowing pipeline on the result.  Point the same two calls at the real
files and nothing else changes.

Run:  python examples/amazon_conversion.py
"""

import json
import tempfile
from pathlib import Path

from repro import SelectionConfig, build_instances, make_selector
from repro.data.amazon import convert_amazon

_METADATA = [
    {"asin": "B0CHARGER1", "title": "Volt 2.1A Car Charger",
     "related": {"also_bought": ["B0CHARGER2", "B0CABLE1"]}},
    {"asin": "B0CHARGER2", "title": "Ampere Dual-Port Car Charger",
     "related": {"also_bought": ["B0CHARGER1"]}},
    {"asin": "B0CABLE1", "title": "Strand Braided USB Cable",
     "related": {"also_bought": ["B0CHARGER1"]}},
]

_REVIEWS = [
    ("U1", "B0CHARGER1", 5.0, "The charger is excellent and the charging speed is great. The cable is sturdy."),
    ("U2", "B0CHARGER1", 4.0, "Solid charger for the price. The charging works well in my car."),
    ("U3", "B0CHARGER1", 2.0, "The charger stopped working after a week. The cable is flimsy."),
    ("U1", "B0CHARGER2", 5.0, "Great charger with fast charging. The price is excellent."),
    ("U4", "B0CHARGER2", 3.0, "The charger is decent but the cable is weak."),
    ("U2", "B0CHARGER2", 4.0, "Reliable charger, the charging speed is impressive."),
    ("U5", "B0CABLE1", 5.0, "The cable is sturdy and the price is great."),
    ("U3", "B0CABLE1", 1.0, "Terrible cable, the sheath cracked. Poor quality."),
    ("U4", "B0CABLE1", 4.0, "Good cable for charging, solid build quality."),
]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        metadata_path = Path(tmp) / "meta_Cell_Phones.json"
        metadata_path.write_text("\n".join(json.dumps(m) for m in _METADATA))
        reviews_path = Path(tmp) / "reviews_Cell_Phones_5.json"
        reviews_path.write_text(
            "\n".join(
                json.dumps(
                    {"reviewerID": u, "asin": a, "overall": r, "reviewText": t}
                )
                for u, a, r, t in _REVIEWS
            )
        )

        corpus = convert_amazon(
            reviews_path,
            metadata_path,
            category="Cellphone",
            candidate_pool=100,
            keep=30,
            min_document_frequency=2,
        )

    print(f"Converted: {corpus}")
    print(f"Mined aspects: {corpus.aspect_vocabulary()}\n")

    instance = next(iter(build_instances(corpus, min_reviews=2)))
    config = SelectionConfig(max_reviews=2, mu=0.01)
    result = make_selector("CompaReSetS+").select(instance, config)
    for item_index, product in enumerate(result.instance.products):
        role = "TARGET " if item_index == 0 else "similar"
        print(f"[{role}] {product.title}")
        for review in result.selected_reviews(item_index):
            aspects = ", ".join(sorted(review.aspects)) or "(none)"
            print(f"    {review.rating:.0f}* [{aspects}] {review.text}")
        print()


if __name__ == "__main__":
    main()
