#!/usr/bin/env python
"""Case studies in the style of the paper's Figures 8-10.

Renders one "compare to similar items" view per category: the target
product plus its top-2 most similar items (TargetHkS_ILP on CompaReSetS+
distances), each with 3 selected reviews, highlighting the aspects every
item's selection shares.

Run:  python examples/case_study.py
"""

from repro.eval.runner import EvaluationSettings
from repro.experiments.case_study import render_case_study, run_case_study


def main() -> None:
    settings = EvaluationSettings(scale=0.6, max_instances=20, max_comparisons=8)
    for category in settings.categories:
        try:
            study = run_case_study(settings, category=category)
        except ValueError as error:
            print(f"[{category}] skipped: {error}")
            continue
        print(render_case_study(study))
        print()


if __name__ == "__main__":
    main()
