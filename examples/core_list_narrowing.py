#!/usr/bin/env python
"""Core-list narrowing demo (the paper's §3 / Tables 5-6).

Builds the item similarity graph from CompaReSetS+ selections and
compares four ways of picking the k most comparable items anchored at
the target: exact ILP (HiGHS), exact from-scratch branch and bound,
the paper's greedy (Algorithm 2), top-k similarity, and random.

Run:  python examples/core_list_narrowing.py
"""

import numpy as np

from repro import (
    SelectionConfig,
    build_instances,
    build_item_graph,
    generate_corpus,
    make_selector,
    solve_brute_force,
    solve_greedy,
    solve_ilp,
    solve_random,
    solve_top_k_similarity,
)


def main() -> None:
    corpus = generate_corpus("Toy", scale=0.5, seed=11)
    instance = next(
        iter(build_instances(corpus, max_comparisons=10, min_reviews=3))
    )
    config = SelectionConfig(max_reviews=3, mu=0.01)
    result = make_selector("CompaReSetS+").select(instance, config)
    graph = build_item_graph(result, config)
    n = graph.num_items
    k = min(4, n)
    print(f"Graph over {n} items, narrowing to k={k} (target always kept)\n")

    rng = np.random.default_rng(0)
    solutions = [
        solve_ilp(graph.weights, k, backend="milp"),
        solve_ilp(graph.weights, k, backend="bnb"),
        solve_brute_force(graph.weights, k),
        solve_greedy(graph.weights, k),
        solve_top_k_similarity(graph.weights, k),
        solve_random(graph.weights, k, rng),
    ]
    print(f"{'Algorithm':24s} {'weight':>9s}  {'optimal?':8s}  items")
    for solution in solutions:
        ids = [graph.product_ids[v] for v in solution.selected]
        print(
            f"{solution.algorithm:24s} {solution.weight:9.3f}  "
            f"{str(solution.proven_optimal):8s}  {ids}"
        )


if __name__ == "__main__":
    main()
