#!/usr/bin/env python
"""End-to-end pipeline on raw text: mine aspects, extract sentiment, select.

The selection algorithms consume (aspect, opinion) annotations.  The
paper takes them "as given" from an upstream frequency-based pipeline;
this example runs that pipeline from scratch on raw review text:

1. generate a corpus and *strip* its ground-truth annotations;
2. mine an aspect vocabulary (frequent terms ranked by rating
   correlation — the top-2000 -> top-500 recipe, scaled down);
3. extract (aspect, opinion) mentions with the lexicon-based extractor;
4. run CompaReSetS+ on the re-annotated corpus and show the agreement of
   the extracted annotations with the generator's ground truth.

Run:  python examples/full_pipeline.py
"""

from dataclasses import replace

from repro import SelectionConfig, build_instances, generate_corpus, make_selector
from repro.data.corpus import Corpus
from repro.data.synthetic import default_profiles, surface_stem_aliases
from repro.text.aspects import mine_aspects
from repro.text.sentiment import agreement_with_ground_truth, annotate_corpus


def main() -> None:
    truth = generate_corpus("Clothing", scale=0.5, seed=3)
    stripped = Corpus(
        name=truth.name,
        products=truth.products,
        reviews=[replace(r, mentions=()) for r in truth.reviews],
    )

    # The paper restricts candidates to Microsoft Concepts; the analogous
    # whitelist here is the category's known surface-term stems.
    concepts = frozenset(surface_stem_aliases(default_profiles(0.5)["Clothing"]))
    vocabulary = mine_aspects(
        stripped.reviews, candidate_pool=300, keep=60, concept_filter=concepts
    )
    print(f"Mined {len(vocabulary)} aspects; top 10 by |rating correlation|:")
    for term in vocabulary.terms[:10]:
        print(
            f"  {term.surface:15s} stem={term.stem:12s} "
            f"df={term.document_frequency:4d} corr={term.rating_correlation:+.3f}"
        )

    annotated = annotate_corpus(stripped, vocabulary)
    aliases = surface_stem_aliases(default_profiles(0.5)["Clothing"])
    agreement = agreement_with_ground_truth(annotated.reviews, truth.reviews, aliases)
    print(f"\nExtractor agreement with ground truth (signed mentions): {agreement:.1%}\n")

    instance = next(
        iter(build_instances(annotated, max_comparisons=6, min_reviews=3))
    )
    config = SelectionConfig(max_reviews=3, mu=0.01)
    result = make_selector("CompaReSetS+").select(instance, config)
    print(f"Selected review sets for {instance.num_items} items "
          f"(target: {instance.target.title!r}):")
    for item_index in range(min(3, instance.num_items)):
        print(f"\n  item {item_index}: {result.instance.products[item_index].title}")
        for review in result.selected_reviews(item_index):
            aspects = ", ".join(sorted(review.aspects))
            print(f"    [{aspects}] {review.text[:90]}...")


if __name__ == "__main__":
    main()
