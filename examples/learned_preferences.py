#!/usr/bin/env python
"""Learned aspect-level preferences as selection targets (§4.2.3 extension).

The paper suggests replacing the empirical opinion distribution tau_i
with aspect-level preference vectors learned by a model such as EFM.
This example fits the from-scratch Explicit Factor Model on a synthetic
corpus, inspects its predicted item aspect-quality vectors, and uses one
as the target for single-item review selection under the unary-scale
opinion scheme.

Run:  python examples/learned_preferences.py
"""

import numpy as np

from repro import OpinionScheme, SelectionConfig, build_instances, generate_corpus
from repro.core.compare_sets import select_for_item
from repro.core.selection import build_space
from repro.prefs import EfmConfig, EfmModel, efm_target_vector


def main() -> None:
    corpus = generate_corpus("Cellphone", scale=0.4, seed=9)
    model = EfmModel(EfmConfig(num_factors=8, iterations=120, seed=1)).fit(corpus)
    print(f"EFM fitted on {corpus}: rating RMSE = {model.reconstruction_error(corpus):.3f}\n")

    instance = next(iter(build_instances(corpus, max_comparisons=5, min_reviews=3)))
    target_product = instance.target
    config = SelectionConfig(max_reviews=3, scheme=OpinionScheme.UNARY_SCALE)
    space = build_space(instance, config)
    aspect_order = list(space.aspects)

    empirical_tau = space.opinion_vector(instance.reviews[0])
    learned_tau = efm_target_vector(model, target_product.product_id, aspect_order)
    print(f"Target item: {target_product.title}")
    print(f"{'aspect':<14s} {'empirical':>10s} {'EFM':>8s}")
    for position, aspect in enumerate(aspect_order):
        if empirical_tau[position] or learned_tau[position]:
            print(f"{aspect:<14s} {empirical_tau[position]:>10.3f} {learned_tau[position]:>8.3f}")

    gamma = space.aspect_vector(instance.reviews[0])
    for label, tau in (("empirical tau", empirical_tau), ("EFM tau", learned_tau)):
        selection = select_for_item(
            space, instance.reviews[0], tau, gamma, config
        )
        print(f"\nSelected with {label}: reviews {list(selection)}")
        for j in selection:
            review = instance.reviews[0][j]
            print(f"  {review.rating:.0f}* {review.text[:100]}")

    # How far apart do the two targets pull the selections?
    overlap = len(
        set(select_for_item(space, instance.reviews[0], empirical_tau, gamma, config))
        & set(select_for_item(space, instance.reviews[0], learned_tau, gamma, config))
    )
    print(f"\nSelection overlap between the two targets: {overlap}/3")
    print("cosine(empirical, EFM) =",
          round(float(np.dot(empirical_tau, learned_tau) /
                      (np.linalg.norm(empirical_tau) * np.linalg.norm(learned_tau) + 1e-12)), 3))


if __name__ == "__main__":
    main()
