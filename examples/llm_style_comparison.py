#!/usr/bin/env python
"""The combinatorial-explosion argument of §4.6.2, made concrete.

The paper notes that delegating comparative review selection to an LLM by
pairwise comparison explodes combinatorially: with ~18 comparative items
of ~25 reviews each, a naive enumeration needs more than 25^18 pairwise
reads, and choosing 3-review subsets per item multiplies that by
C(25,3)^18.  This example computes those numbers for an actual synthetic
instance and contrasts them with what CompaReSetS+ touches.

(The ChatGPT hallucination screenshot of the paper's Fig. 12 is a
qualitative anecdote with no measurable output and is documented as out
of scope in DESIGN.md.)

Run:  python examples/llm_style_comparison.py
"""

import time
from math import comb

from repro import SelectionConfig, build_instances, generate_corpus, make_selector


def main() -> None:
    corpus = generate_corpus("Cellphone", scale=1.0, seed=7)
    instance = max(
        build_instances(corpus, max_comparisons=20, min_reviews=3),
        key=lambda inst: inst.num_items,
    )
    review_counts = [len(reviews) for reviews in instance.reviews]
    n = instance.num_items
    m = 3

    naive_tuples = 1
    subset_tuples = 1
    for count in review_counts[1:]:
        naive_tuples *= count
        subset_tuples *= comb(count, min(m, count))

    print(f"Instance: {n} items, review counts {review_counts}")
    print(f"Naive LLM enumeration (one review per item):  {naive_tuples:.3e} tuples")
    print(f"Subset enumeration (m={m} reviews per item):  {subset_tuples:.3e} tuples")

    config = SelectionConfig(max_reviews=m, mu=0.01)
    selector = make_selector("CompaReSetS+")
    start = time.perf_counter()
    result = selector.select(instance, config)
    elapsed = time.perf_counter() - start
    touched = sum(review_counts) * m * n  # matrix columns x sparsity x items
    print(
        f"\nCompaReSetS+ solved the same instance in {elapsed:.2f}s, "
        f"touching at most ~{touched:,} column evaluations."
    )
    print(
        f"Selected {sum(len(s) for s in result.selections)} reviews across "
        f"{n} items."
    )


if __name__ == "__main__":
    main()
