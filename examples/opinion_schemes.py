#!/usr/bin/env python
"""Opinion-scheme generalisation demo (the paper's §4.2.3 / Table 4).

Runs the same selection workload under the three opinion definitions —
binary, 3-polarity, and unary-scale — and shows how the opinion vectors
and the resulting alignment differ.

Run:  python examples/opinion_schemes.py
"""

import numpy as np

from repro import OpinionScheme, SelectionConfig, build_instances, generate_corpus, make_selector
from repro.core.selection import build_space
from repro.eval.alignment import mean_alignment, target_vs_comparative_alignment


def show_vectors(instance, scheme: OpinionScheme) -> None:
    """Print the target item's tau under one scheme."""
    config = SelectionConfig(max_reviews=3, scheme=scheme)
    space = build_space(instance, config)
    tau = space.opinion_vector(instance.reviews[0])
    print(f"  {scheme.value:12s} dim={len(tau):3d}  "
          f"nonzeros={int(np.count_nonzero(tau)):3d}  max={tau.max():.3f}")


def main() -> None:
    corpus = generate_corpus("Cellphone", scale=0.5, seed=7)
    instances = list(build_instances(corpus, max_instances=12, max_comparisons=6, min_reviews=3))
    print(f"{len(instances)} instances\n")

    print("Target item's opinion vector tau under each scheme:")
    show_vectors(instances[0], OpinionScheme.BINARY)
    show_vectors(instances[0], OpinionScheme.THREE_POLARITY)
    show_vectors(instances[0], OpinionScheme.UNARY_SCALE)

    print("\nROUGE-L (x100) of target-vs-comparative alignment per scheme:")
    header = f"{'Algorithm':20s}" + "".join(
        f"{scheme.value:>14s}" for scheme in OpinionScheme
    )
    print(header)
    for name in ("Random", "CRS", "CompaReSetS", "CompaReSetS+"):
        selector = make_selector(name)
        row = f"{name:20s}"
        for scheme in OpinionScheme:
            config = SelectionConfig(max_reviews=3, mu=0.01, scheme=scheme)
            rng = np.random.default_rng(0)
            results = [selector.select(inst, config, rng=rng) for inst in instances]
            scores = mean_alignment([target_vs_comparative_alignment(r) for r in results])
            row += f"{scores.rouge_l * 100:14.2f}"
        print(row)


if __name__ == "__main__":
    main()
