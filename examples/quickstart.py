#!/usr/bin/env python
"""Quickstart: select comparative review sets and narrow the item list.

Generates a small synthetic Cellphone corpus, picks the first viable
comparison instance (one target product plus its "also bought"
candidates), runs CompaReSetS+ to select 3 reviews per item, narrows the
candidates to the 3 most mutually similar items with TargetHkS, and
prints the resulting comparison view.

Run:  python examples/quickstart.py
"""

from repro import (
    SelectionConfig,
    build_instances,
    build_item_graph,
    generate_corpus,
    make_selector,
    solve_greedy,
)


def main() -> None:
    corpus = generate_corpus("Cellphone", scale=0.5, seed=7)
    print(f"Corpus: {corpus}")
    print(f"Stats:  {corpus.stats()}\n")

    instance = next(iter(build_instances(corpus, max_comparisons=8, min_reviews=3)))
    print(
        f"Instance: target {instance.target.title!r} with "
        f"{len(instance.comparatives)} comparative items"
    )

    config = SelectionConfig(max_reviews=3, lam=1.0, mu=0.01)
    selector = make_selector("CompaReSetS+")
    result = selector.select(instance, config)

    graph = build_item_graph(result, config)
    core = solve_greedy(graph.weights, k=min(3, instance.num_items))
    kept = [0] + sorted(v for v in core.selected if v != 0)
    narrowed = result.restricted_to_items(kept)

    print(f"Core list (TargetHkS greedy, weight {core.weight:.2f}):\n")
    for item_index, product in enumerate(narrowed.instance.products):
        role = "TARGET " if item_index == 0 else "similar"
        print(f"[{role}] {product.title}")
        for review in narrowed.selected_reviews(item_index):
            print(f"   {review.rating:.0f}* {review.text}")
        print()


if __name__ == "__main__":
    main()
