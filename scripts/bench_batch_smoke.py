"""Smoke test for the cross-request batch solver: fast CI-sized checks.

Three invariants, sized to run in seconds:

* a burst of 8 distinct select requests solved in one ``select_many``
  call is byte-identical to solving them one at a time through the
  sequential selectors (shared artifacts, memo cleared per run);
* the provable candidate pre-screen returns the same selection as both
  the unscreened kernel and the scipy-nnls reference on a wide item,
  while actually pruning candidates;
* on a runner with >= 4 effective CPUs the batched burst must land
  under 6x the heaviest single solve (the full benchmark's floor); on
  starved CI only the overhead floor holds (batched <= 1.5x sequential).

Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/bench_batch_smoke.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.core.batch_solver import BatchJob, select_many
from repro.core.compare_sets import CompareSetsSelector, select_for_item
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.omp_kernel import SolverArtifacts, StageTimer
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.data.instances import ComparisonInstance
from repro.data.models import AspectMention, Product, Review

BURST = 8
BURST_REVIEWS = 200
SCREEN_REVIEWS = 1_200
REPEATS = 3


def effective_cpus() -> float:
    try:
        quota, period = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota != "max":
            return max(1.0, float(quota) / float(period))
    except (OSError, ValueError):
        pass
    return float(os.cpu_count() or 1)


def build_instance(rng, items, count, num_aspects, max_width):
    aspects = tuple(f"a{i}" for i in range(num_aspects))
    products = tuple(Product(f"p{i}", f"P{i}", "C") for i in range(items))
    all_reviews = []
    for item in range(items):
        reviews = []
        for index in range(count):
            width = int(rng.integers(1, max_width + 1))
            chosen = sorted(rng.choice(num_aspects, size=width, replace=False))
            mentions = tuple(
                AspectMention(
                    aspects[a],
                    int(rng.integers(-1, 2)),
                    float(rng.integers(1, 4)) / 2,
                )
                for a in chosen
            )
            reviews.append(
                Review(f"r{item}-{index}", f"p{item}", "u", 4.0, "t", mentions)
            )
        all_reviews.append(tuple(reviews))
    return ComparisonInstance(products=products, reviews=tuple(all_reviews))


def best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        begun = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begun)
    return best, result


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def burst_check() -> None:
    rng = np.random.default_rng(12)
    instance = build_instance(rng, 2, BURST_REVIEWS, 6, 2)
    config = SelectionConfig()
    space = build_space(instance, config)
    artifacts = tuple(
        SolverArtifacts(space, reviews, config.lam)
        for reviews in instance.reviews
    )
    jobs = []
    for index in range(BURST):
        m = 1 + index
        if index % 3 == 2:
            jobs.append(
                BatchJob("CompaReSetS+", SelectionConfig(max_reviews=m, mu=0.1))
            )
        else:
            jobs.append(BatchJob("CompaReSetS", SelectionConfig(max_reviews=m)))

    def clear():
        for item in artifacts:
            item.clear_solve_cache()

    def solo(job):
        if job.algorithm == "CompaReSetS":
            selector = CompareSetsSelector()
        else:
            selector = CompareSetsPlusSelector(variant=job.variant)
        return selector.select(
            instance, job.config, space=space, solver_artifacts=artifacts
        )

    select_many(instance, jobs, space=space, solver_artifacts=artifacts)

    def batched():
        clear()
        return select_many(instance, jobs, space=space, solver_artifacts=artifacts)

    def sequential():
        clear()
        return [solo(job) for job in jobs]

    batched_s, batched_results = best_of(batched)
    sequential_s, sequential_results = best_of(sequential)
    check(
        all(
            ours.selections == theirs.selections
            for ours, theirs in zip(batched_results, sequential_results)
        ),
        f"{BURST}-burst batched selections == sequential selections",
    )

    def heaviest():
        clear()
        return solo(jobs[-1])

    heaviest_s, _ = best_of(heaviest)
    multiplier = batched_s / heaviest_s
    overhead = batched_s / sequential_s
    print(
        f"   burst={batched_s * 1e3:.1f}ms sequential={sequential_s * 1e3:.1f}ms "
        f"heaviest solo={heaviest_s * 1e3:.1f}ms ({multiplier:.2f}x one solve)"
    )
    if effective_cpus() >= 4:
        check(multiplier <= 6.0, f"burst multiplier {multiplier:.2f} <= 6x one solve")
    else:
        check(
            overhead <= 1.5,
            f"burst overhead {overhead:.2f} <= 1.5x sequential (starved CPU floor)",
        )


def screen_check() -> None:
    rng = np.random.default_rng(21)
    instance = build_instance(rng, 1, SCREEN_REVIEWS, 12, 4)
    config = SelectionConfig(max_reviews=5)
    space = build_space(instance, config)
    reviews = instance.reviews[0]
    tau = space.opinion_vector(reviews)
    gamma = space.aspect_vector(reviews)

    timer = StageTimer()
    screened = SolverArtifacts(space, reviews, config.lam, screen="provable")
    ours = select_for_item(
        space, reviews, tau, gamma, config, artifacts=screened, timer=timer
    )
    unscreened = SolverArtifacts(space, reviews, config.lam, screen="off")
    kernel = select_for_item(
        space, reviews, tau, gamma, config, artifacts=unscreened
    )
    reference = select_for_item(
        space, reviews, tau, gamma, config, use_kernel=False
    )
    check(ours == kernel == reference, "provable screen == kernel == reference")
    total = timer.counters.get("screen_total", 0)
    kept = timer.counters.get("screen_kept", 0)
    check(0 < kept < total, f"screen pruned {total - kept}/{total} candidates")

    empirical = SolverArtifacts(space, reviews, config.lam, screen="empirical")
    loose = select_for_item(
        space, reviews, tau, gamma, config, artifacts=empirical
    )
    check(
        len(loose) <= config.max_reviews,
        "empirical screen returns a within-budget selection",
    )


def main() -> int:
    print(f"effective CPUs: {effective_cpus():.1f}")
    burst_check()
    screen_check()
    print("batch solver smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
