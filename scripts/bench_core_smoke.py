"""Smoke test for the Batch-OMP solver core: fast CI-sized equivalence check.

Runs the kernel against the scipy-nnls reference on a synthetic corpus and
a couple of hand-shaped instances, asserting identical selections and
objectives everywhere and that the warm kernel is at least as fast as the
reference (>= 1x; the full benchmark asserts the real speedup targets).
Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/bench_core_smoke.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.objective import compare_sets_objective
from repro.core.omp_kernel import SolverArtifacts
from repro.core.problem import SelectionConfig
from repro.core.selection import build_space
from repro.core.vectors import OpinionScheme
from repro.data.instances import ComparisonInstance, build_instance
from repro.data.models import AspectMention, Product, Review
from repro.data.synthetic import generate_corpus


def synthetic_instances(limit=4):
    corpus = generate_corpus("Cellphone", scale=0.35, seed=7)
    instances = []
    for product in corpus.products:
        instance = build_instance(
            corpus, product.product_id, max_comparisons=5, min_reviews=3
        )
        if instance is not None:
            instances.append(instance)
        if len(instances) == limit:
            break
    return instances


def duplicate_heavy_instance(items=3, count=200):
    rng = np.random.default_rng(11)
    aspects = tuple(f"a{i}" for i in range(6))
    products = tuple(Product(f"p{i}", f"P{i}", "C") for i in range(items))
    all_reviews = []
    for item in range(items):
        reviews = []
        for index in range(count):
            width = int(rng.integers(1, 3))
            chosen = sorted(rng.choice(len(aspects), size=width, replace=False))
            mentions = tuple(
                AspectMention(aspects[a], int(rng.choice((-1, 1))))
                for a in chosen
            )
            reviews.append(
                Review(f"r{item}-{index}", f"p{item}", "u", 4.0, "t", mentions)
            )
        all_reviews.append(tuple(reviews))
    return ComparisonInstance(products=products, reviews=tuple(all_reviews))


def check_equivalence(instance, config, label):
    reference = CompareSetsSelector(use_kernel=False).select(instance, config)
    kernel = CompareSetsSelector(use_kernel=True).select(instance, config)
    assert kernel.selections == reference.selections, (
        f"{label}: CompaReSetS selections diverged"
    )
    ref_obj = compare_sets_objective(reference, config)
    ker_obj = compare_sets_objective(kernel, config)
    assert ker_obj == ref_obj, f"{label}: objectives diverged"

    for variant in ("literal", "weighted"):
        plus_ref = CompareSetsPlusSelector(variant, use_kernel=False).select(
            instance, config
        )
        plus_ker = CompareSetsPlusSelector(variant, use_kernel=True).select(
            instance, config
        )
        assert plus_ker.selections == plus_ref.selections, (
            f"{label}: CompaReSetS+ ({variant}) selections diverged"
        )
    print(f"  ok: {label}")


def check_speedup():
    instance = duplicate_heavy_instance()
    config = SelectionConfig(max_reviews=5, sweeps=2)
    space = build_space(instance, config)
    artifacts = tuple(
        SolverArtifacts(space, reviews, config.lam)
        for reviews in instance.reviews
    )

    def best_of(fn, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            begun = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - begun)
        return best, result

    ref_s, reference = best_of(
        lambda: CompareSetsPlusSelector(use_kernel=False).select(
            instance, config, space=space
        )
    )

    def warm():
        for item in artifacts:
            item.clear_solve_cache()
        return CompareSetsPlusSelector(use_kernel=True).select(
            instance, config, space=space, solver_artifacts=artifacts
        )

    warm_s, kernel = best_of(warm)
    assert kernel.selections == reference.selections, "warm selections diverged"
    speedup = ref_s / warm_s
    assert speedup >= 1.0, f"kernel slower than reference: {speedup:.2f}x"
    print(f"  ok: warm kernel speedup {speedup:.1f}x (>= 1x required)")


def main() -> int:
    print("core solver smoke: synthetic instances, all schemes")
    for scheme in OpinionScheme:
        config = SelectionConfig(
            max_reviews=3, lam=1.0, mu=0.1, scheme=scheme, sweeps=2
        )
        for index, instance in enumerate(synthetic_instances()):
            check_equivalence(instance, config, f"{scheme.value} #{index}")
    print("core solver smoke: duplicate-heavy instance")
    check_equivalence(
        duplicate_heavy_instance(items=2, count=80),
        SelectionConfig(max_reviews=8, sweeps=2),
        "duplicate-heavy m=8",
    )
    print("core solver smoke: warm speedup")
    check_speedup()
    print("core solver smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
