"""Smoke test for the ROUGE evaluation kernel: fast CI-sized equivalence check.

Runs the interned-token kernel against the pure-Python reference on a
synthetic corpus and hand-shaped edge cases, asserting bitwise-identical
alignment scores everywhere and that the kernel is at least as fast as
the reference (>= 1x; the full benchmark asserts the real speedup
targets).  Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/bench_eval_smoke.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import make_selector
from repro.data.instances import build_instance
from repro.data.synthetic import generate_corpus
from repro.eval.alignment import AlignmentScorer
from repro.text.rouge import rouge_l, rouge_n
from repro.text.rouge_kernel import CorpusInterner, pairwise_alignment_matrix


def synthetic_results(limit=6):
    corpus = generate_corpus("Cellphone", scale=0.35, seed=7)
    config = SelectionConfig(max_reviews=4)
    results = []
    for product in corpus.products:
        instance = build_instance(
            corpus, product.product_id, max_comparisons=5, min_reviews=3
        )
        if instance is not None:
            results.append(make_selector("CompaReSetS").select(instance, config))
        if len(results) == limit:
            break
    return results


def check_grid_edges():
    groups = [
        ["", "battery", "battery battery", "the screen is great", "café 好 café"],
        ["great great screen", "", "don't don't", "the the the battery the"],
    ]
    interner = CorpusInterner()
    grid = pairwise_alignment_matrix(groups[0], groups[1], interner=interner)
    for i, a in enumerate(groups[0]):
        for j, b in enumerate(groups[1]):
            ta, tb = interner.tokens(a), interner.tokens(b)
            assert grid.rouge_1[i, j] == rouge_n(ta, tb, 1).f1, (i, j, "rouge-1")
            assert grid.rouge_2[i, j] == rouge_n(ta, tb, 2).f1, (i, j, "rouge-2")
            assert grid.rouge_l[i, j] == rouge_l(ta, tb).f1, (i, j, "rouge-l")
    print("  ok: edge-case grids bitwise equal")


def check_scorer_equivalence(results):
    kernel = AlignmentScorer(use_kernel=True)
    reference = AlignmentScorer(use_kernel=False)
    for index, result in enumerate(results):
        assert kernel.score_both(result) == reference.score_both(result), (
            f"result #{index}: alignment scores diverged"
        )
    print(f"  ok: {len(results)} results scored bitwise equal (both views)")


def check_speedup(results):
    def best_of(fn, repeats=3):
        best, value = float("inf"), None
        for _ in range(repeats):
            begun = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - begun)
        return best, value

    def score_all(use_kernel):
        scorer = AlignmentScorer(use_kernel=use_kernel)
        return [scorer.score_both(result) for result in results]

    ref_s, ref_scores = best_of(lambda: score_all(False))
    ker_s, ker_scores = best_of(lambda: score_all(True))
    assert ref_scores == ker_scores, "scores diverged during timing"
    speedup = ref_s / ker_s
    assert speedup >= 1.0, f"kernel slower than reference: {speedup:.2f}x"
    print(f"  ok: kernel speedup {speedup:.1f}x (>= 1x required)")


def check_parallel_store():
    """The shared worker store must be published and cleaned up."""
    from repro.eval import parallel

    corpus = generate_corpus("Cellphone", scale=0.35, seed=7)
    instances = []
    for product in corpus.products:
        instance = build_instance(
            corpus, product.product_id, max_comparisons=4, min_reviews=3
        )
        if instance is not None:
            instances.append(instance)
        if len(instances) == 3:
            break
    config = SelectionConfig(max_reviews=3)
    inline = parallel.select_parallel(
        "CompaReSetS", instances, config, max_workers=1
    )
    pooled = parallel.select_parallel(
        "CompaReSetS", instances, config, max_workers=2
    )
    assert [r.selections for r in inline] == [r.selections for r in pooled], (
        "pool selections diverged from inline"
    )
    assert parallel._WORKER_STORE == {}, "worker store leaked after run"
    print("  ok: pooled selections match inline; worker store cleaned up")


def main() -> int:
    print("eval kernel smoke: edge-case grids")
    check_grid_edges()
    results = synthetic_results()
    print("eval kernel smoke: scorer equivalence")
    check_scorer_equivalence(results)
    print("eval kernel smoke: speedup")
    check_speedup(results)
    print("eval kernel smoke: parallel shared store")
    check_parallel_store()
    print("eval kernel smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
