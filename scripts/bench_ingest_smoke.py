"""Smoke test for incremental ingest: fast CI-sized checks.

Three invariants, sized to run in seconds:

* applying a small review delta through ``ItemStore.apply_delta``
  patches the cached artifacts in place (``patched >= 1``,
  ``rebuilt == 0``) and the patched artifacts are byte-identical to a
  cold rebuild of the final corpus — dedup order, Gram bytes,
  taus/Gamma/columns, and the per-item kernel selections;
* the delta ack's version string is lineage-chained
  (``delta_fingerprint`` over the previous version), not a full-corpus
  rehash;
* on a runner with >= 4 effective CPUs the re-warm at 1k reviews/item
  must be >= 4x faster than the cold rebuild (the full benchmark's
  floor is 5x); on starved CI only a 1.5x floor holds.

Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/bench_ingest_smoke.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.core.omp_kernel import solve_item
from repro.core.problem import SelectionConfig
from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Product, Review
from repro.serve.store import ItemStore, _patch_mismatch, delta_fingerprint

ITEMS = 4
NUM_ASPECTS = 24
REVIEWS_PER_ITEM = 1_000
PATTERNS = 384
REPEATS = 3
TARGET = "p0"
PATCHED = "p1"


def effective_cpus() -> float:
    try:
        quota, period = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if quota != "max":
            return max(1.0, float(quota) / float(period))
    except (OSError, ValueError):
        pass
    return float(os.cpu_count() or 1)


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)
    print(f"ok: {message}")


def build_workload():
    rng = np.random.default_rng(19)
    pool, seen = [], set()
    while len(pool) < PATTERNS:
        width = int(rng.integers(1, 4))
        aspects = tuple(
            sorted(rng.choice(NUM_ASPECTS, size=width, replace=False).tolist())
        )
        signs = tuple(int(s) for s in rng.choice([-1, 1], size=width))
        if (aspects, signs) in seen:
            continue
        seen.add((aspects, signs))
        pool.append(
            tuple(
                AspectMention(f"a{a:02d}", sign, 1.0)
                for a, sign in zip(aspects, signs)
            )
        )
    products = [
        Product(
            f"p{i}",
            f"Item {i}",
            "bench",
            also_bought=tuple(f"p{j}" for j in range(ITEMS) if j != i),
        )
        for i in range(ITEMS)
    ]
    reviews, used = [], []
    for i in range(ITEMS):
        for j in range(REVIEWS_PER_ITEM):
            pattern = pool[int(rng.integers(len(pool)))]
            used.append(pattern)
            reviews.append(
                Review(f"r{i}-{j}", f"p{i}", f"u{j % 53}", 4.0, "", pattern)
            )
    delta = tuple(
        Review(f"d-{j}", PATCHED, f"u{j % 53}", 4.0, "", used[j])
        for j in range(max(1, REVIEWS_PER_ITEM // 100))
    )
    return Corpus("IngestSmoke", products, reviews), delta


def materialise(artifacts):
    for solver in artifacts.solver:
        block = solver.base_block()
        block.gram_op
        block.gram_asp
    return artifacts


def selections(artifacts, config):
    return [
        (sel.selected, sel.objective)
        for sel in (
            solve_item(solver, tau, artifacts.gamma, config)
            for tau, solver in zip(artifacts.taus, artifacts.solver)
        )
    ]


def main() -> int:
    print(f"effective CPUs: {effective_cpus():.1f}")
    config = SelectionConfig(max_reviews=5)
    corpus, delta = build_workload()
    cold_corpus = corpus.with_appended_reviews(delta)

    patch_s = float("inf")
    outcome, patched_store, previous_version = None, None, ""
    for _ in range(REPEATS):
        store = ItemStore(corpus)
        materialise(store.artifacts(TARGET, config))
        version_before = store.version
        begun = time.perf_counter()
        candidate = store.apply_delta(delta)
        elapsed = time.perf_counter() - begun
        if elapsed < patch_s:
            patch_s = elapsed
            outcome, patched_store = candidate, store
            previous_version = version_before

    check(
        outcome.patched >= 1 and outcome.rebuilt == 0,
        f"delta patched artifacts in place "
        f"(patched={outcome.patched}, rebuilt={outcome.rebuilt})",
    )
    check(
        outcome.version.endswith(delta_fingerprint(previous_version, delta)),
        "ack version is lineage-chained from the previous version",
    )

    cold_s, cold_art = float("inf"), None
    for _ in range(REPEATS):
        begun = time.perf_counter()
        art = materialise(ItemStore(cold_corpus).artifacts(TARGET, config))
        elapsed = time.perf_counter() - begun
        if elapsed < cold_s:
            cold_s, cold_art = elapsed, art

    patched_art = patched_store.artifacts(TARGET, config)
    mismatch = _patch_mismatch(patched_art, cold_art)
    check(mismatch is None, f"patched artifacts == cold rebuild bytes ({mismatch})")
    check(
        selections(patched_art, config) == selections(cold_art, config),
        "kernel selections identical after patch",
    )

    speedup = cold_s / patch_s
    print(
        f"   patch={patch_s * 1e3:.1f}ms cold={cold_s * 1e3:.1f}ms "
        f"({speedup:.1f}x)"
    )
    if effective_cpus() >= 4:
        check(speedup >= 4.0, f"re-warm speedup {speedup:.1f} >= 4x cold rebuild")
    else:
        check(
            speedup >= 1.5,
            f"re-warm speedup {speedup:.1f} >= 1.5x (starved CPU floor)",
        )
    print("ingest incremental smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
