"""Smoke test for `repro-cli serve --shards N`: gateway + 2 shard workers.

Boots the single-process server and a 2-shard cluster as real
subprocesses (argv parsing, corpus partitioning, shard supervision, the
asyncio gateway — the full path CI cares about) and asserts the cluster
answers ``/v1/select`` and ``/v1/narrow`` byte-identically to the
single-process reference, modulo provenance.  A second leg boots a
3-shard ``--replicas 2`` cluster, SIGKILLs one shard worker, and
asserts reads keep answering 200 throughout the outage (failover to a
replica, never a 503).  Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def post(url: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(url, data=json.dumps(body).encode())
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_raw(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, response.read()


def boot(argv: list[str], env: dict) -> tuple[subprocess.Popen, str]:
    """Start a serve subprocess and wait for its address announcement."""
    process = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True, env=env)
    started = time.monotonic()
    for line in process.stdout:
        print("  server:", line.rstrip())
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
        if time.monotonic() - started > 120:
            break
    process.terminate()
    raise AssertionError(f"server never announced its address: {argv}")


def worker_pids(server_pid: int) -> list[int]:
    """PIDs of a serve process's shard workers (its direct children)."""
    path = f"/proc/{server_pid}/task/{server_pid}/children"
    try:
        with open(path) as handle:
            return [int(token) for token in handle.read().split()]
    except OSError:
        return []


def replica_failover_leg(corpus: str, tmp: str, env: dict) -> None:
    """Boot --shards 3 --replicas 2, SIGKILL one worker, reads stay 200."""
    import signal

    cluster, base = boot(
        [sys.executable, "-m", "repro.cli", "serve", "--corpus", corpus,
         "--shards", "3", "--replicas", "2", "--gateway-port", "0",
         "--state-dir", os.path.join(tmp, "replica-state")],
        env,
    )
    try:
        # Targets spanning the ring: every product in the corpus.
        targets = []
        with open(corpus) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("kind") == "product":
                    targets.append(record["product_id"])
        assert len(targets) >= 3, targets

        # Warm every shard first so the post-kill loop issues fast
        # (cached) reads that actually land inside the outage window.
        for target in targets:
            status, payload = post(f"{base}/v1/select", {"target": target, "m": 2})
            assert status in (200, 422), (target, status, payload)

        children = worker_pids(cluster.pid)
        assert len(children) == 3, f"expected 3 shard workers, got {children}"
        os.kill(children[0], signal.SIGKILL)

        # During the outage + restart window every read must answer
        # 200 (failover to the replica) or 422 (unviable target) —
        # never 503, never a transport error.
        checked = 0
        deadline = time.monotonic() + 4.0
        while time.monotonic() < deadline:
            for target in targets:
                status, payload = post(
                    f"{base}/v1/select", {"target": target, "m": 2}
                )
                assert status in (200, 422), (target, status, payload)
                checked += 1
        assert checked > 0

        # Prove at least one request actually crossed the failover path.
        deadline = time.monotonic() + 30.0
        while True:
            status, raw = get_raw(f"{base}/metrics?format=prometheus")
            assert status == 200
            if "repro_failover_total" in raw.decode():
                break
            assert time.monotonic() < deadline, "no failover was recorded"
            time.sleep(0.2)
        print(f"cluster-smoke OK: {checked} reads served through a "
              "SIGKILLed primary at replicas=2, zero 5xx")
    finally:
        cluster.terminate()
        cluster.wait(timeout=30)


def main() -> int:
    env = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src")}
    with tempfile.TemporaryDirectory() as tmp:
        corpus = os.path.join(tmp, "toy.jsonl")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--category",
             "Toy", "--scale", "0.3", "--seed", "3", "--out", corpus],
            check=True, env=env, timeout=120,
        )

        single, single_base = boot(
            [sys.executable, "-m", "repro.cli", "serve", "--corpus", corpus,
             "--port", "0"],
            env,
        )
        cluster, cluster_base = boot(
            [sys.executable, "-m", "repro.cli", "serve", "--corpus", corpus,
             "--shards", "2", "--gateway-port", "0",
             "--state-dir", os.path.join(tmp, "cluster-state")],
            env,
        )
        try:
            mismatches = 0
            checked = 0
            for body, path in (
                ({"m": 3}, "/v1/select"),
                ({"m": 2, "mu": 0.2}, "/v1/select"),
                ({"m": 2, "k": 3}, "/v1/narrow"),
            ):
                s_status, s_payload = post(f"{single_base}{path}", body)
                c_status, c_payload = post(f"{cluster_base}{path}", body)
                assert s_status == c_status == 200, (path, s_status, c_status)
                single_result = json.dumps(s_payload["result"], sort_keys=True)
                cluster_result = json.dumps(c_payload["result"], sort_keys=True)
                checked += 1
                if single_result != cluster_result:
                    mismatches += 1
                    print(f"MISMATCH on {path} {body}")
            assert mismatches == 0, f"{mismatches}/{checked} responses differ"

            status, raw = get_raw(f"{cluster_base}/healthz")
            health = json.loads(raw)
            assert status == 200 and health["status"] == "ok", health
            assert sorted(health["shards"]) == ["0", "1"], health

            status, raw = get_raw(f"{cluster_base}/metrics?format=prometheus")
            text = raw.decode()
            assert status == 200
            assert "repro_shard_requests_total" in text, text[:400]
            assert "# ---- shard 1 ----" in text

            print(f"cluster-smoke OK: {checked}/{checked} responses "
                  "byte-identical across 1-shard and 2-shard topologies")
        finally:
            for process in (cluster, single):
                process.terminate()
                process.wait(timeout=30)

        replica_failover_leg(corpus, tmp, env)
        return 0


if __name__ == "__main__":
    sys.exit(main())
