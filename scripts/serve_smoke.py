"""Smoke test for `repro-cli serve`: boot the real server, hit the API.

Exercises the whole subprocess path — argv parsing, corpus loading, the
ephemeral-port announcement line, and the HTTP endpoints — the parts an
in-process test cannot cover.  Exits non-zero on any failure.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def post(url: str, body: dict) -> dict:
    request = urllib.request.Request(url, data=json.dumps(body).encode())
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 200, response.status
        return json.loads(response.read())


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.status == 200, response.status
        return json.loads(response.read())


def main() -> int:
    env = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src")}
    with tempfile.TemporaryDirectory() as tmp:
        corpus = os.path.join(tmp, "toy.jsonl")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "--category",
             "Toy", "--scale", "0.3", "--seed", "3", "--out", corpus],
            check=True, env=env, timeout=120,
        )

        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--corpus", corpus,
             "--port", "0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            base = None
            started = time.monotonic()
            for line in server.stdout:
                print("  server:", line.rstrip())
                if line.startswith("serving on "):
                    base = line.split("serving on ", 1)[1].strip()
                    break
                if time.monotonic() - started > 60:
                    break
            assert base, "server never announced its address"

            health = get(f"{base}/healthz")
            assert health["status"] == "ok", health

            first = post(f"{base}/v1/select", {"m": 3})
            assert first["result"]["selections"], first
            second = post(f"{base}/v1/select", {"m": 3})
            assert second["provenance"]["cache"] == "hit", second["provenance"]
            assert second["result"] == first["result"]

            narrowed = post(f"{base}/v1/narrow", {"m": 2, "k": 3})
            assert narrowed["result"]["core_product_ids"], narrowed

            metrics = get(f"{base}/metrics")
            ratio = metrics["gauges"]["repro_cache_hit_ratio"]
            assert ratio > 0, metrics["gauges"]

            print(f"serve-smoke OK: warm hit {second['provenance']['wall_ms']:.3f} ms, "
                  f"hit ratio {ratio:.2f}")
            return 0
        finally:
            server.terminate()
            server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
