"""Legacy entry point so `pip install -e .` works without the wheel package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on environments whose setuptools cannot do
PEP 660 builds (see the note in pyproject.toml).
"""

from setuptools import setup

setup()
