"""CompaReSetS: selecting comparative sets of reviews across multiple items.

A faithful, self-contained reproduction of Le & Lauw (EDBT 2025):

* :mod:`repro.core` — the CompaReSetS / CompaReSetS+ selection problems
  and their Integer-Regression solvers, plus the CRS/greedy/random
  baselines.
* :mod:`repro.graph` — the TargetHkS core-list problem: similarity graph,
  exact ILP (HiGHS + from-scratch branch and bound), greedy, baselines.
* :mod:`repro.text` — the NLP substrate: tokeniser, Porter stemmer,
  opinion lexicon, aspect mining, sentiment extraction, ROUGE.
* :mod:`repro.data` — review/product models, synthetic Amazon-like corpus
  generation, JSONL I/O, and comparison-instance extraction.
* :mod:`repro.eval` — alignment measurement, objective ratios,
  information loss, statistics, the simulated user study, and experiment
  orchestration.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import (
        SelectionConfig, generate_corpus, build_instances, make_selector,
        build_item_graph, solve_greedy,
    )

    corpus = generate_corpus("Cellphone", seed=7)
    instance = next(iter(build_instances(corpus, min_reviews=3)))
    config = SelectionConfig(max_reviews=3)
    result = make_selector("CompaReSetS+").select(instance, config)
    graph = build_item_graph(result, config)
    core_list = solve_greedy(graph.weights, k=3)
"""

from repro.core import (
    CompareSetsPlusSelector,
    CompareSetsSelector,
    CrsSelector,
    GreedySelector,
    OpinionScheme,
    RandomSelector,
    SelectionConfig,
    SelectionResult,
    Selector,
    compare_sets_objective,
    compare_sets_plus_objective,
    make_selector,
)
from repro.data import (
    AspectMention,
    ComparisonInstance,
    Corpus,
    Product,
    Review,
    build_instances,
    generate_corpus,
    load_corpus,
    save_corpus,
)
from repro.graph import (
    ItemGraph,
    build_item_graph,
    solve_brute_force,
    solve_greedy,
    solve_ilp,
    solve_random,
    solve_top_k_similarity,
)

# Imported for its side effect: registers the simulated LLM-Judge selector
# in the registry so make_selector("LLM-Judge") works out of the box.
from repro import llm_sim as _llm_sim  # noqa: E402,F401

__version__ = "1.0.0"

__all__ = [
    "AspectMention",
    "CompareSetsPlusSelector",
    "CompareSetsSelector",
    "ComparisonInstance",
    "Corpus",
    "CrsSelector",
    "GreedySelector",
    "ItemGraph",
    "OpinionScheme",
    "Product",
    "RandomSelector",
    "Review",
    "SelectionConfig",
    "SelectionResult",
    "Selector",
    "build_instances",
    "build_item_graph",
    "compare_sets_objective",
    "compare_sets_plus_objective",
    "generate_corpus",
    "load_corpus",
    "make_selector",
    "save_corpus",
    "solve_brute_force",
    "solve_greedy",
    "solve_ilp",
    "solve_random",
    "solve_top_k_similarity",
]
