"""Command-line interface for the CompaReSetS reproduction.

Subcommands
-----------
``generate``        write a synthetic category corpus to JSONL
``stats``           print Table-2 statistics for a corpus file
``select``          select comparative review sets for one target item
``narrow``          select, then narrow to the k-item core list (TargetHkS)
``serve``           run the online selection-serving HTTP API
``convert-amazon``  convert a McAuley-format reviews+metadata dump pair
``experiment``      regenerate one of the paper's tables/figures

Examples
--------
::

    repro-cli generate --category Toy --scale 0.5 --out toy.jsonl
    repro-cli stats toy.jsonl
    repro-cli narrow toy.jsonl --target TOY00003 --m 3 --k 3
    repro-cli serve --corpus toy.jsonl --port 8080
    repro-cli experiment table3 --scale 0.5 --instances 20

A missing or corrupt ``--corpus`` file exits with status 2 and a
one-line usage error instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.core.problem import SelectionConfig
from repro.core.selection import SELECTORS, make_selector
from repro.data.instances import build_instance
from repro.data.io import load_corpus, save_corpus
from repro.data.synthetic import generate_corpus
from repro.eval.runner import EvaluationSettings
from repro.graph.similarity import build_item_graph
from repro.graph.target_hks import solve_greedy, solve_ilp


def _add_selection_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, default=3, help="review budget per item")
    parser.add_argument("--lam", type=float, default=1.0, help="lambda (aspect weight)")
    parser.add_argument("--mu", type=float, default=0.01, help="mu (cross-item weight)")
    parser.add_argument(
        "--algorithm",
        default="CompaReSetS+",
        choices=sorted(SELECTORS),
        help="selection algorithm",
    )
    parser.add_argument(
        "--max-comparisons", type=int, default=10, help="cap on comparative items"
    )
    parser.add_argument(
        "--min-reviews", type=int, default=3, help="minimum reviews per item"
    )


def _config_from(args: argparse.Namespace) -> SelectionConfig:
    return SelectionConfig(max_reviews=args.m, lam=args.lam, mu=args.mu)


def _fail_usage(message: str) -> "SystemExit":
    """Print a one-line usage error and exit with status 2."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load_corpus_checked(path: str):
    """Load a corpus, mapping missing/corrupt files to a usage error."""
    try:
        return load_corpus(path)
    except FileNotFoundError:
        raise _fail_usage(f"corpus file not found: {path}") from None
    except IsADirectoryError:
        raise _fail_usage(f"corpus path is a directory: {path}") from None
    except (ValueError, KeyError, OSError, UnicodeDecodeError) as exc:
        raise _fail_usage(f"corpus file {path} is corrupt: {exc}") from None


def _resolve_instance(args: argparse.Namespace):
    corpus = _load_corpus_checked(args.corpus)
    target = args.target
    if target is None:
        for product in corpus.products:
            candidate = build_instance(
                corpus,
                product.product_id,
                max_comparisons=args.max_comparisons,
                min_reviews=args.min_reviews,
            )
            if candidate is not None:
                return corpus, candidate
        raise SystemExit("no viable target item in the corpus")
    if not corpus.has_product(target):
        raise SystemExit(f"target {target!r} is not in the corpus")
    instance = build_instance(
        corpus,
        target,
        max_comparisons=args.max_comparisons,
        min_reviews=args.min_reviews,
    )
    if instance is None:
        raise SystemExit(f"target {target!r} is not a viable instance")
    return corpus, instance


def _print_result(result) -> None:
    for item_index, product in enumerate(result.instance.products):
        role = "TARGET " if item_index == 0 else "similar"
        print(f"[{role}] {product.title} ({product.product_id})")
        for review in result.selected_reviews(item_index):
            print(f"    {review.rating:.0f}* {review.text}")
        print()


def _command_generate(args: argparse.Namespace) -> int:
    corpus = generate_corpus(args.category, scale=args.scale, seed=args.seed)
    save_corpus(corpus, args.out)
    stats = corpus.stats()
    print(
        f"wrote {args.out}: {stats.num_products} products, "
        f"{stats.num_reviews} reviews"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.eval.reporting import format_table

    stats = _load_corpus_checked(args.corpus).stats(
        min_reviews_for_target=args.min_reviews
    )
    rows = stats.as_rows()
    print(format_table(["", stats.name], [[label, value] for label, value in rows]))
    return 0


def _command_select(args: argparse.Namespace) -> int:
    _, instance = _resolve_instance(args)
    result = make_selector(args.algorithm).select(instance, _config_from(args))
    _print_result(result)
    return 0


def _command_narrow(args: argparse.Namespace) -> int:
    _, instance = _resolve_instance(args)
    config = _config_from(args)
    result = make_selector(args.algorithm).select(instance, config)
    graph = build_item_graph(result, config)
    k = min(args.k, instance.num_items)
    provenance = None
    if args.backend == "fallback":
        from repro.resilience.fallback import FallbackChain

        outcome = FallbackChain(time_limit=args.time_limit).solve(graph.weights, k)
        solution = outcome.solution
        provenance = ", ".join(
            f"{a.backend}={a.status}" for a in outcome.attempts
        )
    elif args.exact or args.backend != "milp":
        solution = solve_ilp(
            graph.weights, k, time_limit=args.time_limit, backend=args.backend
        )
    else:
        solution = solve_greedy(graph.weights, k)
    kept = [0] + sorted(v for v in solution.selected if v != 0)
    print(
        f"core list of {k} items ({solution.algorithm}, "
        f"weight {solution.weight:.3f}):\n"
    )
    if provenance is not None:
        print(f"[fallback chain: {provenance}]\n")
    _print_result(result.restricted_to_items(kept))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.admission import AdmissionController
    from repro.serve.engine import SelectionEngine, build_durable_engine
    from repro.serve.http import run_server
    from repro.serve.store import ItemStore

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", flush=True)
        return 2
    if args.replicas < 1:
        print(f"--replicas must be >= 1, got {args.replicas}", flush=True)
        return 2
    if args.replicas > args.shards:
        print(
            f"--replicas {args.replicas} cannot exceed --shards "
            f"{args.shards} (each replica must land on a distinct shard)",
            flush=True,
        )
        return 2
    if args.hint_limit < 1:
        print(f"--hint-limit must be >= 1, got {args.hint_limit}", flush=True)
        return 2
    if args.shards > 1:
        # Cluster mode: supervised shard workers + asyncio gateway.  The
        # --shards 1 default falls through to the unchanged
        # single-process path below.
        if args.supervised:
            print("--supervised is implied by --shards > 1", flush=True)
            return 2
        return _serve_cluster(args)

    admission = AdmissionController(
        max_pending=args.max_pending,
        rate=args.rate_limit,
        burst=args.rate_burst,
    )
    engine_options = dict(
        cache_size=args.cache_size,
        ttl=args.ttl,
        workers=args.workers,
        batch_window=args.batch_window,
        admission=admission,
    )

    if args.supervised:
        if args.state_dir is None:
            print("--supervised requires --state-dir", flush=True)
            return 2
        return _serve_supervised(args)

    if args.state_dir is not None:
        # Durable serving: WAL-backed ingest, generation snapshots, and
        # snapshot+WAL recovery on restart.
        engine = build_durable_engine(
            args.state_dir,
            corpus_path=args.corpus,
            cache_tier=args.cache_tier,
            snapshot_every=args.snapshot_every,
            **engine_options,
        )
        recovery = engine.recovery.as_dict() if engine.recovery else {}
        print(
            f"recovered state ({recovery.get('mode', 'cold')}): "
            f"version {engine.store.version}, "
            f"{recovery.get('replayed_deltas', 0)} WAL deltas replayed",
            flush=True,
        )
    else:
        corpus = _load_corpus_checked(args.corpus)
        store = ItemStore(corpus)
        engine = SelectionEngine(store, **engine_options)
        print(
            f"loaded {corpus.name}: {len(corpus.products)} products, "
            f"{len(corpus.reviews)} reviews (version {store.version})",
            flush=True,
        )
    if args.verify_patches:
        engine.store.patch_verify = True
    # run_server installs SIGTERM/SIGINT handlers that drain in-flight
    # requests (up to --drain-timeout seconds) before the process exits.
    run_server(engine, args.host, args.port, drain_timeout=args.drain_timeout)
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """Boot a sharded cluster: N supervised workers + asyncio gateway.

    ``--state-dir`` lays out one ``shard-{i}/`` durable directory per
    worker (each with its own WAL and snapshots); without it the cluster
    uses a throwaway temp layout.  The gateway prints the same
    ``serving on http://...`` line as the single-process server so smoke
    harnesses drive both identically.
    """
    import signal as _signal
    import threading

    from repro.serve.cluster import ClusterConfig, ClusterError, ServingCluster

    if not Path(args.corpus).is_file():
        print(f"corpus file not found: {args.corpus}", flush=True)
        return 2
    config = ClusterConfig(
        corpus_path=args.corpus,
        shards=args.shards,
        replicas=args.replicas,
        hint_limit=args.hint_limit,
        host=args.host,
        gateway_port=(
            args.gateway_port if args.gateway_port is not None else args.port
        ),
        state_dir=args.state_dir,
        engine_options={
            "cache_size": args.cache_size,
            "ttl": args.ttl,
            "workers": args.workers,
            "batch_window": args.batch_window,
            "cache_tier": args.cache_tier,
            "snapshot_every": args.snapshot_every,
            # Per-shard admission backstop behind the gateway's global
            # controller (the worker builds its own controller).
            "max_pending": args.max_pending,
        },
        max_pending=args.max_pending,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
    )
    cluster = ServingCluster(config)
    try:
        cluster.start()
    except ClusterError as exc:
        print(f"cluster start failed: {exc}", flush=True)
        cluster.stop()
        return 1
    host, port = cluster.gateway_address
    assert cluster.plan is not None
    shard_sizes = ", ".join(
        f"shard {i}: {len(owned)} items" for i, owned in enumerate(cluster.plan.owned)
    )
    print(
        f"cluster of {args.shards} shards, replicas={args.replicas} "
        f"({shard_sizes})",
        flush=True,
    )
    print(f"serving on http://{host}:{port}", flush=True)

    stop = threading.Event()

    def _handle_signal(signum, frame) -> None:
        stop.set()

    installed: list[int] = []
    if threading.current_thread() is threading.main_thread():
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                _signal.signal(signum, _handle_signal)
                installed.append(signum)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                break
    try:
        while not stop.is_set():
            stop.wait(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        print("stopping cluster...", flush=True)
        for signum in installed:
            _signal.signal(signum, _signal.SIG_DFL)
        cluster.stop()
        print("server stopped", flush=True)
    return 0


def _serve_supervised(args: argparse.Namespace) -> int:
    """Run the engine in a supervised child with crash auto-restart."""
    import time as _time

    from repro.serve.supervisor import Supervisor, SupervisorError

    supervisor = Supervisor(
        args.state_dir,
        corpus_path=args.corpus,
        host=args.host,
        port=args.port,
        engine_options={
            "cache_size": args.cache_size,
            "ttl": args.ttl,
            "workers": args.workers,
            "batch_window": args.batch_window,
            "cache_tier": args.cache_tier,
            "snapshot_every": args.snapshot_every,
        },
    )
    supervisor.start()
    try:
        ready = supervisor.wait_ready()
    except SupervisorError as exc:
        print(f"supervised start failed: {exc}", flush=True)
        supervisor.stop()
        return 1
    print(
        f"supervised serving on http://{args.host}:{ready['port']} "
        f"(version {ready['version']}, recovery "
        f"{(ready.get('recovery') or {}).get('mode', 'cold')})",
        flush=True,
    )
    try:
        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        print("stopping supervised server...", flush=True)
    finally:
        supervisor.stop()
    return 0


def _command_convert_amazon(args: argparse.Namespace) -> int:
    from repro.data.amazon import convert_amazon

    corpus = convert_amazon(
        args.reviews,
        args.metadata,
        category=args.category,
        annotate=not args.no_annotate,
        candidate_pool=args.candidate_pool,
        keep=args.keep,
    )
    save_corpus(corpus, args.out)
    print(
        f"wrote {args.out}: {len(corpus.products)} products, "
        f"{len(corpus.reviews)} reviews"
    )
    return 0


_EXPERIMENTS = {
    "table2", "table3", "table4", "table5", "table6", "table7",
    "fig5", "fig6", "fig7", "fig11", "case-study", "all",
}


def _command_experiment(args: argparse.Namespace) -> int:
    import contextlib

    from repro.experiments.persist import checkpointing
    from repro.resilience.deadline import DeadlineExceeded, deadline_scope

    settings = EvaluationSettings(
        scale=args.scale,
        seed=args.seed,
        max_instances=args.instances,
        max_comparisons=args.max_comparisons,
        min_reviews=args.min_reviews,
        budgets=tuple(args.budgets),
    )
    name = args.name
    if name == "all":
        for each in sorted(_EXPERIMENTS - {"all"}):
            print(f"\n########## {each} ##########\n")
            sub_args = argparse.Namespace(**vars(args))
            sub_args.name = each
            _command_experiment(sub_args)
        return 0

    with contextlib.ExitStack() as stack:
        if args.checkpoint is not None:
            journal = stack.enter_context(checkpointing(args.checkpoint))
            if len(journal):
                print(
                    f"[resuming from checkpoint {args.checkpoint}: "
                    f"{len(journal)} instances journaled]\n"
                )
        if args.time_budget is not None:
            stack.enter_context(deadline_scope(args.time_budget))
        try:
            return _run_one_experiment(args, settings)
        except DeadlineExceeded as exc:
            print(f"\naborted: {exc}", file=sys.stderr)
            if args.checkpoint is not None:
                print(
                    f"completed instances are journaled in {args.checkpoint}; "
                    "rerun with the same --checkpoint to resume",
                    file=sys.stderr,
                )
            else:
                print(
                    "rerun with --checkpoint FILE to make interrupted runs "
                    "resumable",
                    file=sys.stderr,
                )
            return 2


def _run_one_experiment(args: argparse.Namespace, settings) -> int:
    from repro import experiments

    name = args.name

    results: object
    if name == "table2":
        results = experiments.table2.run_table2(settings)
        print(experiments.table2.render_table2(results))
    elif name == "table3":
        results = experiments.table3.run_table3(settings)
        print(experiments.table3.render_table3(results, "target"))
        print()
        print(experiments.table3.render_table3(results, "among"))
    elif name == "table4":
        results = experiments.table4.run_table4(settings)
        print(experiments.table4.render_table4(results))
    elif name == "table5":
        results = experiments.table5.run_table5(settings)
        print(experiments.table5.render_table5(results))
    elif name == "table6":
        results = experiments.table6.run_table6(settings)
        print(experiments.table6.render_table6(results, "target"))
        print()
        print(experiments.table6.render_table6(results, "among"))
    elif name == "table7":
        results = experiments.table7.run_table7(settings)
        print(experiments.table7.render_table7(results))
    elif name == "fig5":
        lam_points, best_lam, mu_points, best_mu = experiments.fig5.run_fig5(settings)
        results = {"lambda": lam_points, "best_lambda": best_lam,
                   "mu": mu_points, "best_mu": best_mu}
        print(experiments.fig5.render_fig5(lam_points, "lambda"))
        print(f"(best lambda = {best_lam})\n")
        print(experiments.fig5.render_fig5(mu_points, "mu"))
        print(f"(best mu = {best_mu})")
    elif name == "fig6":
        results = experiments.fig6.run_fig6(settings)
        print(experiments.fig6.render_fig6(results, "target"))
        print()
        print(experiments.fig6.render_fig6(results, "among"))
    elif name == "fig7":
        results = experiments.fig7.run_fig7(settings)
        print(experiments.fig7.render_fig7(results))
    elif name == "fig11":
        results = experiments.fig11.run_fig11(settings)
        print(experiments.fig11.render_fig11(results))
    else:  # case-study
        study = experiments.case_study.run_case_study(settings)
        results = {
            "category": study.category,
            "shared_aspects": study.shared_aspects,
            "product_ids": [p.product_id for p in study.result.instance.products],
        }
        print(experiments.case_study.render_case_study(study))

    if args.json is not None:
        from repro.experiments.persist import save_results

        directory = Path(args.json)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{name.replace('-', '_')}.json"
        save_results(name, results, settings, target)
        print(f"\n[structured results written to {target}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="CompaReSetS (EDBT 2025) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("--category", default="Cellphone",
                          choices=["Cellphone", "Toy", "Clothing"])
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_command_generate)

    stats = subparsers.add_parser("stats", help="Table-2 statistics of a corpus")
    stats.add_argument("corpus")
    stats.add_argument("--min-reviews", type=int, default=1)
    stats.set_defaults(handler=_command_stats)

    select = subparsers.add_parser("select", help="select comparative review sets")
    select.add_argument("corpus")
    select.add_argument("--target", default=None, help="target product id")
    _add_selection_arguments(select)
    select.set_defaults(handler=_command_select)

    narrow = subparsers.add_parser("narrow", help="select and narrow to k items")
    narrow.add_argument("corpus")
    narrow.add_argument("--target", default=None)
    narrow.add_argument("--k", type=int, default=3)
    narrow.add_argument("--exact", action="store_true", help="use the exact ILP")
    narrow.add_argument(
        "--backend",
        default="milp",
        choices=["milp", "bnb", "fallback"],
        help="exact solver backend; 'fallback' degrades milp -> bnb -> greedy",
    )
    narrow.add_argument("--time-limit", type=float, default=60.0)
    _add_selection_arguments(narrow)
    narrow.set_defaults(handler=_command_narrow)

    serve = subparsers.add_parser(
        "serve", help="run the online selection-serving HTTP API"
    )
    serve.add_argument("--corpus", required=True, help="JSONL corpus to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port; 0 binds an ephemeral port and prints it",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, help="result cache capacity"
    )
    serve.add_argument(
        "--ttl", type=float, default=None,
        help="result cache TTL in seconds (default: no expiry)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="solver worker threads"
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECONDS",
        help="cross-request micro-batching window: concurrent select "
        "misses of one corpus generation are GEMM-stacked into one "
        "batched solve (0 disables)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admission bound on requests in flight; excess load is shed "
             "with 429 (default: 64)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="UNITS_PER_S",
        help="token-bucket rate limit in request cost units per second "
             "(default: unlimited)",
    )
    serve.add_argument(
        "--rate-burst", type=float, default=None, metavar="UNITS",
        help="token-bucket burst size (default: one second of tokens)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait this long for in-flight requests "
             "before exiting (default: 30)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable state directory (WAL + snapshots); restarts recover "
             "from snapshot + WAL replay instead of re-ingesting the corpus",
    )
    serve.add_argument(
        "--supervised", action="store_true",
        help="run the engine in a supervised child process that is "
             "automatically restarted (with recovery) after a crash; "
             "requires --state-dir",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=32, metavar="N",
        help="write a generation snapshot (and compact the WAL) every N "
             "ingested deltas (default: 32; 0 disables auto-snapshots)",
    )
    serve.add_argument(
        "--cache-tier", choices=("file", "memory"), default=None,
        help="shared result-cache tier behind the local LRU: 'file' "
             "survives restarts under the state dir (default: none)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard the corpus across N supervised worker processes "
             "behind an asyncio gateway (consistent-hash routing by "
             "target item); 1 keeps the single-process server (default)",
    )
    serve.add_argument(
        "--gateway-port", type=int, default=None, metavar="P",
        help="TCP port for the cluster gateway (default: --port); only "
             "meaningful with --shards > 1",
    )
    serve.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="place every key on R shards (preference-list replication): "
             "reads fail over to replicas when a shard is down and "
             "ingest hints are queued for it; must be <= --shards "
             "(default: 1, no replication)",
    )
    serve.add_argument(
        "--hint-limit", type=int, default=512, metavar="H",
        help="max hinted-handoff deltas queued per dead shard before "
             "ingest for its keys answers 503 (default: 512)",
    )
    serve.add_argument(
        "--verify-patches", action="store_true",
        help="cross-check every delta-patched solver artifact against a "
             "cold rebuild byte-for-byte, serving the cold build on "
             "mismatch (diagnostic; trades ingest latency for certainty)",
    )
    serve.set_defaults(handler=_command_serve)

    convert = subparsers.add_parser(
        "convert-amazon", help="convert a McAuley Amazon dump pair"
    )
    convert.add_argument("--reviews", required=True)
    convert.add_argument("--metadata", required=True)
    convert.add_argument("--out", required=True)
    convert.add_argument("--category", default="Amazon")
    convert.add_argument("--no-annotate", action="store_true")
    convert.add_argument("--candidate-pool", type=int, default=2000)
    convert.add_argument("--keep", type=int, default=500)
    convert.set_defaults(handler=_command_convert_amazon)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=0.6)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--instances", type=int, default=20)
    experiment.add_argument("--max-comparisons", type=int, default=8)
    experiment.add_argument("--min-reviews", type=int, default=3)
    experiment.add_argument("--budgets", type=int, nargs="+", default=[3, 5, 10])
    experiment.add_argument(
        "--json",
        default=None,
        metavar="DIR",
        help="also write structured JSON results into this directory",
    )
    experiment.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="stream per-instance results to this journal; rerunning an "
        "interrupted experiment with the same journal resumes from the "
        "last checkpoint",
    )
    experiment.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall wall-clock budget; propagates down to per-solve "
        "limits and aborts (checkpointed) when exhausted",
    )
    experiment.set_defaults(handler=_command_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
