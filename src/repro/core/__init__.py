"""The paper's primary contribution: comparative review-set selection.

* :mod:`repro.core.vectors` — opinion/aspect distribution vectors pi(S),
  phi(S) under the three opinion schemes of §4.2.3.
* :mod:`repro.core.distance` — squared-L2 distance Delta and helpers.
* :mod:`repro.core.problem` — selection configuration (m, lambda, mu, scheme).
* :mod:`repro.core.integer_regression` — NOMP + rounding (Lappas et al. 2012).
* :mod:`repro.core.omp_kernel` — Gram-cached Batch-OMP solver core with
  reusable per-item :class:`~repro.core.omp_kernel.SolverArtifacts`.
* :mod:`repro.core.compare_sets` — CompaReSetS (Problem 1).
* :mod:`repro.core.compare_sets_plus` — CompaReSetS+ (Problem 2, Algorithm 1).
* :mod:`repro.core.baselines` — CRS, greedy, and random baselines.
* :mod:`repro.core.selection` — the Selector protocol and registry.
* :mod:`repro.core.objective` — exact evaluation of Eq. 1 and Eq. 5.
"""

from repro.core.baselines import CrsSelector, GreedySelector, RandomSelector
from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.coverage_baselines import ComprehensiveSelector, PolarityCoverageSelector
from repro.core.exhaustive import ExhaustiveSelector
from repro.core.distance import cosine_similarity, squared_l2
from repro.core.objective import compare_sets_objective, compare_sets_plus_objective
from repro.core.omp_kernel import SolverArtifacts, StageTimer
from repro.core.problem import SelectionConfig
from repro.core.selection import SELECTORS, SelectionResult, Selector, make_selector
from repro.core.vectors import OpinionScheme, VectorSpace

__all__ = [
    "SELECTORS",
    "CompareSetsPlusSelector",
    "CompareSetsSelector",
    "ComprehensiveSelector",
    "CrsSelector",
    "ExhaustiveSelector",
    "PolarityCoverageSelector",
    "GreedySelector",
    "OpinionScheme",
    "RandomSelector",
    "SelectionConfig",
    "SelectionResult",
    "Selector",
    "SolverArtifacts",
    "StageTimer",
    "VectorSpace",
    "compare_sets_objective",
    "compare_sets_plus_objective",
    "cosine_similarity",
    "make_selector",
    "squared_l2",
]
