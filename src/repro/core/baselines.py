"""Baseline selectors from §4.1.2: CRS, CompaReSetS_Greedy, and Random.

* **CRS** (Lappas et al. 2012) — the strongest prior work: single-item
  characteristic review selection.  It is exactly the lambda = 0, single-
  item special case of CompaReSetS, so it matches each item's opinion
  distribution tau_i but ignores the target's aspect vector Gamma and all
  cross-item terms.
* **CompaReSetS_Greedy** — adds reviews one by one, each time picking the
  review whose addition minimises the Eq.-3 cost, stopping at m reviews or
  when no addition improves the cost.
* **Random** — uniform sample of min(m, |R_i|) reviews, the paper's floor.
"""

from __future__ import annotations

import numpy as np

from repro.core.objective import item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space, register_selector
from repro.core.vectors import VectorSpace
from repro.data.instances import ComparisonInstance
from repro.data.models import Review
from repro.core.compare_sets import select_for_item


@register_selector
class CrsSelector:
    """Characteristic Review Selection: per-item, opinion-only (lambda = 0)."""

    name = "CRS"

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Run Integer-Regression against tau_i alone for every item."""
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        crs_config = config.with_(lam=0.0, mu=0.0)
        selections = []
        for reviews in instance.reviews:
            tau = space.opinion_vector(reviews)
            selections.append(
                select_for_item(space, reviews, tau, gamma, crs_config)
            )
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )


@register_selector
class GreedySelector:
    """CompaReSetS_Greedy: one-review-at-a-time minimisation of Eq. 3."""

    name = "CompaReSetS_Greedy"

    def __init__(self, stop_when_no_improvement: bool = True) -> None:
        self.stop_when_no_improvement = stop_when_no_improvement

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Greedy forward selection per item; deterministic."""
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        selections = []
        for reviews in instance.reviews:
            tau = space.opinion_vector(reviews)
            selections.append(
                self._select_item(space, reviews, tau, gamma, config)
            )
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )

    def _select_item(
        self,
        space: VectorSpace,
        reviews: tuple[Review, ...],
        tau: np.ndarray,
        gamma: np.ndarray,
        config: SelectionConfig,
    ) -> tuple[int, ...]:
        chosen: list[int] = []
        current_cost = item_objective(space, [], tau, gamma, config.lam)
        remaining = set(range(len(reviews)))
        while remaining and len(chosen) < config.max_reviews:
            best_index = None
            best_cost = np.inf
            for candidate in sorted(remaining):
                trial = [reviews[j] for j in chosen] + [reviews[candidate]]
                cost = item_objective(space, trial, tau, gamma, config.lam)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_index = candidate
            if best_index is None:
                break
            if self.stop_when_no_improvement and best_cost >= current_cost - 1e-12 and chosen:
                break
            chosen.append(best_index)
            remaining.discard(best_index)
            current_cost = best_cost
        return tuple(sorted(chosen))


@register_selector
class RandomSelector:
    """Uniformly random selection of min(m, |R_i|) reviews per item."""

    name = "Random"

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Sample selections with ``rng`` (or the constructor seed)."""
        if rng is None:
            rng = np.random.default_rng(self._seed)
        selections = []
        for reviews in instance.reviews:
            count = min(config.max_reviews, len(reviews))
            if count == 0:
                selections.append(())
                continue
            indices = rng.choice(len(reviews), size=count, replace=False)
            selections.append(tuple(sorted(int(i) for i in indices)))
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )
