"""Cross-request batched selection over shared per-item solver artifacts.

A burst of concurrent serving requests against the same corpus generation
poses many independent selection problems over the *same* per-item Gram
blocks — only the request parameters (budget ``m``, sync weight ``mu``,
algorithm, CompaReSetS+ variant) differ.  :func:`select_many` runs such a
batch in lockstep: every item's per-request subproblems are stacked into
one multi-RHS pursuit (:func:`~repro.core.omp_kernel.batch_omp_many`), so
each Batch-OMP round costs one ``G[:, S] @ C`` GEMM across all requests
instead of one mat-vec per request per round.

Equivalence: the per-request results are byte-identical to running each
request alone through :class:`~repro.core.compare_sets.CompareSetsSelector`
/ :class:`~repro.core.compare_sets_plus.CompareSetsPlusSelector` with the
same artifacts — the batch entry points replicate the selectors' exact
iteration order (base solve per item, then alternating sweeps with
per-item phi refresh) and the kernel's exact-mode tie rechecks stay
per-request.  Solves also land in the same per-artifact memo cache, so a
batch warms the cache exactly like its sequential equivalent would.

The serving layer (:mod:`repro.serve.engine`) feeds sealed micro-batches
of distinct-target requests here; ``CompaReSetS+`` requests additionally
amortise their alternating sweeps across each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.omp_kernel import (
    SolverArtifacts,
    StageTimer,
    solve_item_many,
    solve_plus_item_many,
)
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult
from repro.core.vectors import VectorSpace
from repro.data.instances import ComparisonInstance

#: Algorithms :func:`select_many` can coalesce.  Other selectors (Random,
#: MILP, greedy baselines) do not share the kernel's Gram-block shape and
#: fall back to per-request solving in the engine.
BATCHABLE_ALGORITHMS = frozenset({"CompaReSetS", "CompaReSetS+"})


@dataclass(frozen=True, slots=True)
class BatchJob:
    """One request's selection parameters inside a :func:`select_many` batch.

    ``variant`` only matters for ``CompaReSetS+`` (the Algorithm-1
    literal/weighted acceptance reading).  ``config`` may differ per job
    in ``max_reviews``, ``mu``, and ``sweeps``; ``lam`` and ``scheme``
    must match the shared artifacts (the serving layer groups requests by
    artifact identity, which pins both).
    """

    algorithm: str
    config: SelectionConfig
    variant: str = "literal"


def select_many(
    instance: ComparisonInstance,
    jobs: list[BatchJob],
    *,
    space: VectorSpace,
    solver_artifacts: tuple[SolverArtifacts, ...],
    timer: StageTimer | None = None,
    exact: bool = True,
) -> list[SelectionResult]:
    """Solve many selection requests against one instance in lockstep.

    Returns one :class:`SelectionResult` per job, in job order, each
    byte-identical to the corresponding sequential selector run.  All
    jobs share ``space`` and the per-item ``solver_artifacts`` (hence one
    ``lam``/scheme); budgets, ``mu``, sweeps, algorithm, and variant vary
    freely per job.
    """
    if len(solver_artifacts) != instance.num_items:
        raise ValueError(
            f"{len(solver_artifacts)} artifacts for {instance.num_items} items"
        )
    for job in jobs:
        if job.algorithm not in BATCHABLE_ALGORITHMS:
            raise ValueError(
                f"algorithm {job.algorithm!r} is not batchable; "
                f"expected one of {sorted(BATCHABLE_ALGORITHMS)}"
            )
        if job.variant not in ("literal", "weighted"):
            raise ValueError(
                f"variant must be 'literal' or 'weighted', got {job.variant!r}"
            )
    for item_index, (artifacts, reviews) in enumerate(
        zip(solver_artifacts, instance.reviews)
    ):
        for job in jobs:
            if not artifacts.matches(space, reviews, job.config.lam):
                raise ValueError(
                    f"artifacts for item {item_index} do not match the batch "
                    "space/reviews/lam"
                )
    timer = timer if timer is not None else StageTimer()
    num_items = instance.num_items
    gamma = space.aspect_vector(instance.reviews[0])
    taus = [space.opinion_vector(reviews) for reviews in instance.reviews]

    # Base phase: every job needs the CompaReSetS solution (it seeds
    # Algorithm 1 for the plus jobs), so each item runs one multi-RHS
    # pursuit across the whole batch.
    base: list[list[tuple[int, ...]]] = [
        [() for _ in range(num_items)] for _ in jobs
    ]
    for item_index, reviews in enumerate(instance.reviews):
        if not reviews:
            continue
        solved = solve_item_many(
            solver_artifacts[item_index],
            [(taus[item_index], gamma, job.config) for job in jobs],
            timer=timer,
            exact=exact,
        )
        for job_index, selection in enumerate(solved):
            base[job_index][item_index] = selection.selected

    results: list[SelectionResult | None] = [None] * len(jobs)
    plus_jobs = [
        index for index, job in enumerate(jobs) if job.algorithm == "CompaReSetS+"
    ]

    if plus_jobs:
        selections = {index: list(base[index]) for index in plus_jobs}
        phis = {
            index: [
                space.aspect_vector(
                    [instance.reviews[i][k] for k in base[index][i]]
                )
                for i in range(num_items)
            ]
            for index in plus_jobs
        }
        max_sweeps = max(jobs[index].config.sweeps for index in plus_jobs)
        for sweep in range(max_sweeps):
            active = [
                index for index in plus_jobs if sweep < jobs[index].config.sweeps
            ]
            if not active:
                break
            for item_index in range(num_items):
                reviews = instance.reviews[item_index]
                if not reviews:
                    continue
                batch = []
                for index in active:
                    other_phis = [
                        phis[index][j] for j in range(num_items) if j != item_index
                    ]
                    batch.append(
                        (
                            taus[item_index],
                            gamma,
                            other_phis,
                            jobs[index].config,
                            selections[index][item_index],
                            jobs[index].variant == "literal",
                        )
                    )
                solved = solve_plus_item_many(
                    solver_artifacts[item_index], batch, timer=timer, exact=exact
                )
                for index, selection in zip(active, solved):
                    if selection != selections[index][item_index]:
                        selections[index][item_index] = selection
                        phis[index][item_index] = space.aspect_vector(
                            [reviews[k] for k in selection]
                        )
        for index in plus_jobs:
            results[index] = SelectionResult(
                instance=instance,
                selections=tuple(selections[index]),
                algorithm="CompaReSetS+",
                timings=timer.as_millis(),
                counters=dict(timer.counters) if timer.counters else None,
            )

    for index, job in enumerate(jobs):
        if results[index] is None:
            results[index] = SelectionResult(
                instance=instance,
                selections=tuple(base[index]),
                algorithm="CompaReSetS",
                timings=timer.as_millis(),
                counters=dict(timer.counters) if timer.counters else None,
            )
    return results  # type: ignore[return-value]
