"""CompaReSetS — Problem 1, solved per item by Integer-Regression.

Eq. 1 decomposes over items (Eq. 3), so each item p_i is solved
independently: minimise Delta(tau_i, pi(S_i)) + lambda^2 Delta(Gamma,
phi(S_i)) over subsets S_i of R_i with |S_i| <= m.  Following Eq. 4 this
equals a single regression against the concatenated target
[tau_i; lambda * Gamma] with matrix rows [opinion incidence;
lambda * aspect incidence].

Two solver paths produce identical selections: the Gram-cached Batch-OMP
kernel (:mod:`repro.core.omp_kernel`, the default — reusable per-item
:class:`~repro.core.omp_kernel.SolverArtifacts`, counts-level candidate
evaluation) and the original scipy-``nnls`` reference retained under
``use_kernel=False`` as the equivalence baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import concat_scaled
from repro.core.integer_regression import integer_regression_select
from repro.core.objective import item_objective
from repro.core.omp_kernel import SolverArtifacts, StageTimer, solve_item
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space, register_selector
from repro.core.vectors import VectorSpace, regression_columns
from repro.data.instances import ComparisonInstance
from repro.data.models import Review


def select_for_item(
    space: VectorSpace,
    reviews: tuple[Review, ...],
    tau: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
    *,
    artifacts: SolverArtifacts | None = None,
    timer: StageTimer | None = None,
    use_kernel: bool = True,
) -> tuple[int, ...]:
    """Solve Eq. 3 for one item; returns sorted review indices.

    ``use_kernel=True`` (default) routes through the Batch-OMP kernel,
    optionally reusing precomputed ``artifacts`` (they must be bound to
    the same ``space`` / ``reviews`` / ``config.lam``); ``use_kernel=False``
    keeps the scipy-``nnls`` reference path, which the equivalence tests
    and the core benchmark compare against.
    """
    if not reviews:
        return ()
    if use_kernel:
        if artifacts is None:
            artifacts = SolverArtifacts(space, reviews, config.lam, timer=timer)
        elif not artifacts.matches(space, reviews, config.lam):
            raise ValueError(
                "solver artifacts are bound to a different item or config"
            )
        return solve_item(artifacts, tau, gamma, config, timer=timer).selected
    columns = regression_columns(space, reviews, config.lam)
    target = concat_scaled((1.0, tau), (config.lam, gamma))

    def evaluate(selection: tuple[int, ...]) -> float:
        chosen = [reviews[j] for j in selection]
        return item_objective(space, chosen, tau, gamma, config.lam)

    return integer_regression_select(
        columns, target, config.max_reviews, evaluate
    ).selected


@register_selector
class CompareSetsSelector:
    """Problem 1: independent per-item Integer-Regression selection.

    ``use_kernel=False`` pins the scipy-``nnls`` reference solver; the
    default Batch-OMP kernel produces identical selections and reports
    per-stage timings on the result.
    """

    name = "CompaReSetS"

    def __init__(self, use_kernel: bool = True) -> None:
        self.use_kernel = use_kernel

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
        *,
        space: VectorSpace | None = None,
        solver_artifacts: tuple[SolverArtifacts, ...] | None = None,
        timer: StageTimer | None = None,
    ) -> SelectionResult:
        """Solve CompaReSetS on ``instance``; ``rng`` is unused (deterministic).

        ``space`` may supply a precomputed :class:`VectorSpace` for the
        instance (its per-review memoisation then carries across calls, as
        the serving layer's :class:`~repro.serve.store.ItemStore` relies
        on); it must match ``instance.aspect_vocabulary()`` and
        ``config.scheme``.  ``solver_artifacts`` likewise reuses one
        :class:`SolverArtifacts` per item (built against ``space`` and
        ``config.lam``), letting warm serving requests skip dedup + Gram
        entirely; ``timer`` aggregates stage timings into a caller's
        :class:`StageTimer` instead of a fresh one.
        """
        if space is None:
            space = build_space(instance, config)
        own_timer = timer
        if own_timer is None and self.use_kernel:
            own_timer = StageTimer()
        gamma = space.aspect_vector(instance.reviews[0])
        selections = []
        for item_index, reviews in enumerate(instance.reviews):
            tau = space.opinion_vector(reviews)
            item_artifacts = (
                solver_artifacts[item_index]
                if solver_artifacts is not None
                else None
            )
            selections.append(
                select_for_item(
                    space,
                    reviews,
                    tau,
                    gamma,
                    config,
                    artifacts=item_artifacts,
                    timer=own_timer,
                    use_kernel=self.use_kernel,
                )
            )
        return SelectionResult(
            instance=instance,
            selections=tuple(selections),
            algorithm=self.name,
            timings=own_timer.as_millis() if own_timer is not None else None,
            counters=(
                dict(own_timer.counters)
                if own_timer is not None and own_timer.counters
                else None
            ),
        )
