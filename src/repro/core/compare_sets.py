"""CompaReSetS — Problem 1, solved per item by Integer-Regression.

Eq. 1 decomposes over items (Eq. 3), so each item p_i is solved
independently: minimise Delta(tau_i, pi(S_i)) + lambda^2 Delta(Gamma,
phi(S_i)) over subsets S_i of R_i with |S_i| <= m.  Following Eq. 4 this
equals a single regression against the concatenated target
[tau_i; lambda * Gamma] with matrix rows [opinion incidence;
lambda * aspect incidence].
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import concat_scaled
from repro.core.integer_regression import integer_regression_select
from repro.core.objective import item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space, register_selector
from repro.core.vectors import VectorSpace, regression_columns
from repro.data.instances import ComparisonInstance
from repro.data.models import Review


def select_for_item(
    space: VectorSpace,
    reviews: tuple[Review, ...],
    tau: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
) -> tuple[int, ...]:
    """Solve Eq. 3 for one item; returns sorted review indices."""
    if not reviews:
        return ()
    columns = regression_columns(space, reviews, config.lam)
    target = concat_scaled((1.0, tau), (config.lam, gamma))

    def evaluate(selection: tuple[int, ...]) -> float:
        chosen = [reviews[j] for j in selection]
        return item_objective(space, chosen, tau, gamma, config.lam)

    return integer_regression_select(
        columns, target, config.max_reviews, evaluate
    ).selected


@register_selector
class CompareSetsSelector:
    """Problem 1: independent per-item Integer-Regression selection."""

    name = "CompaReSetS"

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
        *,
        space: VectorSpace | None = None,
    ) -> SelectionResult:
        """Solve CompaReSetS on ``instance``; ``rng`` is unused (deterministic).

        ``space`` may supply a precomputed :class:`VectorSpace` for the
        instance (its per-review memoisation then carries across calls, as
        the serving layer's :class:`~repro.serve.store.ItemStore` relies
        on); it must match ``instance.aspect_vocabulary()`` and
        ``config.scheme``.
        """
        if space is None:
            space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        selections = []
        for reviews in instance.reviews:
            tau = space.opinion_vector(reviews)
            selections.append(
                select_for_item(space, reviews, tau, gamma, config)
            )
        return SelectionResult(
            instance=instance,
            selections=tuple(selections),
            algorithm=self.name,
        )
