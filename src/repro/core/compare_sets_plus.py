"""CompaReSetS+ — Problem 2, solved by Algorithm 1 (alternating regression).

Starting from the CompaReSetS solution, each item p_i is re-solved against
the stacked target

    Upsilon = [tau_i; lambda*Gamma; mu*phi(S_1); ...; mu*phi(S_{i-1});
               mu*phi(S_{i+1}); ...; mu*phi(S_n)]

with matrix V whose columns stack the per-review opinion incidence, the
lambda-scaled aspect incidence, and n-1 copies of the mu-scaled aspect
incidence (Algorithm 1, line 4).  A new selection replaces the old one
only when it strictly improves the true Eq.-5 contribution of item i
(Algorithm 1, lines 10-12).  The paper performs one alternating pass;
``config.sweeps`` allows more.

Two readings of Algorithm 1 are implemented, selectable via the
``variant`` constructor argument:

* ``"literal"`` (default) — exactly what Algorithm 1 writes: the target
  Upsilon = [tau_i; Gamma; phi(S_1); ...] is *unscaled* while V's rows
  carry lambda and mu, and the acceptance test of line 10 compares
  candidate against target in that unweighted space, i.e. the candidate
  wins when Delta(tau, pi) + Delta(Gamma, phi) + sum_j Delta(phi, phi_j)
  improves.  Here mu modulates how aggressively the *continuous* stage
  chases synchronisation (a small mu row-scale against an O(1) target
  block produces a large residual and a strong pull), while acceptance
  weighs fit and synchronisation equally.
* ``"weighted"`` — the Eq.-5-consistent reading: lambda/mu appear on both
  the matrix rows and the target blocks, and acceptance uses the true
  Eq.-5 contribution of item i.  With the paper's mu = 0.1 the cross term
  is then only mu^2 = 1% of the objective and the synchronisation effect
  is far weaker.
"""

from __future__ import annotations

import numpy as np

from repro.core.compare_sets import CompareSetsSelector
from repro.core.distance import concat_scaled, squared_l2
from repro.core.integer_regression import integer_regression_select
from repro.core.objective import item_objective
from repro.core.omp_kernel import SolverArtifacts, StageTimer, solve_plus_item
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space, register_selector
from repro.core.vectors import VectorSpace, regression_columns
from repro.data.instances import ComparisonInstance
from repro.data.models import Review


def _item_plus_objective(
    space: VectorSpace,
    chosen: list[Review],
    tau: np.ndarray,
    gamma: np.ndarray,
    other_phis: list[np.ndarray],
    config: SelectionConfig,
    literal: bool,
) -> float:
    """Item i's acceptance score with the other selections fixed.

    ``literal=False``: the true Eq.-5 contribution (lambda^2 / mu^2
    weighted).  ``literal=True``: Algorithm 1 line 10's unweighted
    distance Delta(tau, pi) + Delta(Gamma, phi) + sum_j Delta(phi, phi_j).
    """
    phi = space.aspect_vector(chosen)
    pairwise = sum(squared_l2(phi, other) for other in other_phis)
    if literal:
        pi = space.opinion_vector(chosen)
        return squared_l2(tau, pi) + squared_l2(gamma, phi) + pairwise
    base = item_objective(space, chosen, tau, gamma, config.lam)
    return base + config.mu**2 * pairwise


@register_selector
class CompareSetsPlusSelector:
    """Problem 2: synchronised selection via Algorithm 1.

    ``variant="literal"`` (default) follows Algorithm 1 verbatim (see the
    module docstring); ``variant="weighted"`` is the Eq.-5-consistent
    alternative.  The ablation benchmark compares the two.
    """

    name = "CompaReSetS+"

    def __init__(self, variant: str = "literal", use_kernel: bool = True) -> None:
        if variant not in ("literal", "weighted"):
            raise ValueError(f"variant must be 'literal' or 'weighted', got {variant!r}")
        self.variant = variant
        self.use_kernel = use_kernel

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
        *,
        space: VectorSpace | None = None,
        solver_artifacts: tuple[SolverArtifacts, ...] | None = None,
    ) -> SelectionResult:
        """Solve CompaReSetS+ on ``instance``; deterministic, ``rng`` unused.

        ``space`` optionally reuses a precomputed :class:`VectorSpace`
        (see :meth:`CompareSetsSelector.select`); ``solver_artifacts``
        likewise one kernel :class:`SolverArtifacts` per item.  The
        artifacts carry the per-item Gram blocks, so every alternating
        sweep reuses the same dedup + Gram and only rebuilds the target
        correlation vector.
        """
        if space is None:
            space = build_space(instance, config)
        timer = StageTimer() if self.use_kernel else None
        if self.use_kernel and solver_artifacts is None:
            solver_artifacts = tuple(
                SolverArtifacts(space, reviews, config.lam, timer=timer)
                for reviews in instance.reviews
            )
        gamma = space.aspect_vector(instance.reviews[0])
        taus = [space.opinion_vector(reviews) for reviews in instance.reviews]

        # Algorithm 1 input: the CompaReSetS solution.
        initial = CompareSetsSelector(use_kernel=self.use_kernel).select(
            instance,
            config,
            space=space,
            solver_artifacts=solver_artifacts,
            timer=timer,
        )
        selections: list[tuple[int, ...]] = list(initial.selections)
        phis: list[np.ndarray] = [
            space.aspect_vector(initial.selected_reviews(i))
            for i in range(instance.num_items)
        ]

        num_items = instance.num_items
        for _ in range(config.sweeps):
            for item_index in range(num_items):
                reviews = instance.reviews[item_index]
                if not reviews:
                    continue
                other_phis = [
                    phis[j] for j in range(num_items) if j != item_index
                ]
                if self.use_kernel:
                    selection = solve_plus_item(
                        solver_artifacts[item_index],
                        taus[item_index],
                        gamma,
                        other_phis,
                        config,
                        current=selections[item_index],
                        literal=(self.variant == "literal"),
                        timer=timer,
                    )
                else:
                    selection = self._solve_item(
                        space,
                        reviews,
                        taus[item_index],
                        gamma,
                        other_phis,
                        config,
                        current=selections[item_index],
                        literal=(self.variant == "literal"),
                    )
                if selection != selections[item_index]:
                    selections[item_index] = selection
                    phis[item_index] = space.aspect_vector(
                        [reviews[j] for j in selection]
                    )

        return SelectionResult(
            instance=instance,
            selections=tuple(selections),
            algorithm=self.name,
            timings=timer.as_millis() if timer is not None else None,
            counters=(
                dict(timer.counters)
                if timer is not None and timer.counters
                else None
            ),
        )

    @staticmethod
    def _solve_item(
        space: VectorSpace,
        reviews: tuple[Review, ...],
        tau: np.ndarray,
        gamma: np.ndarray,
        other_phis: list[np.ndarray],
        config: SelectionConfig,
        current: tuple[int, ...],
        literal: bool,
    ) -> tuple[int, ...]:
        """One Algorithm-1 inner iteration for item i.

        Returns the improved selection, or ``current`` when the regression
        candidate does not strictly improve the acceptance score
        (Algorithm 1, lines 10-12).
        """
        columns = regression_columns(
            space, reviews, config.lam, config.mu, sync_blocks=len(other_phis)
        )
        # Literal Algorithm 1 leaves the target blocks unscaled; the
        # weighted variant mirrors the row scalings on the target side.
        gamma_scale = 1.0 if literal else config.lam
        phi_scale = 1.0 if literal else config.mu
        target_parts: list[tuple[float, np.ndarray]] = [
            (1.0, tau),
            (gamma_scale, gamma),
        ]
        for phi in other_phis:
            target_parts.append((phi_scale, phi))
        target = concat_scaled(*target_parts)

        def evaluate(selection: tuple[int, ...]) -> float:
            chosen = [reviews[j] for j in selection]
            return _item_plus_objective(
                space, chosen, tau, gamma, other_phis, config, literal
            )

        candidate = integer_regression_select(
            columns, target, config.max_reviews, evaluate
        )
        current_objective = evaluate(current)
        if candidate.objective < current_objective - 1e-12:
            return candidate.selected
        return current
