"""Coverage-style selectors from the paper's related work (§5.1).

Two classic single-item formulations that predate characteristic
selection, implemented as additional baselines:

* :class:`ComprehensiveSelector` — Lappas & Gunopulos (2010): pick a
  minimal set of reviews that *covers* every aspect of the item (greedy
  set cover), truncated to the budget m.
* :class:`PolarityCoverageSelector` — Tsaparas, Ntoulas & Terzi (2011):
  cover every (aspect, polarity) pair that appears in the item's reviews,
  so both the positive and the negative side of each aspect is shown.

Neither optimises distribution fit (CRS) nor cross-item comparability
(CompaReSetS+); comparing against them shows what the paper's objectives
add over plain coverage.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, register_selector
from repro.data.instances import ComparisonInstance
from repro.data.models import Review


def _greedy_set_cover(
    universe: set, element_sets: list[set], budget: int
) -> tuple[int, ...]:
    """Greedy set cover: indices of the sets chosen, at most ``budget``.

    Classic ln(n)-approximation: repeatedly take the set covering the most
    uncovered elements; ties break toward the lowest index.  Stops when
    the universe is covered, no set helps, or the budget is exhausted.
    """
    uncovered = set(universe)
    chosen: list[int] = []
    remaining = set(range(len(element_sets)))
    while uncovered and remaining and len(chosen) < budget:
        best_index = None
        best_gain = 0
        for index in sorted(remaining):
            gain = len(element_sets[index] & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index is None:
            break
        chosen.append(best_index)
        remaining.discard(best_index)
        uncovered -= element_sets[best_index]
    return tuple(sorted(chosen))


def _aspect_sets(reviews: tuple[Review, ...]) -> list[set]:
    return [set(review.aspects) for review in reviews]


def _polarity_sets(reviews: tuple[Review, ...]) -> list[set]:
    sets = []
    for review in reviews:
        pairs = set()
        for aspect in review.aspects:
            sign = review.sentiment_for(aspect)
            if sign != 0:
                pairs.add((aspect, sign))
        sets.append(pairs)
    return sets


@register_selector
class ComprehensiveSelector:
    """Cover every aspect of each item with at most m reviews."""

    name = "Comprehensive"

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Greedy aspect set cover per item; deterministic."""
        selections = []
        for reviews in instance.reviews:
            element_sets = _aspect_sets(reviews)
            universe = set().union(*element_sets) if element_sets else set()
            selections.append(
                _greedy_set_cover(universe, element_sets, config.max_reviews)
            )
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )


@register_selector
class PolarityCoverageSelector:
    """Cover every (aspect, polarity) pair of each item with m reviews."""

    name = "PolarityCoverage"

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Greedy (aspect, sign) set cover per item; deterministic."""
        selections = []
        for reviews in instance.reviews:
            element_sets = _polarity_sets(reviews)
            universe = set().union(*element_sets) if element_sets else set()
            selections.append(
                _greedy_set_cover(universe, element_sets, config.max_reviews)
            )
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )
