"""Vector distances used by the selection objectives.

The paper's Delta(x, y) is the *squared* Euclidean distance (Eq. 2); the
information-loss analysis (Eq. 9) additionally uses cosine similarity.
"""

from __future__ import annotations

import numpy as np


def squared_l2(x: np.ndarray, y: np.ndarray) -> float:
    """Delta(x, y) = sum_i (x_i - y_i)^2 (Eq. 2).

    Raises ValueError on shape mismatch — silently broadcasting two
    distribution vectors of different aspect spaces would be a bug.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    difference = x - y
    return float(difference @ difference)


def cosine_similarity(x: np.ndarray, y: np.ndarray) -> float:
    """cos(x, y) per Eq. 9; 0.0 when either vector is all-zero."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    norm_x = float(np.linalg.norm(x))
    norm_y = float(np.linalg.norm(y))
    if norm_x == 0.0 or norm_y == 0.0:
        return 0.0
    return float(x @ y) / (norm_x * norm_y)


def concat_scaled(*parts: tuple[float, np.ndarray]) -> np.ndarray:
    """Concatenate ``scale * vector`` blocks, e.g. [tau; lambda*Gamma].

    Accepts (scale, vector) pairs and returns their weighted concatenation,
    the construction behind Eq. 4 and Algorithm 1's stacked target.
    """
    if not parts:
        return np.zeros(0)
    return np.concatenate([scale * np.asarray(vector, dtype=float) for scale, vector in parts])
