"""Exact (exponential-time) solvers for small selection instances.

CompaReSetS is NP-complete (§2.2), so the library solves it with the
Integer-Regression heuristic.  For *small* review sets the optimum is
still computable by enumerating all subsets of size <= m, which gives a
ground truth to measure the heuristic's approximation quality against —
the ablation benchmark ``bench_ablation_regression_quality`` does exactly
that.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.objective import item_objective
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space, register_selector
from repro.core.vectors import VectorSpace
from repro.data.instances import ComparisonInstance
from repro.data.models import Review

# Enumerating C(n, <=m) subsets explodes quickly; refuse instead of hanging.
_MAX_SUBSETS = 2_000_000


def exhaustive_select_for_item(
    space: VectorSpace,
    reviews: tuple[Review, ...],
    tau: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
) -> tuple[tuple[int, ...], float]:
    """Brute-force optimum of Eq. 3 for one item.

    Returns (selected indices, objective).  Raises ValueError when the
    subset count exceeds the safety bound.
    """
    from math import comb

    total = sum(
        comb(len(reviews), size)
        for size in range(0, min(config.max_reviews, len(reviews)) + 1)
    )
    if total > _MAX_SUBSETS:
        raise ValueError(
            f"{total} subsets exceed the exhaustive-search bound {_MAX_SUBSETS}; "
            "use the Integer-Regression solver for instances this large"
        )

    best_selection: tuple[int, ...] = ()
    best_objective = item_objective(space, [], tau, gamma, config.lam)
    indices = range(len(reviews))
    for size in range(1, min(config.max_reviews, len(reviews)) + 1):
        for combo in combinations(indices, size):
            objective = item_objective(
                space, [reviews[j] for j in combo], tau, gamma, config.lam
            )
            if objective < best_objective - 1e-15:
                best_objective = objective
                best_selection = combo
    return best_selection, best_objective


@register_selector
class ExhaustiveSelector:
    """Brute-force CompaReSetS optimum — ground truth for small instances."""

    name = "CompaReSetS_Exhaustive"

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Solve Eq. 3 exactly per item (exponential; small instances only)."""
        space = build_space(instance, config)
        gamma = space.aspect_vector(instance.reviews[0])
        selections = []
        for reviews in instance.reviews:
            if not reviews:
                selections.append(())
                continue
            tau = space.opinion_vector(reviews)
            selection, _ = exhaustive_select_for_item(
                space, reviews, tau, gamma, config
            )
            selections.append(selection)
        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )
