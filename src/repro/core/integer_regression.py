"""The Integer-Regression algorithm of Lappas, Crovella & Terzi (KDD 2012).

The paper approximates CompaReSetS / CompaReSetS+ per item with this
two-stage scheme (§2.2, Algorithm 1):

1. **Continuous stage** — solve the sparse non-negative regression
   ``min ||W x - target||^2`` with ``||x||_0 <= l`` via Non-negative
   Orthogonal Matching Pursuit (NOMP): greedily add the column with the
   largest positive correlation to the residual, then re-fit non-negative
   least squares on the support.
2. **Discrete stage** — deduplicate identical columns (capacity c_i = group
   size), then find an integer count vector nu with ``nu_i <= c_i``,
   ``||nu||_1 <= m`` whose L1-normalised form is closest to the normalised
   continuous solution.  We use capacity-capped largest-remainder
   apportionment per candidate total s = 1..m, which is optimal for each
   fixed s.
3. Repeat for every sparsity level l = 1..m and keep the candidate whose
   *true* set-level objective (computed by a caller-supplied evaluator on
   the actual normalised pi/phi vectors) is smallest.

The evaluator indirection matters: the regression operates on raw
incidence columns, while the objective is defined on max-normalised
distribution vectors; scoring candidates with the true objective is what
makes the heuristic faithful to Eq. 3 / Eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np
from scipy.optimize import nnls

_CORRELATION_TOLERANCE = 1e-12


@dataclass(frozen=True, slots=True)
class DeduplicatedColumns:
    """Unique columns of a matrix plus the original indices of each group."""

    matrix: np.ndarray
    groups: tuple[tuple[int, ...], ...]

    @property
    def capacities(self) -> np.ndarray:
        """c_i — how many original columns each unique column represents."""
        return np.array([len(group) for group in self.groups], dtype=int)


def deduplicate_columns(matrix: np.ndarray, decimals: int = 12) -> DeduplicatedColumns:
    """Group identical columns of ``matrix`` (D, N) -> (D, q), q <= N.

    Columns are compared after rounding to ``decimals`` places so that
    floating-point noise does not split genuinely identical reviews.
    Group order follows first occurrence, keeping the mapping stable.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    num_columns = matrix.shape[1]
    if num_columns == 0:
        return DeduplicatedColumns(matrix=np.zeros((matrix.shape[0], 0)), groups=())
    rounded = np.round(matrix, decimals)
    # np.round keeps the sign of -0.0, so a column holding -1e-15 and one
    # holding +1e-15 would compare unequal after rounding; adding 0.0 maps
    # -0.0 to +0.0 (IEEE 754) before the columns are keyed.
    rounded += 0.0
    if matrix.shape[0] == 0:
        # Zero-dimensional columns are all identical: one group of everything.
        group_ids = np.zeros(num_columns, dtype=np.intp)
        num_groups = 1
    else:
        _, first_indices, inverse = np.unique(
            np.ascontiguousarray(rounded.T),
            axis=0,
            return_index=True,
            return_inverse=True,
        )
        # np.unique orders lexicographically; remap its ids so groups come
        # out in first-occurrence order, keeping the mapping stable.
        position = np.empty(len(first_indices), dtype=np.intp)
        position[np.argsort(first_indices, kind="stable")] = np.arange(
            len(first_indices)
        )
        group_ids = position[inverse.reshape(-1)]
        num_groups = len(first_indices)
    member_order = np.argsort(group_ids, kind="stable")
    sizes = np.bincount(group_ids, minlength=num_groups)
    group_tuples = tuple(
        tuple(int(i) for i in chunk)
        for chunk in np.split(member_order, np.cumsum(sizes)[:-1])
    )
    firsts = [group[0] for group in group_tuples]
    return DeduplicatedColumns(matrix=matrix[:, firsts], groups=group_tuples)


def nomp_path(matrix: np.ndarray, target: np.ndarray, max_atoms: int) -> list[np.ndarray]:
    """Non-negative OMP, returning the solution after *every* atom.

    OMP's greedy atom choice does not depend on the sparsity budget, so
    the budget-``l`` solution is the ``l``-th point of the budget-``m``
    trajectory; computing the whole path at once saves re-running the
    pursuit per sparsity level (Algorithm 1 loops l = 1..m).  The path
    stops early when no remaining column has positive correlation with
    the residual.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    num_columns = matrix.shape[1]
    if num_columns == 0 or max_atoms <= 0:
        return []

    residual = target.astype(float).copy()
    support: list[int] = []
    in_support = np.zeros(num_columns, dtype=bool)
    path: list[np.ndarray] = []

    for _ in range(min(max_atoms, num_columns)):
        correlations = matrix.T @ residual
        correlations[in_support] = -np.inf
        best = int(np.argmax(correlations))
        if correlations[best] <= _CORRELATION_TOLERANCE:
            break
        support.append(best)
        in_support[best] = True
        coefficients, _ = nnls(matrix[:, support], target)
        residual = target - matrix[:, support] @ coefficients
        x = np.zeros(num_columns)
        x[support] = coefficients
        path.append(x)
    return path


def nomp(matrix: np.ndarray, target: np.ndarray, max_atoms: int) -> np.ndarray:
    """Non-negative Orthogonal Matching Pursuit.

    Returns a non-negative coefficient vector x (len = #columns) with at
    most ``max_atoms`` non-zeros approximating ``matrix @ x ~= target``.
    Stops early when no remaining column has positive correlation with the
    residual (adding it could not reduce the non-negative objective).
    """
    path = nomp_path(matrix, target, max_atoms)
    if not path:
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        return np.zeros(matrix.shape[1])
    return path[-1]


def largest_remainder_round(
    ideal: np.ndarray, capacities: np.ndarray, total: int
) -> np.ndarray:
    """Integer apportionment: nu ~= ideal with sum(nu) <= total, nu <= cap.

    Classic largest-remainder method with capacity caps: start from the
    capped floors, then hand out the remaining units in order of largest
    fractional remainder among entries with slack.  If the caps cannot
    absorb ``total`` units the result sums to the total slack instead.
    """
    if np.any(ideal < -1e-12):
        raise ValueError("ideal allocations must be non-negative")
    ideal = np.maximum(ideal, 0.0)
    base = np.minimum(np.floor(ideal + 1e-12), capacities).astype(int)
    remaining = min(int(total) - int(base.sum()), int((capacities - base).sum()))
    if remaining > 0:
        remainders = ideal - base
        slack = (capacities - base).astype(int)
        order = np.argsort(-remainders, kind="stable")
        # Round-robin in remainder order: one unit per index per pass, so
        # the allocation stays balanced even when capacities bind.
        while remaining > 0:
            progressed = False
            for index in order:
                if remaining == 0:
                    break
                if slack[index] > 0:
                    base[index] += 1
                    slack[index] -= 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
    return base


def round_to_counts_table(
    x: np.ndarray, capacities: np.ndarray, max_total: int
) -> list[tuple[np.ndarray, float] | None]:
    """Per-total apportionments behind :func:`round_to_counts`.

    Entry ``s - 1`` holds ``(counts, gap)`` for total ``s`` — the
    largest-remainder apportionment of ``s`` units and its L1-normalised
    distance to ``x`` — or ``None`` when the allocation collapses to zero.
    Each row depends only on its own ``s``, never on ``max_total``, so a
    table built at a large budget serves every smaller budget as a prefix:
    the cross-request batch solver rounds one shared pursuit path once and
    replays each request's budget as a prefix scan.  An empty list means
    ``x`` carries no mass (the rounded counts are all zero).
    """
    x = np.asarray(x, dtype=float)
    mass = float(np.abs(x).sum())
    if mass == 0.0 or max_total <= 0:
        return []
    normalised = x / mass

    # All apportionment inputs are batched over s = 1..max_total up front:
    # one vectorised floor/remainder pass and a single 2-D stable argsort
    # replace the per-total recomputation inside the loop (the allocation
    # itself stays per-s; it touches at most s units).
    ideals = np.arange(1, max_total + 1, dtype=float)[:, None] * normalised[None, :]
    if np.any(ideals < -1e-12):
        raise ValueError("ideal allocations must be non-negative")
    ideals = np.maximum(ideals, 0.0)
    bases = np.minimum(np.floor(ideals + 1e-12), capacities[None, :]).astype(int)
    orders = np.argsort(bases - ideals, axis=1, kind="stable")
    all_slacks = capacities[None, :] - bases

    table: list[tuple[np.ndarray, float] | None] = []
    for row in range(max_total):
        s = row + 1
        counts = bases[row]
        remaining = min(s - int(counts.sum()), int(all_slacks[row].sum()))
        if remaining > 0:
            counts = counts.copy()
            slack = all_slacks[row].copy()
            # Round-robin in remainder order, exactly as
            # largest_remainder_round does: one unit per index per pass.
            while remaining > 0:
                progressed = False
                for index in orders[row]:
                    if remaining == 0:
                        break
                    if slack[index] > 0:
                        counts[index] += 1
                        slack[index] -= 1
                        remaining -= 1
                        progressed = True
                if not progressed:
                    break
        count_sum = int(counts.sum())
        if count_sum == 0:
            table.append(None)
            continue
        gap = float(np.abs(counts / count_sum - normalised).sum())
        table.append((counts, gap))
    return table


def best_counts_in_table(
    table: Sequence[tuple[np.ndarray, float] | None],
    max_total: int,
    num_groups: int,
) -> np.ndarray:
    """The winning counts among totals ``1..max_total`` of ``table``.

    Applies :func:`round_to_counts`'s exact rule — strict 1e-12
    improvement, lowest total wins ties — so slicing a shared table is
    byte-identical to rounding from scratch at ``max_total``.
    """
    best_counts: np.ndarray | None = None
    best_gap = np.inf
    for entry in table[:max_total]:
        if entry is None:
            continue
        counts, gap = entry
        if gap < best_gap - 1e-12:
            best_gap = gap
            best_counts = counts
    if best_counts is None:
        return np.zeros(num_groups, dtype=int)
    return best_counts


def round_to_counts(
    x: np.ndarray, capacities: np.ndarray, max_total: int
) -> np.ndarray:
    """Discrete stage: integer counts nu minimising the normalised L1 gap.

    Searches every total s = 1..max_total, apportions s units by largest
    remainder, and keeps the nu whose L1-normalised form is closest to the
    L1-normalised x (the criterion of Algorithm 1, line 8).  Returns the
    zero vector when x is identically zero.
    """
    table = round_to_counts_table(x, capacities, max_total)
    return best_counts_in_table(table, max_total, len(np.asarray(x)))


def counts_to_selection(
    counts: np.ndarray, groups: Sequence[Sequence[int]]
) -> tuple[int, ...]:
    """Map group counts nu back to original column (review) indices.

    Members within a group are interchangeable (identical incidence
    vectors); the first ``nu_i`` members are taken, keeping determinism.
    """
    selected: list[int] = []
    for count, group in zip(counts, groups):
        if count > len(group):
            raise ValueError(
                f"count {count} exceeds group capacity {len(group)}"
            )
        selected.extend(group[: int(count)])
    return tuple(sorted(selected))


@dataclass(frozen=True, slots=True)
class RegressionSelection:
    """Outcome of one integer-regression run for one item."""

    selected: tuple[int, ...]
    objective: float


def integer_regression_select(
    columns: np.ndarray,
    target: np.ndarray,
    max_reviews: int,
    evaluate: Callable[[tuple[int, ...]], float],
    allow_empty: bool = False,
) -> RegressionSelection:
    """Select at most ``max_reviews`` columns approximating ``target``.

    ``evaluate`` receives a tuple of original column indices and must
    return the true objective value for that selection (lower is better);
    the best candidate across sparsity levels l = 1..m wins.

    With ``allow_empty=False`` (the default — review selection should show
    the user *something*) the empty set is returned only when NOMP produces
    no non-empty candidate at any sparsity level, e.g. when every column is
    zero.  With ``allow_empty=True`` the empty selection competes on
    objective value like any other candidate.
    """
    if columns.shape[0] != target.shape[0]:
        raise ValueError(
            f"column dimension {columns.shape[0]} != target dimension {target.shape[0]}"
        )
    deduplicated = deduplicate_columns(columns)
    capacities = deduplicated.capacities

    best: RegressionSelection | None = (
        RegressionSelection(selected=(), objective=evaluate(())) if allow_empty else None
    )
    seen: set[tuple[int, ...]] = {()}
    for x in nomp_path(deduplicated.matrix, target, max_reviews):
        counts = round_to_counts(x, capacities, max_reviews)
        selection = counts_to_selection(counts, deduplicated.groups)
        if selection in seen:
            continue
        seen.add(selection)
        objective = evaluate(selection)
        if best is None or objective < best.objective - 1e-12:
            best = RegressionSelection(selected=selection, objective=objective)
    if best is None:
        best = RegressionSelection(selected=(), objective=evaluate(()))
    return best
