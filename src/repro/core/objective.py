"""Exact evaluation of the paper's objective functions.

* :func:`item_objective` — Eq. 3, one item's contribution to Eq. 1.
* :func:`compare_sets_objective` — Eq. 1 (CompaReSetS).
* :func:`compare_sets_plus_objective` — Eq. 5 (CompaReSetS+).
* :func:`pairwise_item_distance` — d_ij of §3.1, feeding the TargetHkS graph.

All functions take explicit vectors/spaces so they are usable both inside
the solvers (scoring candidate selections) and by the evaluation harness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.distance import squared_l2
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space
from repro.core.vectors import VectorSpace
from repro.data.models import Review


def item_objective(
    space: VectorSpace,
    selected: Sequence[Review],
    tau: np.ndarray,
    gamma: np.ndarray,
    lam: float,
) -> float:
    """Eq. 3: Delta(tau_i, pi(S_i)) + lambda^2 Delta(Gamma, phi(S_i))."""
    pi = space.opinion_vector(selected)
    phi = space.aspect_vector(selected)
    return squared_l2(tau, pi) + lam**2 * squared_l2(gamma, phi)


def _targets(result: SelectionResult, config: SelectionConfig, space: VectorSpace):
    """tau_i = pi(R_i) for every item and Gamma = phi(R_1)."""
    taus = [space.opinion_vector(reviews) for reviews in result.instance.reviews]
    gamma = space.aspect_vector(result.instance.reviews[0])
    return taus, gamma


def compare_sets_objective(
    result: SelectionResult,
    config: SelectionConfig,
    space: VectorSpace | None = None,
) -> float:
    """Eq. 1: sum_i Delta(tau_i, pi(S_i)) + lambda^2 sum_i Delta(Gamma, phi(S_i))."""
    space = space or build_space(result.instance, config)
    taus, gamma = _targets(result, config, space)
    total = 0.0
    for item_index in range(result.instance.num_items):
        total += item_objective(
            space,
            result.selected_reviews(item_index),
            taus[item_index],
            gamma,
            config.lam,
        )
    return total


def compare_sets_plus_objective(
    result: SelectionResult,
    config: SelectionConfig,
    space: VectorSpace | None = None,
) -> float:
    """Eq. 5: Eq. 1 plus mu^2 sum_{i<j} Delta(phi(S_i), phi(S_j))."""
    space = space or build_space(result.instance, config)
    base = compare_sets_objective(result, config, space)
    phis = [
        space.aspect_vector(result.selected_reviews(i))
        for i in range(result.instance.num_items)
    ]
    pairwise = 0.0
    for i in range(len(phis) - 1):
        for j in range(i + 1, len(phis)):
            pairwise += squared_l2(phis[i], phis[j])
    return base + config.mu**2 * pairwise


def pairwise_item_distance(
    space: VectorSpace,
    selected_i: Sequence[Review],
    selected_j: Sequence[Review],
    tau_i: np.ndarray,
    tau_j: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
) -> float:
    """d_ij of §3.1 between two items given their selected review sets.

    d_ij = Delta(tau_i, pi(S_i)) + Delta(tau_j, pi(S_j))
         + lambda^2 [Delta(Gamma, phi(S_i)) + Delta(Gamma, phi(S_j))]
         + mu^2 Delta(phi(S_i), phi(S_j))
    """
    pi_i = space.opinion_vector(selected_i)
    pi_j = space.opinion_vector(selected_j)
    phi_i = space.aspect_vector(selected_i)
    phi_j = space.aspect_vector(selected_j)
    return (
        squared_l2(tau_i, pi_i)
        + squared_l2(tau_j, pi_j)
        + config.lam**2 * (squared_l2(gamma, phi_i) + squared_l2(gamma, phi_j))
        + config.mu**2 * squared_l2(phi_i, phi_j)
    )
