"""Gram-cached Batch-OMP solver core for the Integer-Regression heuristic.

The continuous stage of :mod:`repro.core.integer_regression` re-runs scipy
``nnls`` from scratch for every atom and recomputes the full ``W^T r``
correlation each iteration.  Batch-OMP (Rubinstein, Zibulevsky & Elad 2008,
"Efficient Implementation of the K-SVD Algorithm using Batch Orthogonal
Matching Pursuit") restructures the pursuit around precomputed quantities:

* ``G = W^T W`` (the Gram matrix) and ``b = W^T y`` are computed once;
  the correlation after adding support S with coefficients c is
  ``alpha = b - G[:, S] c`` — a (q, |S|) product instead of a (D, q) one.
* The support least-squares is solved through an incrementally updated
  Cholesky factor of ``G[S, S]`` (one triangular solve per new atom),
  falling back to scipy ``nnls`` when the unconstrained solve goes
  negative or the support turns numerically rank-deficient.

Byte-identical selections demand one refinement over textbook Batch-OMP.
``alpha`` equals ``W^T r`` *mathematically* but not bitwise, and the
incidence structure of review columns produces exact correlation ties
(two disjoint reviews covering equally many target aspects), so ulp-level
noise can flip the greedy atom choice against the reference; likewise the
unconstrained Cholesky coefficients differ from nnls's in the last ulp,
which flips remainder ties inside the discrete rounding stage.  The
default **exact mode** therefore (a) uses ``alpha`` only as a *screen* —
when the winner's margin over the runner-up is below a conservative
epsilon (or the stopping test is borderline), the reference correlation
vector ``W^T (y - W_S c)`` is recomputed with the reference's own
expressions, bitwise — and (b) always takes the support coefficients from
scipy ``nnls`` exactly as the reference does (they feed the rounding
stage, where their last ulp matters).  ``exact=False`` switches to the
textbook fast path (Gram correlations + Cholesky coefficients) whose
selections may diverge on tie-heavy instances; the core benchmark
measures both.

The Eq.-4 / Algorithm-1 matrices are stacked from two row blocks — the
opinion incidence O and the aspect incidence A — so their Grams compose
without ever forming the stack:

    CompaReSetS      W = [O; lam*A]                G = G_op + lam^2 G_asp
    CompaReSetS+     W = [O; lam*A; mu*A * (n-1)]  G = G_op + (lam^2 + (n-1) mu^2) G_asp

where ``G_op = O^T O`` and ``G_asp = A^T A`` are per-item invariants.  An
alternating CompaReSetS+ sweep therefore only recomputes the target
correlation vector ``b``; the Gram never changes.  :class:`SolverArtifacts`
packages these invariants (dedup groups, unique columns, Gram blocks) per
item so the serving layer can reuse them across requests, and
:class:`CountsEvaluator` scores candidate selections directly from group
counts on the precomputed unique columns instead of re-vectorising Python
``Review`` lists per candidate.

Numerical-faithfulness notes (why selections match the reference):

* the dedup of the ``k``-sync-block stack equals the dedup of the
  1-sync-block stack — replicated identical rows cannot split groups;
* ``b = stacked^T y`` reproduces the reference's first-iteration
  correlations bit-for-bit (same arrays, same BLAS call);
* binary / 3-polarity incidence counts are small integers, so evaluating
  pi/phi as ``U @ counts`` is exact under any summation order; the unary
  scheme accumulates raw per-review signed strengths in selection order to
  preserve the reference's floating-point summation;
* the discrete stage (:func:`~repro.core.integer_regression.round_to_counts`)
  and the candidate argmin are shared with the reference verbatim.

The equivalence test harness (``tests/test_omp_kernel.py``) and the core
benchmark (``benchmarks/bench_core_solver.py``) assert identical selections
against the scipy-``nnls`` reference across schemes and instance shapes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from collections.abc import Callable, Iterator, Sequence

import numpy as np
from scipy.linalg import solve_triangular
from scipy.optimize import nnls

from repro.core.distance import concat_scaled, squared_l2
from repro.core.integer_regression import (
    _CORRELATION_TOLERANCE,
    RegressionSelection,
    best_counts_in_table,
    counts_to_selection,
    deduplicate_columns,
    round_to_counts,
    round_to_counts_table,
)
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme, VectorSpace, _sigmoid
from repro.data.models import Review

#: The per-stage timing buckets exposed in serving provenance and metrics.
STAGES = ("dedup", "gram", "screen", "pursuit", "round", "evaluate")


class StageTimer:
    """Accumulates wall time per solver stage across any number of solves.

    One timer typically spans a whole selector run (all items, all
    sweeps); :meth:`as_millis` snapshots the totals for provenance.
    ``counters`` accumulates integer event counts alongside the timings —
    the candidate pre-screen records how many columns it examined, kept,
    and promoted there, and the serving layer surfaces the totals as
    solver provenance.
    """

    __slots__ = ("seconds", "counters")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.counters: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        began = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] += time.perf_counter() - began

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate an integer event counter (screen sizes, rechecks)."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def as_millis(self) -> dict[str, float]:
        """Stage totals in milliseconds (a fresh dict; safe to keep)."""
        return {stage: seconds * 1e3 for stage, seconds in self.seconds.items()}


#: Column-chunk width of the canonical Gram computation (see
#: :func:`_grid_gram`).  Smaller chunks make incremental extension cheaper
#: (an extension recomputes at most one partial chunk of old columns) at
#: the cost of more, smaller GEMM calls in the cold build.
_GRAM_CHUNK = 128


def _grid_gram(
    unique: np.ndarray,
    previous: np.ndarray | None = None,
    previous_columns: int = 0,
) -> np.ndarray:
    """``unique.T @ unique`` computed in fixed column-grid chunks.

    BLAS GEMM results for a sub-block are *not* bitwise equal to the
    corresponding slice of one big GEMM (different reduction blocking),
    so a naive bordered update ``[[G, W^T W_d], [W_d^T W, W_d^T W_d]]``
    would drift from a cold rebuild at the ulp level.  Instead both the
    cold build and the incremental extension compute the Gram chunk by
    chunk at *absolute* column positions ``[k*B, (k+1)*B)``: each chunk
    issues the same GEMM calls (same shapes, same operand bytes)
    regardless of how many columns existed when it was first filled, so
    N successive extensions reproduce the cold bytes exactly.

    With ``previous`` (the Gram over the first ``previous_columns``
    columns, itself grid-built), every complete old chunk is copied and
    only the trailing partial chunk plus the appended columns are
    recomputed — O(q * (d + B) * D) instead of O(q^2 * D).
    """
    q = unique.shape[1]
    gram = np.empty((q, q), dtype=unique.dtype)
    keep = 0
    if previous is not None:
        keep = (previous_columns // _GRAM_CHUNK) * _GRAM_CHUNK
        gram[:keep, :keep] = previous[:keep, :keep]
    for start in range(keep, q, _GRAM_CHUNK):
        end = min(start + _GRAM_CHUNK, q)
        block = unique[:, start:end]
        if start:
            cross = unique[:, :start].T @ block
            gram[:start, start:end] = cross
            gram[start:end, :start] = cross.T
        gram[start:end, start:end] = block.T @ block
    return gram


class GramBlock:
    """Dedup groups + Gram blocks for one (lam, mu) stacked-matrix family.

    ``with_sync=False`` is the CompaReSetS family ``[O; lam*A]``;
    ``with_sync=True`` additionally carries one ``mu*A`` copy, which fixes
    the dedup for *every* number of sync blocks (identical rows replicate,
    so extra copies can never split a group).  :meth:`stacked` and
    :meth:`gram` materialise the matrix / Gram for a concrete sync-block
    count on demand and memoise per count.
    """

    __slots__ = (
        "lam",
        "mu",
        "with_sync",
        "groups",
        "capacities",
        "column_group",
        "unique_opinion",
        "unique_aspect",
        "_gram_op",
        "_gram_asp",
        "_dedup_matrix",
        "_sync_rows",
        "_stacks",
        "_grams",
        "_norms",
        "_nonneg",
    )

    def __init__(
        self,
        opinion: np.ndarray,
        aspect: np.ndarray,
        lam: float,
        mu: float,
        with_sync: bool,
        timer: StageTimer,
        *,
        grams: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.lam = float(lam)
        self.mu = float(mu)
        self.with_sync = with_sync
        blocks = [opinion, lam * aspect]
        if with_sync:
            blocks.append(mu * aspect)
        with timer.stage("dedup"):
            dedup = deduplicate_columns(np.vstack(blocks))
        self.groups = dedup.groups
        self.capacities = dedup.capacities
        num_columns = opinion.shape[1]
        self.column_group = np.zeros(num_columns, dtype=np.intp)
        for group_id, group in enumerate(self.groups):
            for member in group:
                self.column_group[member] = group_id
        # dedup.matrix rows are [O_u; lam*A_u] (+ mu*A_u when with_sync) —
        # already the exact stacked matrix of the 0/1-sync-block solve.
        self._dedup_matrix = dedup.matrix
        opinion_dim = opinion.shape[0]
        num_aspects = aspect.shape[0]
        self._sync_rows = (
            dedup.matrix[opinion_dim + num_aspects :] if with_sync else None
        )
        firsts = [group[0] for group in self.groups]
        with timer.stage("gram"):
            self.unique_opinion = opinion[:, firsts]
            self.unique_aspect = aspect[:, firsts]
        if grams is not None:
            # Snapshot restore: the Gram blocks were persisted, so the
            # two matmuls are skipped.  They are pure functions of the
            # unique columns, making the injected values verifiable.
            self._gram_op, self._gram_asp = grams
        else:
            # Built lazily on first access: the screened pursuit path
            # never touches the O(q^2 D) Gram products, which is the
            # whole point of pre-screening 10k-100k-review items.
            self._gram_op = None
            self._gram_asp = None
        self._stacks: dict[int, np.ndarray] = {}
        self._grams: dict[int, np.ndarray] = {}
        self._norms: dict[int, np.ndarray] = {}
        self._nonneg: bool | None = None

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def gram_op(self) -> np.ndarray:
        """``O_u^T O_u`` over the unique columns (built on first access)."""
        if self._gram_op is None:
            self._gram_op = _grid_gram(self.unique_opinion)
        return self._gram_op

    @property
    def gram_asp(self) -> np.ndarray:
        """``A_u^T A_u`` over the unique columns (built on first access)."""
        if self._gram_asp is None:
            self._gram_asp = _grid_gram(self.unique_aspect)
        return self._gram_asp

    def stacked(self, sync_blocks: int = 0) -> np.ndarray:
        """The unique-column stacked matrix for ``sync_blocks`` sync copies.

        Byte-identical to deduplicating the full replicated stack: scaling
        rows commutes with selecting first-occurrence columns.
        """
        self._check_sync(sync_blocks)
        cached = self._stacks.get(sync_blocks)
        if cached is not None:
            return cached
        if not self.with_sync or sync_blocks == 1:
            stack = self._dedup_matrix
        else:
            stack = np.vstack(
                [self._dedup_matrix] + [self._sync_rows] * (sync_blocks - 1)
            )
        self._stacks[sync_blocks] = stack
        return stack

    def gram(self, sync_blocks: int = 0) -> np.ndarray:
        """``G_op + (lam^2 + sync_blocks * mu^2) G_asp`` (memoised)."""
        self._check_sync(sync_blocks)
        cached = self._grams.get(sync_blocks)
        if cached is not None:
            return cached
        scale = self.lam * self.lam + sync_blocks * self.mu * self.mu
        gram = self.gram_op + scale * self.gram_asp
        self._grams[sync_blocks] = gram
        return gram

    def counts_for(self, selection: Sequence[int]) -> np.ndarray:
        """Group-count vector nu of a selection of original column indices."""
        counts = np.zeros(self.num_groups, dtype=int)
        for index in selection:
            counts[self.column_group[index]] += 1
        return counts

    def column_norms(self, sync_blocks: int = 0) -> np.ndarray:
        """Per-column L2 norms of :meth:`stacked` (memoised per count).

        The pre-screen's Cauchy-Schwarz bound ``corr_j <= ||w_j|| ||r||``
        needs them once per (block, sync count); O(q D), no Gram.
        """
        cached = self._norms.get(sync_blocks)
        if cached is not None:
            return cached
        stack = self.stacked(sync_blocks)
        norms = np.sqrt(np.einsum("ij,ij->j", stack, stack))
        self._norms[sync_blocks] = norms
        return norms

    def nonnegative(self) -> bool:
        """Whether every stacked-matrix entry is >= 0 (memoised).

        All three opinion schemes produce non-negative incidence (0/1
        counts, or sigmoid strengths in (0, 1)), which the pre-screen's
        ``corr_j <= b_j`` bound relies on; the check guards against a
        future scheme with signed entries, for which the screen falls
        back to the norm bound alone.  Sync row blocks are scaled copies
        of the aspect rows, so checking the base dedup matrix covers
        every sync count.
        """
        if self._nonneg is None:
            self._nonneg = bool(np.all(self._dedup_matrix >= 0.0))
        return self._nonneg

    def _check_sync(self, sync_blocks: int) -> None:
        if sync_blocks < 0:
            raise ValueError(f"sync_blocks must be >= 0, got {sync_blocks}")
        if sync_blocks > 0 and not self.with_sync:
            raise ValueError("this block was built without a sync row block")

    def extended(
        self,
        opinion: np.ndarray,
        aspect: np.ndarray,
        old_columns: int,
        timer: StageTimer,
    ) -> "GramBlock":
        """A new block over ``opinion``/``aspect``, built from this one.

        ``opinion``/``aspect`` must extend this block's matrices by
        appended columns (``old_columns`` is how many columns this block
        covers).  The dedup is reconciled incrementally — each appended
        column either joins an existing group (matching the rounded,
        signed-zero-normalised keys :func:`deduplicate_columns` uses) or
        opens a new group in first-occurrence order — and materialised
        Gram blocks grow via :func:`_grid_gram`'s grid extension.  The
        result is byte-identical to cold-building a block over the full
        matrices: same group order, same unique-column bytes, same Gram
        bytes.
        """
        if not self.groups:
            return GramBlock(
                opinion, aspect, self.lam, self.mu, self.with_sync, timer
            )
        delta_blocks = [opinion[:, old_columns:], self.lam * aspect[:, old_columns:]]
        if self.with_sync:
            delta_blocks.append(self.mu * aspect[:, old_columns:])
        delta_stack = np.vstack(delta_blocks)
        added = delta_stack.shape[1]
        with timer.stage("dedup"):
            # Rounded keys are per-column (np.round and the +0.0
            # signed-zero normalisation are elementwise), so keys derived
            # from this block's first-occurrence columns match the keys a
            # cold full-matrix dedup would compute for them.
            rounded_old = np.round(self._dedup_matrix, 12)
            rounded_old += 0.0
            old_keys = np.ascontiguousarray(rounded_old.T)
            key_to_group: dict[bytes, int] = {
                old_keys[group_id].tobytes(): group_id
                for group_id in range(len(self.groups))
            }
            rounded = np.round(delta_stack, 12)
            rounded += 0.0
            delta_keys = np.ascontiguousarray(rounded.T)
            groups = [list(group) for group in self.groups]
            new_firsts: list[int] = []
            for offset in range(added):
                column = old_columns + offset
                key = delta_keys[offset].tobytes()
                group_id = key_to_group.get(key)
                if group_id is None:
                    group_id = len(groups)
                    key_to_group[key] = group_id
                    groups.append([column])
                    new_firsts.append(offset)
                else:
                    groups[group_id].append(column)
        block = object.__new__(GramBlock)
        block.lam = self.lam
        block.mu = self.mu
        block.with_sync = self.with_sync
        block.groups = tuple(tuple(group) for group in groups)
        block.capacities = np.array([len(group) for group in block.groups], dtype=int)
        block.column_group = np.zeros(old_columns + added, dtype=np.intp)
        for group_id, group in enumerate(block.groups):
            for member in group:
                block.column_group[member] = group_id
        with timer.stage("gram"):
            if new_firsts:
                block._dedup_matrix = np.hstack(
                    [self._dedup_matrix, delta_stack[:, new_firsts]]
                )
                absolute = [old_columns + offset for offset in new_firsts]
                block.unique_opinion = np.hstack(
                    [self.unique_opinion, opinion[:, absolute]]
                )
                block.unique_aspect = np.hstack(
                    [self.unique_aspect, aspect[:, absolute]]
                )
                old_unique = len(self.groups)
                block._gram_op = (
                    None
                    if self._gram_op is None
                    else _grid_gram(block.unique_opinion, self._gram_op, old_unique)
                )
                block._gram_asp = (
                    None
                    if self._gram_asp is None
                    else _grid_gram(block.unique_aspect, self._gram_asp, old_unique)
                )
            else:
                # Every appended column duplicates an existing group: the
                # unique columns (hence the Grams) are unchanged.
                block._dedup_matrix = self._dedup_matrix
                block.unique_opinion = self.unique_opinion
                block.unique_aspect = self.unique_aspect
                block._gram_op = self._gram_op
                block._gram_asp = self._gram_asp
        opinion_dim = opinion.shape[0]
        num_aspects = aspect.shape[0]
        block._sync_rows = (
            block._dedup_matrix[opinion_dim + num_aspects :]
            if self.with_sync
            else None
        )
        block._stacks = {}
        block._grams = {}
        block._norms = {}
        if self._nonneg is None or not new_firsts:
            block._nonneg = self._nonneg
        else:
            # Cold checks the dedup matrix (unique columns only), so the
            # combination must too — a duplicate column may differ from
            # its group representative below the rounding tolerance.
            block._nonneg = self._nonneg and bool(
                np.all(delta_stack[:, new_firsts] >= 0.0)
            )
        return block


class SolverArtifacts:
    """Reusable per-item invariants of the Batch-OMP kernel.

    Bound to one ``(space, reviews, lam)`` triple: the incidence matrices,
    the eagerly built CompaReSetS :class:`GramBlock`, and — lazily, keyed
    by ``mu`` — the CompaReSetS+ sync blocks (``m`` and the sync-block
    count vary per solve without invalidating anything, matching the
    :class:`~repro.serve.store.ItemStore` artifact key).  Thread-safe:
    the serving layer shares one instance across concurrent solves.
    """

    def __init__(
        self,
        space: VectorSpace,
        reviews: Sequence[Review],
        lam: float,
        *,
        timer: StageTimer | None = None,
        incidence: tuple[np.ndarray, np.ndarray] | None = None,
        base_grams: tuple[np.ndarray, np.ndarray] | None = None,
        screen: str = "auto",
    ) -> None:
        if screen not in _SCREEN_MODES:
            raise ValueError(
                f"screen must be one of {sorted(_SCREEN_MODES)}, got {screen!r}"
            )
        self.space = space
        self.reviews: tuple[Review, ...] = tuple(reviews)
        self.lam = float(lam)
        self.screen = screen
        if incidence is not None:
            # Snapshot restore: the persisted incidence matrices replace
            # the per-review tokenised-corpus walks, which dominate cold
            # artifact construction.
            self._opinion, self._aspect = incidence
        else:
            self._opinion = space.opinion_matrix(self.reviews)
            self._aspect = space.aspect_matrix(self.reviews)
        self._lock = threading.Lock()
        self._base = GramBlock(
            self._opinion,
            self._aspect,
            self.lam,
            0.0,
            with_sync=False,
            timer=timer if timer is not None else StageTimer(),
            grams=base_grams,
        )
        self._plus: dict[float, GramBlock] = {}
        self._strengths: np.ndarray | None = None
        self._solve_cache: dict[tuple, RegressionSelection] = {}

    def matches(self, space: VectorSpace, reviews: Sequence[Review], lam: float) -> bool:
        """Cheap identity check that these artifacts fit an item solve."""
        return (
            self.space is space
            and self.lam == float(lam)
            and len(self.reviews) == len(reviews)
            and (not self.reviews or self.reviews[0] is reviews[0])
        )

    def base_block(self) -> GramBlock:
        """The CompaReSetS block ``[O; lam*A]``."""
        return self._base

    def plus_block(self, mu: float, timer: StageTimer | None = None) -> GramBlock:
        """The CompaReSetS+ block for ``mu`` (built once, then shared).

        The dedup depends on ``mu`` (two reviews with equal opinions and
        aspects are always grouped, but the rounding is applied to the
        scaled rows), hence the per-``mu`` keying.
        """
        mu = float(mu)
        with self._lock:
            block = self._plus.get(mu)
        if block is None:
            block = GramBlock(
                self._opinion,
                self._aspect,
                self.lam,
                mu,
                with_sync=True,
                timer=timer if timer is not None else StageTimer(),
            )
            with self._lock:
                self._plus.setdefault(mu, block)
                block = self._plus[mu]
        return block

    def cached_solve(
        self, key: tuple, compute: Callable[[], RegressionSelection]
    ) -> RegressionSelection:
        """Memoise a full regression solve keyed by its exact inputs.

        Alternating CompaReSetS+ sweeps converge quickly, so later sweeps
        re-pose byte-identical subproblems (same target vector, same
        parameters); serving repeats them across requests.  The key embeds
        ``target.tobytes()`` plus every parameter that shapes the solve, so
        a hit returns precisely what recomputing would.  The cache is
        dropped wholesale past a size bound rather than evicted piecemeal —
        solves cluster around a handful of targets per item.
        """
        with self._lock:
            hit = self._solve_cache.get(key)
        if hit is not None:
            return hit
        result = compute()
        with self._lock:
            if len(self._solve_cache) >= _SOLVE_CACHE_LIMIT:
                self._solve_cache.clear()
            self._solve_cache.setdefault(key, result)
            return self._solve_cache[key]

    def peek(self, key: tuple) -> RegressionSelection | None:
        """A memoised solve for ``key``, or None (never computes).

        The batched entry points use it to split a request batch into
        memo hits and the misses worth stacking into one multi-RHS
        pursuit.
        """
        with self._lock:
            return self._solve_cache.get(key)

    def solve_many(
        self,
        jobs: Sequence[tuple],
        *,
        timer: StageTimer | None = None,
        exact: bool = True,
    ) -> list:
        """Solve a mixed batch of per-item subproblems in lockstep.

        Each job is either ``("item", tau, gamma, config)`` — one Eq.-4
        CompaReSetS solve, yielding a :class:`RegressionSelection` — or
        ``("plus", tau, gamma, other_phis, config, current, literal)`` —
        one Algorithm-1 inner iteration, yielding the accepted selection
        tuple exactly like :func:`solve_plus_item`.  Jobs that share a
        Gram block are stacked into single GEMM-shaped pursuit rounds
        (:func:`batch_omp_many`); results are byte-identical to issuing
        the jobs one at a time and land in the same memo cache.
        """
        timer = timer if timer is not None else StageTimer()
        results: list = [None] * len(jobs)
        item_jobs: list[tuple[int, tuple]] = []
        plus_jobs: list[tuple[int, tuple]] = []
        for index, job in enumerate(jobs):
            kind = job[0]
            if kind == "item":
                item_jobs.append((index, job[1:]))
            elif kind == "plus":
                plus_jobs.append((index, job[1:]))
            else:
                raise ValueError(f"unknown solve_many job kind {kind!r}")
        if item_jobs:
            solved = solve_item_many(
                self, [job for _, job in item_jobs], timer=timer, exact=exact
            )
            for (index, _), result in zip(item_jobs, solved):
                results[index] = result
        if plus_jobs:
            solved = solve_plus_item_many(
                self, [job for _, job in plus_jobs], timer=timer, exact=exact
            )
            for (index, _), result in zip(plus_jobs, solved):
                results[index] = result
        return results

    def clear_solve_cache(self) -> None:
        """Drop memoised solve results, keeping the Gram blocks.

        For benchmarking the warm-artifact / cold-solve case; production
        callers never need this (the cache is exact by construction).
        """
        with self._lock:
            self._solve_cache.clear()

    def strength_matrix(self) -> np.ndarray:
        """(z, N) raw signed-strength columns for unary-scale evaluation."""
        with self._lock:
            if self._strengths is None:
                if self.reviews:
                    self._strengths = np.column_stack(
                        [
                            self.space.review_signed_strengths(review)
                            for review in self.reviews
                        ]
                    )
                else:
                    self._strengths = np.zeros((self.space.num_aspects, 0))
            return self._strengths

    def extended(
        self, reviews: Sequence[Review], *, timer: StageTimer | None = None
    ) -> "SolverArtifacts":
        """New artifacts for this item's reviews plus appended ``reviews``.

        Incidence matrices grow by the delta columns only (per-review
        walks for the new reviews; the old columns are reused), and every
        already-built :class:`GramBlock` — the base block and any
        per-``mu`` sync blocks — is extended via the bordered grid update
        instead of rebuilt.  Byte-identical to cold-building artifacts
        over the concatenated review tuple.

        The solve memo does *not* carry over: appended reviews can change
        group capacities even for an unchanged target vector (a new
        member joining an existing dedup group shifts the
        largest-remainder apportionment), so memo entries keyed by target
        bytes may be stale.  Artifacts of *untouched* items are shared by
        reference during delta carry-over, which is where the memo reuse
        the store relies on actually lives.
        """
        delta = tuple(reviews)
        if not delta:
            return self
        timer = timer if timer is not None else StageTimer()
        delta_opinion = self.space.opinion_matrix(delta)
        delta_aspect = self.space.aspect_matrix(delta)
        opinion = np.hstack([self._opinion, delta_opinion])
        aspect = np.hstack([self._aspect, delta_aspect])
        old_columns = len(self.reviews)
        with self._lock:
            plus_blocks = dict(self._plus)
            strengths = self._strengths
        extended = object.__new__(SolverArtifacts)
        extended.space = self.space
        extended.reviews = self.reviews + delta
        extended.lam = self.lam
        extended.screen = self.screen
        extended._opinion = opinion
        extended._aspect = aspect
        extended._lock = threading.Lock()
        extended._base = self._base.extended(opinion, aspect, old_columns, timer)
        extended._plus = {
            mu: block.extended(opinion, aspect, old_columns, timer)
            for mu, block in plus_blocks.items()
        }
        if strengths is None:
            extended._strengths = None
        else:
            extended._strengths = np.hstack(
                [
                    strengths,
                    np.column_stack(
                        [self.space.review_signed_strengths(r) for r in delta]
                    ),
                ]
            )
        extended._solve_cache = {}
        return extended


#: Upper bound on memoised solves per :class:`SolverArtifacts`; the cache
#: clears wholesale when full (see :meth:`SolverArtifacts.cached_solve`).
_SOLVE_CACHE_LIMIT = 1024

#: Valid candidate pre-screen modes for :class:`SolverArtifacts`.
#: ``auto`` screens provably once an item crosses
#: :data:`_SCREEN_MIN_GROUPS` unique columns; ``provable`` / ``empirical``
#: force screening at any size (the latter trades the exactness
#: certificate for speed); ``off`` disables it.
_SCREEN_MODES = frozenset({"auto", "off", "provable", "empirical"})

#: ``screen="auto"`` threshold: below this many unique columns the dense
#: Gram path is already fast and byte-exact, so screening only kicks in
#: for huge items (the paper's corpora top out far below it).
_SCREEN_MIN_GROUPS = 2048

#: Kept-set sizing for the pre-screen: ``max(_SCREEN_KEEP_MIN,
#: _SCREEN_KEEP_FACTOR * budget)`` columns survive the initial
#: correlation ranking.  Purely a performance knob — the per-round
#: certificate recovers any wrongly pruned column — sized so promotions
#: stay rare in practice.
_SCREEN_KEEP_MIN = 256
_SCREEN_KEEP_FACTOR = 16


def _screen_active(screen: str, num_groups: int, exact: bool) -> bool:
    """Whether the pre-screen governs this solve.

    ``exact=False`` already runs the textbook fast path whose selections
    may diverge; the screen only targets the exact path, where avoiding
    the O(q^2) Gram is the win worth certifying.
    """
    if screen == "off" or not exact:
        return False
    if screen == "auto":
        return num_groups >= _SCREEN_MIN_GROUPS
    return True

#: Relative margin below which a screened atom choice counts as a tie and
#: the exact correlation vector is recomputed.  The fp discrepancy between
#: ``alpha`` and ``W^T r`` is ~D machine epsilons (relative ~1e-13); 1e-9
#: leaves four orders of magnitude of slack, and a false positive merely
#: costs one reference-style mat-vec.
_TIE_MARGIN = 1e-9


def batch_omp_path(
    gram: np.ndarray,
    b: np.ndarray,
    max_atoms: int,
    stacked: np.ndarray,
    target: np.ndarray,
    *,
    exact: bool = True,
) -> list[np.ndarray]:
    """Non-negative Batch-OMP, returning the solution after *every* atom.

    Drop-in counterpart of
    :func:`~repro.core.integer_regression.nomp_path` operating on the
    precomputed Gram ``gram = stacked^T stacked`` and correlation
    ``b = stacked^T target``.  Atom selection uses the Gram-updated
    correlation ``alpha = b - gram[:, S] c`` as a screen.

    ``exact=True`` (the default) guarantees the returned path is
    bit-identical to the reference ``nomp_path(stacked, target, ...)``:
    when the screened winner's margin (or the stopping test) falls below
    :data:`_TIE_MARGIN` the reference correlations are recomputed with the
    reference's own expressions, and the support coefficients always come
    from scipy ``nnls`` (their last ulp feeds the rounding stage).
    ``exact=False`` is textbook Batch-OMP — Gram correlations plus
    incremental-Cholesky coefficients, with nnls only when the
    unconstrained solve goes negative or the support turns numerically
    rank-deficient — whose atom/rounding tie-breaks may diverge from the
    reference on tie-heavy instances.
    """
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ValueError(f"expected a square Gram matrix, got shape {gram.shape}")
    num_columns = gram.shape[1]
    if num_columns == 0 or max_atoms <= 0:
        return []

    max_steps = min(max_atoms, num_columns)
    target_float = target.astype(float)
    alpha = b.astype(float).copy()
    lower = np.zeros((max_steps, max_steps))
    support: list[int] = []
    in_support = np.zeros(num_columns, dtype=bool)
    cholesky_ok = not exact
    coefficients = np.zeros(0)
    path: list[np.ndarray] = []

    for _ in range(max_steps):
        correlations = alpha.copy()
        correlations[in_support] = -np.inf
        best = int(np.argmax(correlations))
        top = float(correlations[best])
        if exact and support:
            # Screen: the Gram-updated alpha differs from the reference's
            # W^T r by fp noise only, so an unambiguous winner is *the*
            # winner.  On a near-tie (or a borderline stop) recompute the
            # reference correlations bitwise and let them decide.
            correlations[best] = -np.inf
            runner_up = float(correlations.max()) if num_columns > 1 else -np.inf
            margin = _TIE_MARGIN * max(1.0, abs(top), abs(runner_up))
            if top - runner_up <= margin or top <= _CORRELATION_TOLERANCE + margin:
                residual = target_float - stacked[:, support] @ coefficients
                refreshed = stacked.T @ residual
                refreshed[in_support] = -np.inf
                best = int(np.argmax(refreshed))
                top = float(refreshed[best])
        if top <= _CORRELATION_TOLERANCE:
            break
        size = len(support)
        if cholesky_ok:
            pivot = float(gram[best, best])
            if size:
                w = solve_triangular(
                    lower[:size, :size],
                    gram[support, best],
                    lower=True,
                    check_finite=False,
                )
                pivot -= float(w @ w)
            if pivot <= 1e-12 * max(1.0, float(gram[best, best])):
                cholesky_ok = False
            else:
                if size:
                    lower[size, :size] = w
                lower[size, size] = np.sqrt(pivot)
        support.append(best)
        in_support[best] = True
        size += 1

        step: np.ndarray | None = None
        if cholesky_ok:
            factor = lower[:size, :size]
            forward = solve_triangular(
                factor, b[support], lower=True, check_finite=False
            )
            step = solve_triangular(
                factor.T, forward, lower=False, check_finite=False
            )
            if np.any(step < 0.0):
                step = None
        if step is None:
            step, _ = nnls(stacked[:, support], target)
        coefficients = step

        alpha = b - gram[:, support] @ coefficients
        x = np.zeros(num_columns)
        x[support] = coefficients
        path.append(x)
    return path


class _PursuitState:
    """Per-problem bookkeeping of one :func:`batch_omp_many` member."""

    __slots__ = (
        "b",
        "target",
        "target_float",
        "max_steps",
        "support",
        "in_support",
        "coefficients",
        "lower",
        "cholesky_ok",
        "path",
    )

    def __init__(
        self, b: np.ndarray, target: np.ndarray, max_steps: int,
        num_columns: int, exact: bool,
    ) -> None:
        self.b = np.asarray(b, dtype=float)
        self.target = target
        self.target_float = target.astype(float)
        self.max_steps = max_steps
        self.support: list[int] = []
        self.in_support = np.zeros(num_columns, dtype=bool)
        self.coefficients = np.zeros(0)
        self.lower = np.zeros((max_steps, max_steps)) if not exact else None
        self.cholesky_ok = not exact
        self.path: list[np.ndarray] = []


def batch_omp_many(
    gram: np.ndarray,
    bs: Sequence[np.ndarray],
    budgets: Sequence[int],
    stacked: np.ndarray,
    targets: Sequence[np.ndarray],
    *,
    exact: bool = True,
) -> list[list[np.ndarray]]:
    """Many concurrent pursuits over one shared Gram, GEMM-stacked.

    The multi-RHS counterpart of :func:`batch_omp_path`: ``bs[t]``,
    ``budgets[t]``, ``targets[t]`` pose problem ``t`` against the shared
    ``gram = stacked^T stacked``, and each round updates every still-active
    problem's correlations with **one** ``gram[:, S_union] @ C`` product
    (``S_union`` the union of active supports, ``C`` the per-problem
    coefficients scattered into union rows) instead of one mat-vec per
    problem.  Returns each problem's per-atom solution path; in exact mode
    (the default) it is byte-identical to
    ``batch_omp_path(gram, bs[t], budgets[t], stacked, targets[t])``.
    ``exact=False`` keeps the textbook fast path's existing caveat: with
    no tie rechecks, the GEMM's summation-order noise may flip tie-heavy
    atom choices exactly like the fast path already may against the
    reference.

    Why the GEMM cannot flip an exact-mode selection: zero rows of ``C``
    contribute
    exactly 0.0, so the batched alpha differs from the sequential one only
    by summation-order noise (~1e-13 relative), four orders of magnitude
    below :data:`_TIE_MARGIN` — any choice that close to the margin
    triggers the same reference-expression recheck either way, and the
    recheck recomputes ``W^T (y - W_S c)`` per problem with the exact
    sequential expression.  First-round correlations are the caller's
    ``b`` vectors verbatim (never re-derived through the GEMM), and the
    support coefficients come from per-problem scipy ``nnls`` on identical
    inputs.

    Identical targets are internally deduplicated: the greedy choice and
    the per-round nnls are budget-independent, so the budget-``m`` path is
    the first ``m`` entries of the longest requested path (one pursuit,
    sliced per requester).
    """
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ValueError(f"expected a square Gram matrix, got shape {gram.shape}")
    if not (len(bs) == len(budgets) == len(targets)):
        raise ValueError(
            f"mismatched batch: {len(bs)} correlation vectors, "
            f"{len(budgets)} budgets, {len(targets)} targets"
        )
    num_columns = gram.shape[1]
    paths: list[list[np.ndarray]] = [[] for _ in range(len(bs))]
    if num_columns == 0 or not bs:
        return paths

    # Dedup identical subproblems (same target implies same b): solve one
    # pursuit at the largest requested budget, slice prefixes per member.
    members: dict[bytes, list[int]] = {}
    for index, target in enumerate(targets):
        members.setdefault(target.tobytes(), []).append(index)
    states: list[_PursuitState] = []
    groups: list[list[int]] = []
    for group in members.values():
        budget = max(budgets[i] for i in group)
        max_steps = min(budget, num_columns)
        if max_steps <= 0:
            continue
        leader = group[0]
        states.append(
            _PursuitState(
                bs[leader], targets[leader], max_steps, num_columns, exact
            )
        )
        groups.append(group)

    active = list(range(len(states)))
    while active:
        union = sorted({atom for p in active for atom in states[p].support})
        alphas = np.column_stack([states[p].b for p in active])
        if union:
            scatter = np.zeros((len(union), len(active)))
            row_of = {atom: row for row, atom in enumerate(union)}
            for col, p in enumerate(active):
                state = states[p]
                if state.support:
                    rows = [row_of[atom] for atom in state.support]
                    scatter[rows, col] = state.coefficients
            alphas -= gram[:, union] @ scatter
        still_active: list[int] = []
        for col, p in enumerate(active):
            state = states[p]
            correlations = alphas[:, col].copy()
            correlations[state.in_support] = -np.inf
            best = int(np.argmax(correlations))
            top = float(correlations[best])
            if exact and state.support:
                correlations[best] = -np.inf
                runner_up = (
                    float(correlations.max()) if num_columns > 1 else -np.inf
                )
                margin = _TIE_MARGIN * max(1.0, abs(top), abs(runner_up))
                if (
                    top - runner_up <= margin
                    or top <= _CORRELATION_TOLERANCE + margin
                ):
                    residual = (
                        state.target_float
                        - stacked[:, state.support] @ state.coefficients
                    )
                    refreshed = stacked.T @ residual
                    refreshed[state.in_support] = -np.inf
                    best = int(np.argmax(refreshed))
                    top = float(refreshed[best])
            if top <= _CORRELATION_TOLERANCE:
                continue
            size = len(state.support)
            if state.cholesky_ok:
                pivot = float(gram[best, best])
                if size:
                    w = solve_triangular(
                        state.lower[:size, :size],
                        gram[state.support, best],
                        lower=True,
                        check_finite=False,
                    )
                    pivot -= float(w @ w)
                if pivot <= 1e-12 * max(1.0, float(gram[best, best])):
                    state.cholesky_ok = False
                else:
                    if size:
                        state.lower[size, :size] = w
                    state.lower[size, size] = np.sqrt(pivot)
            state.support.append(best)
            state.in_support[best] = True
            size += 1

            step: np.ndarray | None = None
            if state.cholesky_ok:
                factor = state.lower[:size, :size]
                forward = solve_triangular(
                    factor, state.b[state.support], lower=True, check_finite=False
                )
                step = solve_triangular(
                    factor.T, forward, lower=False, check_finite=False
                )
                if np.any(step < 0.0):
                    step = None
            if step is None:
                step, _ = nnls(stacked[:, state.support], state.target)
            state.coefficients = step

            x = np.zeros(num_columns)
            x[state.support] = step
            state.path.append(x)
            if len(state.path) < state.max_steps:
                still_active.append(p)
        active = still_active

    for state, group in zip(states, groups):
        for index in group:
            paths[index] = state.path[: budgets[index]]
    return paths


def _screened_omp_path(
    stacked: np.ndarray,
    target: np.ndarray,
    max_atoms: int,
    norms: np.ndarray,
    *,
    empirical: bool,
    nonneg: bool,
    timer: StageTimer,
) -> list[np.ndarray]:
    """Exact-mode pursuit over a pre-screened candidate set, Gram-free.

    For 10k-100k-review items the O(q^2 D) Gram behind
    :func:`batch_omp_path` dominates end to end, yet a budget-``m``
    pursuit touches at most ``m`` support atoms.  This path ranks all
    columns once by their initial correlation ``b = W^T y`` (one O(q D)
    product — bitwise the reference's first-round correlations), keeps
    the top ``max(_SCREEN_KEEP_MIN, _SCREEN_KEEP_FACTOR * m)``, and runs
    the pursuit against lazily built Gram *columns* restricted to the
    kept set (O(keep * D) per atom, never O(q^2)).

    Exactness (default, ``empirical=False``) comes from a per-round
    certificate instead of trusting the ranking: with non-negative
    incidence and nnls coefficients ``c >= 0`` every pruned column obeys
    ``corr_j = b_j - w_j . (W_S c) <= b_j``, and Cauchy-Schwarz gives
    ``corr_j <= ||w_j|| ||r||`` unconditionally.  Whenever the kept
    winner fails to beat the best pruned bound by :data:`_TIE_MARGIN` —
    or ties within the kept set, or sits at the stopping boundary — the
    reference correlation vector ``W^T r`` is recomputed over *all*
    columns with the reference's own expressions and decides; an
    out-of-set winner is promoted into the kept set (sorted insert, so
    the lowest-index tie-break keeps matching the reference).  The
    returned path is therefore byte-identical to the unscreened exact
    pursuit.  ``empirical=True`` skips the certificate and restricts
    rechecks to the kept set: faster, support preserved empirically but
    not provably.
    """
    num_columns = stacked.shape[1]
    if num_columns == 0 or max_atoms <= 0:
        return []
    max_steps = min(max_atoms, num_columns)

    with timer.stage("pursuit"):
        b = stacked.T @ target
    with timer.stage("screen"):
        keep = min(
            num_columns,
            max(_SCREEN_KEEP_MIN, _SCREEN_KEEP_FACTOR * max_steps),
        )
        if keep >= num_columns:
            kept_idx = np.arange(num_columns)
        else:
            order = np.argsort(b, kind="stable")
            kept_idx = np.sort(order[num_columns - keep :])
        kept_mask = np.zeros(num_columns, dtype=bool)
        kept_mask[kept_idx] = True
        kept_stack = stacked[:, kept_idx]
        b_kept = b[kept_idx]
        pruned = ~kept_mask
        pruned_b = b[pruned]
        pruned_norms = norms[pruned]
        timer.count("screen_total", num_columns)
        timer.count("screen_kept", len(kept_idx))
        timer.count("screen_solves", 1)

    support: list[int] = []
    in_support = np.zeros(num_columns, dtype=bool)
    coefficients = np.zeros(0)
    gram_kept = np.zeros((len(kept_idx), max_steps))
    path: list[np.ndarray] = []

    with timer.stage("pursuit"):
        for _ in range(max_steps):
            size = len(support)
            if size:
                alpha = b_kept - gram_kept[:, :size] @ coefficients
            else:
                alpha = b_kept.copy()
            alpha[in_support[kept_idx]] = -np.inf
            pos = int(np.argmax(alpha))
            best = int(kept_idx[pos])
            top = float(alpha[pos])
            alpha[pos] = -np.inf
            runner_up = float(alpha.max()) if alpha.size > 1 else -np.inf
            margin = _TIE_MARGIN * max(1.0, abs(top), abs(runner_up))
            need_full = (
                top - runner_up <= margin
                or top <= _CORRELATION_TOLERANCE + margin
            )
            residual: np.ndarray | None = None
            if not empirical and pruned_b.size:
                residual = (
                    target - stacked[:, support] @ coefficients
                    if size
                    else target
                )
                if not need_full:
                    # Certificate: no pruned column can out-correlate the
                    # kept winner.  At round one the nonneg bound equals
                    # the exact correlation, so boundary cases always
                    # fall through to the reference recheck.
                    rnorm = float(np.sqrt(residual @ residual))
                    bounds = pruned_norms * rnorm
                    if nonneg:
                        bounds = np.minimum(bounds, pruned_b)
                    if top <= float(bounds.max()) + margin:
                        need_full = True
            if need_full:
                if residual is None:
                    residual = (
                        target - stacked[:, support] @ coefficients
                        if size
                        else target
                    )
                refreshed = stacked.T @ residual
                refreshed[in_support] = -np.inf
                if empirical:
                    refreshed[pruned] = -np.inf
                best = int(np.argmax(refreshed))
                top = float(refreshed[best])
                timer.count("screen_rechecks", 1)
                if not kept_mask[best]:
                    timer.count("screen_promoted", 1)
                    at = int(np.searchsorted(kept_idx, best))
                    kept_idx = np.insert(kept_idx, at, best)
                    kept_mask[best] = True
                    kept_stack = stacked[:, kept_idx]
                    b_kept = np.insert(b_kept, at, b[best])
                    row = np.zeros(max_steps)
                    if size:
                        row[:size] = stacked[:, best] @ stacked[:, support]
                    gram_kept = np.insert(gram_kept, at, row, axis=0)
                    pruned = ~kept_mask
                    pruned_b = b[pruned]
                    pruned_norms = norms[pruned]
            if top <= _CORRELATION_TOLERANCE:
                break
            support.append(best)
            in_support[best] = True
            gram_kept[:, size] = kept_stack.T @ stacked[:, best]
            coefficients, _ = nnls(stacked[:, support], target)
            x = np.zeros(num_columns)
            x[support] = coefficients
            path.append(x)
    return path


class CountsEvaluator:
    """True-objective evaluation from group counts on unique columns.

    Replaces the reference's per-candidate rebuild (gather ``Review``
    objects, re-walk their mentions) with two mat-vecs on the block's
    precomputed unique columns.  Binary / 3-polarity counts are exact
    integers, so the mat-vec totals are bit-identical to the review walk;
    the unary scheme re-accumulates raw signed strengths in selection
    order to preserve the reference's floating-point summation order.
    """

    __slots__ = ("artifacts", "block", "tau", "gamma", "lam", "unary")

    def __init__(
        self,
        artifacts: SolverArtifacts,
        block: GramBlock,
        tau: np.ndarray,
        gamma: np.ndarray,
        lam: float,
    ) -> None:
        self.artifacts = artifacts
        self.block = block
        self.tau = tau
        self.gamma = gamma
        self.lam = float(lam)
        self.unary = artifacts.space.scheme is OpinionScheme.UNARY_SCALE

    def vectors(
        self, counts: np.ndarray, selection: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(pi, phi) of the selection, matching :class:`VectorSpace` exactly."""
        weights = np.asarray(counts, dtype=float)
        aspect_counts = self.block.unique_aspect @ weights
        maximum = float(aspect_counts.max()) if aspect_counts.size else 0.0
        phi = aspect_counts if maximum == 0.0 else aspect_counts / maximum
        if self.unary:
            pi = self._unary_pi(selection, aspect_counts)
        else:
            opinion_counts = self.block.unique_opinion @ weights
            pi = opinion_counts if maximum == 0.0 else opinion_counts / maximum
        return pi, phi

    def _unary_pi(
        self, selection: tuple[int, ...], aspect_counts: np.ndarray
    ) -> np.ndarray:
        strengths = self.artifacts.strength_matrix()
        totals = np.zeros(strengths.shape[0])
        for index in selection:
            totals += strengths[:, index]
        mentioned = aspect_counts > 0
        pi = np.zeros(strengths.shape[0])
        pi[mentioned] = _sigmoid(totals[mentioned])
        return pi

    def item_value(self, counts: np.ndarray, selection: tuple[int, ...]) -> float:
        """Eq.-3 contribution — mirrors :func:`~repro.core.objective.item_objective`."""
        pi, phi = self.vectors(counts, selection)
        return squared_l2(self.tau, pi) + self.lam**2 * squared_l2(self.gamma, phi)

    def plus_value(
        self,
        counts: np.ndarray,
        selection: tuple[int, ...],
        other_phis: Sequence[np.ndarray],
        mu: float,
        literal: bool,
    ) -> float:
        """Algorithm-1 acceptance score — mirrors ``_item_plus_objective``."""
        pi, phi = self.vectors(counts, selection)
        pairwise = sum(squared_l2(phi, other) for other in other_phis)
        if literal:
            return squared_l2(self.tau, pi) + squared_l2(self.gamma, phi) + pairwise
        base = squared_l2(self.tau, pi) + self.lam**2 * squared_l2(self.gamma, phi)
        return base + mu**2 * pairwise


def _run_regression(
    block: GramBlock,
    sync_blocks: int,
    target: np.ndarray,
    max_reviews: int,
    evaluate: Callable[[np.ndarray, tuple[int, ...]], float],
    timer: StageTimer,
    allow_empty: bool = False,
    exact: bool = True,
    screen: str = "off",
) -> RegressionSelection:
    """The kernel's Integer-Regression driver.

    Mirrors :func:`~repro.core.integer_regression.integer_regression_select`
    candidate for candidate: the same discrete rounding, the same strict
    1e-12 improvement rule, the same empty-set fallback — only the pursuit
    and the evaluation are served from precomputed artifacts.  When the
    pre-screen governs (:func:`_screen_active`), the pursuit side switches
    to :func:`_screened_omp_path` and the Gram is never materialised; the
    rounding stage still sees the full dedup groups and capacities, so
    largest-remainder spill into zero-coefficient groups stays identical.
    """
    target = np.asarray(target, dtype=float)
    if _screen_active(screen, block.num_groups, exact):
        with timer.stage("gram"):
            stacked = block.stacked(sync_blocks)
        with timer.stage("screen"):
            norms = block.column_norms(sync_blocks)
            nonneg = block.nonnegative()
        path = _screened_omp_path(
            stacked,
            target,
            max_reviews,
            norms,
            empirical=screen == "empirical",
            nonneg=nonneg,
            timer=timer,
        )
    else:
        with timer.stage("gram"):
            gram = block.gram(sync_blocks)
            stacked = block.stacked(sync_blocks)
        with timer.stage("pursuit"):
            b = stacked.T @ target
            path = batch_omp_path(
                gram, b, max_reviews, stacked, target, exact=exact
            )
    return _path_to_selection(
        block, path, max_reviews, evaluate, timer, allow_empty=allow_empty
    )


def _path_to_selection(
    block: GramBlock,
    path: Sequence[np.ndarray],
    max_reviews: int,
    evaluate: Callable[[np.ndarray, tuple[int, ...]], float],
    timer: StageTimer,
    allow_empty: bool = False,
) -> RegressionSelection:
    """Discrete rounding + candidate argmin over one pursuit path.

    Shared verbatim between the single-problem drivers and the batched
    entry points, so both stay candidate-for-candidate identical to the
    reference's rounding stage.
    """
    capacities = block.capacities
    best: RegressionSelection | None = None
    if allow_empty:
        with timer.stage("evaluate"):
            empty_value = evaluate(np.zeros(block.num_groups, dtype=int), ())
        best = RegressionSelection(selected=(), objective=empty_value)
    seen: set[tuple[int, ...]] = {()}
    for x in path:
        with timer.stage("round"):
            counts = round_to_counts(x, capacities, max_reviews)
            selection = counts_to_selection(counts, block.groups)
        if selection in seen:
            continue
        seen.add(selection)
        with timer.stage("evaluate"):
            objective = evaluate(counts, selection)
        if best is None or objective < best.objective - 1e-12:
            best = RegressionSelection(selected=selection, objective=objective)
    if best is None:
        with timer.stage("evaluate"):
            empty_value = evaluate(np.zeros(block.num_groups, dtype=int), ())
        best = RegressionSelection(selected=(), objective=empty_value)
    return best


def _shared_path_selections(
    block: GramBlock,
    path: Sequence[np.ndarray],
    budgets: Sequence[int],
    evaluate: Callable[[np.ndarray, tuple[int, ...]], float],
    timer: StageTimer,
) -> dict[int, RegressionSelection]:
    """Rounding + evaluation for many budgets over one shared pursuit path.

    Requests whose pursuits dedup onto one leader path differ only in
    where the path is cut and which totals the rounding may use — both
    prefix views of the same per-step apportionment table
    (:func:`round_to_counts_table` rows never depend on the budget).  The
    table is built once at the largest budget, each budget replays
    :func:`_path_to_selection`'s exact scan over its prefix, and the
    budget-independent evaluator is memoised per selection, so a 16-way
    burst pays for one rounding pass instead of sixteen.
    """
    capacities = block.capacities
    largest = max(budgets)
    with timer.stage("round"):
        tables = [
            round_to_counts_table(x, capacities, largest) for x in path[:largest]
        ]
    objective_of: dict[tuple[int, ...], float] = {}

    def evaluate_once(counts: np.ndarray, selection: tuple[int, ...]) -> float:
        objective = objective_of.get(selection)
        if objective is None:
            with timer.stage("evaluate"):
                objective = evaluate(counts, selection)
            objective_of[selection] = objective
        return objective

    results: dict[int, RegressionSelection] = {}
    for budget in sorted(set(budgets)):
        best: RegressionSelection | None = None
        seen: set[tuple[int, ...]] = {()}
        for table in tables[:budget]:
            with timer.stage("round"):
                counts = best_counts_in_table(table, budget, block.num_groups)
                selection = counts_to_selection(counts, block.groups)
            if selection in seen:
                continue
            seen.add(selection)
            objective = evaluate_once(counts, selection)
            if best is None or objective < best.objective - 1e-12:
                best = RegressionSelection(selected=selection, objective=objective)
        if best is None:
            empty_value = evaluate_once(np.zeros(block.num_groups, dtype=int), ())
            best = RegressionSelection(selected=(), objective=empty_value)
        results[budget] = best
    return results


def solve_item(
    artifacts: SolverArtifacts,
    tau: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> RegressionSelection:
    """Kernel counterpart of the CompaReSetS per-item solve (Eq. 4)."""
    timer = timer if timer is not None else StageTimer()
    block = artifacts.base_block()
    target = concat_scaled((1.0, tau), (config.lam, gamma))
    key = ("item", config.max_reviews, exact, target.tobytes())

    def compute() -> RegressionSelection:
        evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)
        return _run_regression(
            block, 0, target, config.max_reviews, evaluator.item_value, timer,
            exact=exact, screen=artifacts.screen,
        )

    return artifacts.cached_solve(key, compute)


def solve_plus_item(
    artifacts: SolverArtifacts,
    tau: np.ndarray,
    gamma: np.ndarray,
    other_phis: Sequence[np.ndarray],
    config: SelectionConfig,
    current: tuple[int, ...],
    literal: bool,
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> tuple[int, ...]:
    """Kernel counterpart of one Algorithm-1 inner iteration for item i.

    Returns the improved selection, or ``current`` when the regression
    candidate does not strictly improve the acceptance score.  With no
    other items the sync row block vanishes and the solve runs on the
    CompaReSetS base block, exactly like ``regression_columns(...,
    sync_blocks=0)`` does in the reference.
    """
    timer = timer if timer is not None else StageTimer()
    sync_blocks = len(other_phis)
    if sync_blocks == 0:
        block = artifacts.base_block()
    else:
        block = artifacts.plus_block(config.mu, timer=timer)
    gamma_scale = 1.0 if literal else config.lam
    phi_scale = 1.0 if literal else config.mu
    target_parts: list[tuple[float, np.ndarray]] = [
        (1.0, tau),
        (gamma_scale, gamma),
    ]
    for phi in other_phis:
        target_parts.append((phi_scale, phi))
    target = concat_scaled(*target_parts)
    evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)

    def evaluate(counts: np.ndarray, selection: tuple[int, ...]) -> float:
        return evaluator.plus_value(counts, selection, other_phis, config.mu, literal)

    # The target blocks (with mu / literal in the key) pin down the other
    # items' phis, so the memo key fully determines the candidate solve.
    key = (
        "plus", sync_blocks, config.max_reviews, config.mu, literal, exact,
        target.tobytes(),
    )
    candidate = artifacts.cached_solve(
        key,
        lambda: _run_regression(
            block, sync_blocks, target, config.max_reviews, evaluate, timer,
            exact=exact, screen=artifacts.screen,
        ),
    )
    with timer.stage("evaluate"):
        current_objective = evaluate(block.counts_for(current), current)
    if candidate.objective < current_objective - 1e-12:
        return candidate.selected
    return current


def solve_item_many(
    artifacts: SolverArtifacts,
    jobs: Sequence[tuple],
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> list[RegressionSelection]:
    """Many CompaReSetS per-item solves (Eq. 4) stacked into one pursuit.

    Each job is ``(tau, gamma, config)``.  Memo hits are filled from the
    solve cache; the misses share the base block's Gram/stacked matrices
    and run through :func:`batch_omp_many`, so a burst of distinct
    targets pays one ``G[:, S] @ C`` per round instead of one mat-vec
    per target per round.  Results are byte-identical to calling
    :func:`solve_item` per job and land in the same memo cache.
    Screened (huge) items fall back to the per-job screened path — GEMM
    stacking would materialise the O(q^2) Gram the screen exists to
    avoid.
    """
    timer = timer if timer is not None else StageTimer()
    block = artifacts.base_block()
    results: list[RegressionSelection | None] = [None] * len(jobs)
    misses: list[tuple[int, tuple, np.ndarray, tuple]] = []
    for index, (tau, gamma, config) in enumerate(jobs):
        target = concat_scaled((1.0, tau), (config.lam, gamma))
        key = ("item", config.max_reviews, exact, target.tobytes())
        hit = artifacts.peek(key)
        if hit is not None:
            results[index] = hit
        else:
            misses.append((index, key, target, (tau, gamma, config)))
    if not misses:
        return results  # type: ignore[return-value]

    if _screen_active(artifacts.screen, block.num_groups, exact):
        for index, _, _, (tau, gamma, config) in misses:
            results[index] = solve_item(
                artifacts, tau, gamma, config, timer=timer, exact=exact
            )
        return results  # type: ignore[return-value]

    with timer.stage("gram"):
        gram = block.gram(0)
        stacked = block.stacked(0)
    with timer.stage("pursuit"):
        targets = [np.asarray(target, dtype=float) for _, _, target, _ in misses]
        bs = [stacked.T @ target for target in targets]
        budgets = [config.max_reviews for _, _, _, (_, _, config) in misses]
        paths = batch_omp_many(gram, bs, budgets, stacked, targets, exact=exact)
    # Misses sharing a target dedup'd onto one leader pursuit above; their
    # rounding + evaluation shares one apportionment table per step too
    # (the evaluator depends only on (tau, gamma, lam), all pinned by the
    # group key), so only the budget-prefix scans stay per request.
    groups: dict[tuple, list[int]] = {}
    for position, (_, _, target, (_, _, config)) in enumerate(misses):
        groups.setdefault((target.tobytes(), config.lam), []).append(position)
    for members in groups.values():
        budgets_of = [
            misses[position][3][2].max_reviews for position in members
        ]
        leader = members[int(np.argmax(budgets_of))]
        tau, gamma, config = misses[leader][3]
        evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)
        by_budget = _shared_path_selections(
            block, paths[leader], budgets_of, evaluator.item_value, timer
        )
        for position, budget in zip(members, budgets_of):
            index, key = misses[position][0], misses[position][1]
            selection = by_budget[budget]
            results[index] = artifacts.cached_solve(key, lambda s=selection: s)
    return results  # type: ignore[return-value]


def solve_plus_item_many(
    artifacts: SolverArtifacts,
    jobs: Sequence[tuple],
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> list[tuple[int, ...]]:
    """Many Algorithm-1 inner iterations for one item, GEMM-stacked.

    Each job is ``(tau, gamma, other_phis, config, current, literal)``;
    the return mirrors :func:`solve_plus_item` per job (the improved
    selection, or ``current``).  Candidate solves are grouped by the
    Gram block they pose against — jobs may mix ``mu`` values, sync
    counts, and the literal flag — and each group's cache misses run
    through one :func:`batch_omp_many` call.  Byte-identical to the
    sequential calls, same memo cache.
    """
    timer = timer if timer is not None else StageTimer()
    entries = []
    grouped: dict[tuple[int, int], list[int]] = {}
    for index, (tau, gamma, other_phis, config, current, literal) in enumerate(jobs):
        sync_blocks = len(other_phis)
        if sync_blocks == 0:
            block = artifacts.base_block()
        else:
            block = artifacts.plus_block(config.mu, timer=timer)
        gamma_scale = 1.0 if literal else config.lam
        phi_scale = 1.0 if literal else config.mu
        target_parts: list[tuple[float, np.ndarray]] = [
            (1.0, tau),
            (gamma_scale, gamma),
        ]
        for phi in other_phis:
            target_parts.append((phi_scale, phi))
        target = concat_scaled(*target_parts)
        key = (
            "plus", sync_blocks, config.max_reviews, config.mu, literal, exact,
            target.tobytes(),
        )
        evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)

        def evaluate(
            counts: np.ndarray,
            selection: tuple[int, ...],
            *,
            _evaluator: CountsEvaluator = evaluator,
            _phis: Sequence[np.ndarray] = other_phis,
            _mu: float = config.mu,
            _literal: bool = literal,
        ) -> float:
            return _evaluator.plus_value(counts, selection, _phis, _mu, _literal)

        candidate = artifacts.peek(key)
        entries.append(
            [index, block, sync_blocks, target, config, current, evaluate, key,
             candidate]
        )
        if candidate is None:
            grouped.setdefault((id(block), sync_blocks), []).append(len(entries) - 1)

    for group in grouped.values():
        block = entries[group[0]][1]
        sync_blocks = entries[group[0]][2]
        if _screen_active(artifacts.screen, block.num_groups, exact):
            for position in group:
                entry = entries[position]
                entry[8] = artifacts.cached_solve(
                    entry[7],
                    lambda e=entry: _run_regression(
                        e[1], e[2], e[3], e[4].max_reviews, e[6], timer,
                        exact=exact, screen=artifacts.screen,
                    ),
                )
            continue
        with timer.stage("gram"):
            gram = block.gram(sync_blocks)
            stacked = block.stacked(sync_blocks)
        with timer.stage("pursuit"):
            targets = [
                np.asarray(entries[position][3], dtype=float)
                for position in group
            ]
            bs = [stacked.T @ target for target in targets]
            budgets = [entries[position][4].max_reviews for position in group]
            paths = batch_omp_many(
                gram, bs, budgets, stacked, targets, exact=exact
            )
        for position, path in zip(group, paths):
            entry = entries[position]
            selection = _path_to_selection(
                block, path, entry[4].max_reviews, entry[6], timer
            )
            entry[8] = artifacts.cached_solve(entry[7], lambda s=selection: s)

    results: list[tuple[int, ...]] = [() for _ in jobs]
    for index, block, _, _, _, current, evaluate, _, candidate in entries:
        with timer.stage("evaluate"):
            current_objective = evaluate(block.counts_for(current), current)
        if candidate.objective < current_objective - 1e-12:
            results[index] = candidate.selected
        else:
            results[index] = current
    return results
