"""Gram-cached Batch-OMP solver core for the Integer-Regression heuristic.

The continuous stage of :mod:`repro.core.integer_regression` re-runs scipy
``nnls`` from scratch for every atom and recomputes the full ``W^T r``
correlation each iteration.  Batch-OMP (Rubinstein, Zibulevsky & Elad 2008,
"Efficient Implementation of the K-SVD Algorithm using Batch Orthogonal
Matching Pursuit") restructures the pursuit around precomputed quantities:

* ``G = W^T W`` (the Gram matrix) and ``b = W^T y`` are computed once;
  the correlation after adding support S with coefficients c is
  ``alpha = b - G[:, S] c`` — a (q, |S|) product instead of a (D, q) one.
* The support least-squares is solved through an incrementally updated
  Cholesky factor of ``G[S, S]`` (one triangular solve per new atom),
  falling back to scipy ``nnls`` when the unconstrained solve goes
  negative or the support turns numerically rank-deficient.

Byte-identical selections demand one refinement over textbook Batch-OMP.
``alpha`` equals ``W^T r`` *mathematically* but not bitwise, and the
incidence structure of review columns produces exact correlation ties
(two disjoint reviews covering equally many target aspects), so ulp-level
noise can flip the greedy atom choice against the reference; likewise the
unconstrained Cholesky coefficients differ from nnls's in the last ulp,
which flips remainder ties inside the discrete rounding stage.  The
default **exact mode** therefore (a) uses ``alpha`` only as a *screen* —
when the winner's margin over the runner-up is below a conservative
epsilon (or the stopping test is borderline), the reference correlation
vector ``W^T (y - W_S c)`` is recomputed with the reference's own
expressions, bitwise — and (b) always takes the support coefficients from
scipy ``nnls`` exactly as the reference does (they feed the rounding
stage, where their last ulp matters).  ``exact=False`` switches to the
textbook fast path (Gram correlations + Cholesky coefficients) whose
selections may diverge on tie-heavy instances; the core benchmark
measures both.

The Eq.-4 / Algorithm-1 matrices are stacked from two row blocks — the
opinion incidence O and the aspect incidence A — so their Grams compose
without ever forming the stack:

    CompaReSetS      W = [O; lam*A]                G = G_op + lam^2 G_asp
    CompaReSetS+     W = [O; lam*A; mu*A * (n-1)]  G = G_op + (lam^2 + (n-1) mu^2) G_asp

where ``G_op = O^T O`` and ``G_asp = A^T A`` are per-item invariants.  An
alternating CompaReSetS+ sweep therefore only recomputes the target
correlation vector ``b``; the Gram never changes.  :class:`SolverArtifacts`
packages these invariants (dedup groups, unique columns, Gram blocks) per
item so the serving layer can reuse them across requests, and
:class:`CountsEvaluator` scores candidate selections directly from group
counts on the precomputed unique columns instead of re-vectorising Python
``Review`` lists per candidate.

Numerical-faithfulness notes (why selections match the reference):

* the dedup of the ``k``-sync-block stack equals the dedup of the
  1-sync-block stack — replicated identical rows cannot split groups;
* ``b = stacked^T y`` reproduces the reference's first-iteration
  correlations bit-for-bit (same arrays, same BLAS call);
* binary / 3-polarity incidence counts are small integers, so evaluating
  pi/phi as ``U @ counts`` is exact under any summation order; the unary
  scheme accumulates raw per-review signed strengths in selection order to
  preserve the reference's floating-point summation;
* the discrete stage (:func:`~repro.core.integer_regression.round_to_counts`)
  and the candidate argmin are shared with the reference verbatim.

The equivalence test harness (``tests/test_omp_kernel.py``) and the core
benchmark (``benchmarks/bench_core_solver.py``) assert identical selections
against the scipy-``nnls`` reference across schemes and instance shapes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from collections.abc import Callable, Iterator, Sequence

import numpy as np
from scipy.linalg import solve_triangular
from scipy.optimize import nnls

from repro.core.distance import concat_scaled, squared_l2
from repro.core.integer_regression import (
    _CORRELATION_TOLERANCE,
    RegressionSelection,
    counts_to_selection,
    deduplicate_columns,
    round_to_counts,
)
from repro.core.problem import SelectionConfig
from repro.core.vectors import OpinionScheme, VectorSpace, _sigmoid
from repro.data.models import Review

#: The per-stage timing buckets exposed in serving provenance and metrics.
STAGES = ("dedup", "gram", "pursuit", "round", "evaluate")


class StageTimer:
    """Accumulates wall time per solver stage across any number of solves.

    One timer typically spans a whole selector run (all items, all
    sweeps); :meth:`as_millis` snapshots the totals for provenance.
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {stage: 0.0 for stage in STAGES}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        began = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[name] += time.perf_counter() - began

    def as_millis(self) -> dict[str, float]:
        """Stage totals in milliseconds (a fresh dict; safe to keep)."""
        return {stage: seconds * 1e3 for stage, seconds in self.seconds.items()}


class GramBlock:
    """Dedup groups + Gram blocks for one (lam, mu) stacked-matrix family.

    ``with_sync=False`` is the CompaReSetS family ``[O; lam*A]``;
    ``with_sync=True`` additionally carries one ``mu*A`` copy, which fixes
    the dedup for *every* number of sync blocks (identical rows replicate,
    so extra copies can never split a group).  :meth:`stacked` and
    :meth:`gram` materialise the matrix / Gram for a concrete sync-block
    count on demand and memoise per count.
    """

    __slots__ = (
        "lam",
        "mu",
        "with_sync",
        "groups",
        "capacities",
        "column_group",
        "unique_opinion",
        "unique_aspect",
        "gram_op",
        "gram_asp",
        "_dedup_matrix",
        "_sync_rows",
        "_stacks",
        "_grams",
    )

    def __init__(
        self,
        opinion: np.ndarray,
        aspect: np.ndarray,
        lam: float,
        mu: float,
        with_sync: bool,
        timer: StageTimer,
        *,
        grams: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.lam = float(lam)
        self.mu = float(mu)
        self.with_sync = with_sync
        blocks = [opinion, lam * aspect]
        if with_sync:
            blocks.append(mu * aspect)
        with timer.stage("dedup"):
            dedup = deduplicate_columns(np.vstack(blocks))
        self.groups = dedup.groups
        self.capacities = dedup.capacities
        num_columns = opinion.shape[1]
        self.column_group = np.zeros(num_columns, dtype=np.intp)
        for group_id, group in enumerate(self.groups):
            for member in group:
                self.column_group[member] = group_id
        # dedup.matrix rows are [O_u; lam*A_u] (+ mu*A_u when with_sync) —
        # already the exact stacked matrix of the 0/1-sync-block solve.
        self._dedup_matrix = dedup.matrix
        opinion_dim = opinion.shape[0]
        num_aspects = aspect.shape[0]
        self._sync_rows = (
            dedup.matrix[opinion_dim + num_aspects :] if with_sync else None
        )
        firsts = [group[0] for group in self.groups]
        with timer.stage("gram"):
            self.unique_opinion = opinion[:, firsts]
            self.unique_aspect = aspect[:, firsts]
            if grams is not None:
                # Snapshot restore: the Gram blocks were persisted, so the
                # two matmuls are skipped.  They are pure functions of the
                # unique columns, making the injected values verifiable.
                self.gram_op, self.gram_asp = grams
            else:
                self.gram_op = self.unique_opinion.T @ self.unique_opinion
                self.gram_asp = self.unique_aspect.T @ self.unique_aspect
        self._stacks: dict[int, np.ndarray] = {}
        self._grams: dict[int, np.ndarray] = {}

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def stacked(self, sync_blocks: int = 0) -> np.ndarray:
        """The unique-column stacked matrix for ``sync_blocks`` sync copies.

        Byte-identical to deduplicating the full replicated stack: scaling
        rows commutes with selecting first-occurrence columns.
        """
        self._check_sync(sync_blocks)
        cached = self._stacks.get(sync_blocks)
        if cached is not None:
            return cached
        if not self.with_sync or sync_blocks == 1:
            stack = self._dedup_matrix
        else:
            stack = np.vstack(
                [self._dedup_matrix] + [self._sync_rows] * (sync_blocks - 1)
            )
        self._stacks[sync_blocks] = stack
        return stack

    def gram(self, sync_blocks: int = 0) -> np.ndarray:
        """``G_op + (lam^2 + sync_blocks * mu^2) G_asp`` (memoised)."""
        self._check_sync(sync_blocks)
        cached = self._grams.get(sync_blocks)
        if cached is not None:
            return cached
        scale = self.lam * self.lam + sync_blocks * self.mu * self.mu
        gram = self.gram_op + scale * self.gram_asp
        self._grams[sync_blocks] = gram
        return gram

    def counts_for(self, selection: Sequence[int]) -> np.ndarray:
        """Group-count vector nu of a selection of original column indices."""
        counts = np.zeros(self.num_groups, dtype=int)
        for index in selection:
            counts[self.column_group[index]] += 1
        return counts

    def _check_sync(self, sync_blocks: int) -> None:
        if sync_blocks < 0:
            raise ValueError(f"sync_blocks must be >= 0, got {sync_blocks}")
        if sync_blocks > 0 and not self.with_sync:
            raise ValueError("this block was built without a sync row block")


class SolverArtifacts:
    """Reusable per-item invariants of the Batch-OMP kernel.

    Bound to one ``(space, reviews, lam)`` triple: the incidence matrices,
    the eagerly built CompaReSetS :class:`GramBlock`, and — lazily, keyed
    by ``mu`` — the CompaReSetS+ sync blocks (``m`` and the sync-block
    count vary per solve without invalidating anything, matching the
    :class:`~repro.serve.store.ItemStore` artifact key).  Thread-safe:
    the serving layer shares one instance across concurrent solves.
    """

    def __init__(
        self,
        space: VectorSpace,
        reviews: Sequence[Review],
        lam: float,
        *,
        timer: StageTimer | None = None,
        incidence: tuple[np.ndarray, np.ndarray] | None = None,
        base_grams: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.space = space
        self.reviews: tuple[Review, ...] = tuple(reviews)
        self.lam = float(lam)
        if incidence is not None:
            # Snapshot restore: the persisted incidence matrices replace
            # the per-review tokenised-corpus walks, which dominate cold
            # artifact construction.
            self._opinion, self._aspect = incidence
        else:
            self._opinion = space.opinion_matrix(self.reviews)
            self._aspect = space.aspect_matrix(self.reviews)
        self._lock = threading.Lock()
        self._base = GramBlock(
            self._opinion,
            self._aspect,
            self.lam,
            0.0,
            with_sync=False,
            timer=timer if timer is not None else StageTimer(),
            grams=base_grams,
        )
        self._plus: dict[float, GramBlock] = {}
        self._strengths: np.ndarray | None = None
        self._solve_cache: dict[tuple, RegressionSelection] = {}

    def matches(self, space: VectorSpace, reviews: Sequence[Review], lam: float) -> bool:
        """Cheap identity check that these artifacts fit an item solve."""
        return (
            self.space is space
            and self.lam == float(lam)
            and len(self.reviews) == len(reviews)
            and (not self.reviews or self.reviews[0] is reviews[0])
        )

    def base_block(self) -> GramBlock:
        """The CompaReSetS block ``[O; lam*A]``."""
        return self._base

    def plus_block(self, mu: float, timer: StageTimer | None = None) -> GramBlock:
        """The CompaReSetS+ block for ``mu`` (built once, then shared).

        The dedup depends on ``mu`` (two reviews with equal opinions and
        aspects are always grouped, but the rounding is applied to the
        scaled rows), hence the per-``mu`` keying.
        """
        mu = float(mu)
        with self._lock:
            block = self._plus.get(mu)
        if block is None:
            block = GramBlock(
                self._opinion,
                self._aspect,
                self.lam,
                mu,
                with_sync=True,
                timer=timer if timer is not None else StageTimer(),
            )
            with self._lock:
                self._plus.setdefault(mu, block)
                block = self._plus[mu]
        return block

    def cached_solve(
        self, key: tuple, compute: Callable[[], RegressionSelection]
    ) -> RegressionSelection:
        """Memoise a full regression solve keyed by its exact inputs.

        Alternating CompaReSetS+ sweeps converge quickly, so later sweeps
        re-pose byte-identical subproblems (same target vector, same
        parameters); serving repeats them across requests.  The key embeds
        ``target.tobytes()`` plus every parameter that shapes the solve, so
        a hit returns precisely what recomputing would.  The cache is
        dropped wholesale past a size bound rather than evicted piecemeal —
        solves cluster around a handful of targets per item.
        """
        with self._lock:
            hit = self._solve_cache.get(key)
        if hit is not None:
            return hit
        result = compute()
        with self._lock:
            if len(self._solve_cache) >= _SOLVE_CACHE_LIMIT:
                self._solve_cache.clear()
            self._solve_cache.setdefault(key, result)
            return self._solve_cache[key]

    def clear_solve_cache(self) -> None:
        """Drop memoised solve results, keeping the Gram blocks.

        For benchmarking the warm-artifact / cold-solve case; production
        callers never need this (the cache is exact by construction).
        """
        with self._lock:
            self._solve_cache.clear()

    def strength_matrix(self) -> np.ndarray:
        """(z, N) raw signed-strength columns for unary-scale evaluation."""
        with self._lock:
            if self._strengths is None:
                if self.reviews:
                    self._strengths = np.column_stack(
                        [
                            self.space.review_signed_strengths(review)
                            for review in self.reviews
                        ]
                    )
                else:
                    self._strengths = np.zeros((self.space.num_aspects, 0))
            return self._strengths


#: Upper bound on memoised solves per :class:`SolverArtifacts`; the cache
#: clears wholesale when full (see :meth:`SolverArtifacts.cached_solve`).
_SOLVE_CACHE_LIMIT = 1024

#: Relative margin below which a screened atom choice counts as a tie and
#: the exact correlation vector is recomputed.  The fp discrepancy between
#: ``alpha`` and ``W^T r`` is ~D machine epsilons (relative ~1e-13); 1e-9
#: leaves four orders of magnitude of slack, and a false positive merely
#: costs one reference-style mat-vec.
_TIE_MARGIN = 1e-9


def batch_omp_path(
    gram: np.ndarray,
    b: np.ndarray,
    max_atoms: int,
    stacked: np.ndarray,
    target: np.ndarray,
    *,
    exact: bool = True,
) -> list[np.ndarray]:
    """Non-negative Batch-OMP, returning the solution after *every* atom.

    Drop-in counterpart of
    :func:`~repro.core.integer_regression.nomp_path` operating on the
    precomputed Gram ``gram = stacked^T stacked`` and correlation
    ``b = stacked^T target``.  Atom selection uses the Gram-updated
    correlation ``alpha = b - gram[:, S] c`` as a screen.

    ``exact=True`` (the default) guarantees the returned path is
    bit-identical to the reference ``nomp_path(stacked, target, ...)``:
    when the screened winner's margin (or the stopping test) falls below
    :data:`_TIE_MARGIN` the reference correlations are recomputed with the
    reference's own expressions, and the support coefficients always come
    from scipy ``nnls`` (their last ulp feeds the rounding stage).
    ``exact=False`` is textbook Batch-OMP — Gram correlations plus
    incremental-Cholesky coefficients, with nnls only when the
    unconstrained solve goes negative or the support turns numerically
    rank-deficient — whose atom/rounding tie-breaks may diverge from the
    reference on tie-heavy instances.
    """
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise ValueError(f"expected a square Gram matrix, got shape {gram.shape}")
    num_columns = gram.shape[1]
    if num_columns == 0 or max_atoms <= 0:
        return []

    max_steps = min(max_atoms, num_columns)
    target_float = target.astype(float)
    alpha = b.astype(float).copy()
    lower = np.zeros((max_steps, max_steps))
    support: list[int] = []
    in_support = np.zeros(num_columns, dtype=bool)
    cholesky_ok = not exact
    coefficients = np.zeros(0)
    path: list[np.ndarray] = []

    for _ in range(max_steps):
        correlations = alpha.copy()
        correlations[in_support] = -np.inf
        best = int(np.argmax(correlations))
        top = float(correlations[best])
        if exact and support:
            # Screen: the Gram-updated alpha differs from the reference's
            # W^T r by fp noise only, so an unambiguous winner is *the*
            # winner.  On a near-tie (or a borderline stop) recompute the
            # reference correlations bitwise and let them decide.
            correlations[best] = -np.inf
            runner_up = float(correlations.max()) if num_columns > 1 else -np.inf
            margin = _TIE_MARGIN * max(1.0, abs(top), abs(runner_up))
            if top - runner_up <= margin or top <= _CORRELATION_TOLERANCE + margin:
                residual = target_float - stacked[:, support] @ coefficients
                refreshed = stacked.T @ residual
                refreshed[in_support] = -np.inf
                best = int(np.argmax(refreshed))
                top = float(refreshed[best])
        if top <= _CORRELATION_TOLERANCE:
            break
        size = len(support)
        if cholesky_ok:
            pivot = float(gram[best, best])
            if size:
                w = solve_triangular(
                    lower[:size, :size],
                    gram[support, best],
                    lower=True,
                    check_finite=False,
                )
                pivot -= float(w @ w)
            if pivot <= 1e-12 * max(1.0, float(gram[best, best])):
                cholesky_ok = False
            else:
                if size:
                    lower[size, :size] = w
                lower[size, size] = np.sqrt(pivot)
        support.append(best)
        in_support[best] = True
        size += 1

        step: np.ndarray | None = None
        if cholesky_ok:
            factor = lower[:size, :size]
            forward = solve_triangular(
                factor, b[support], lower=True, check_finite=False
            )
            step = solve_triangular(
                factor.T, forward, lower=False, check_finite=False
            )
            if np.any(step < 0.0):
                step = None
        if step is None:
            step, _ = nnls(stacked[:, support], target)
        coefficients = step

        alpha = b - gram[:, support] @ coefficients
        x = np.zeros(num_columns)
        x[support] = coefficients
        path.append(x)
    return path


class CountsEvaluator:
    """True-objective evaluation from group counts on unique columns.

    Replaces the reference's per-candidate rebuild (gather ``Review``
    objects, re-walk their mentions) with two mat-vecs on the block's
    precomputed unique columns.  Binary / 3-polarity counts are exact
    integers, so the mat-vec totals are bit-identical to the review walk;
    the unary scheme re-accumulates raw signed strengths in selection
    order to preserve the reference's floating-point summation order.
    """

    __slots__ = ("artifacts", "block", "tau", "gamma", "lam", "unary")

    def __init__(
        self,
        artifacts: SolverArtifacts,
        block: GramBlock,
        tau: np.ndarray,
        gamma: np.ndarray,
        lam: float,
    ) -> None:
        self.artifacts = artifacts
        self.block = block
        self.tau = tau
        self.gamma = gamma
        self.lam = float(lam)
        self.unary = artifacts.space.scheme is OpinionScheme.UNARY_SCALE

    def vectors(
        self, counts: np.ndarray, selection: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(pi, phi) of the selection, matching :class:`VectorSpace` exactly."""
        weights = np.asarray(counts, dtype=float)
        aspect_counts = self.block.unique_aspect @ weights
        maximum = float(aspect_counts.max()) if aspect_counts.size else 0.0
        phi = aspect_counts if maximum == 0.0 else aspect_counts / maximum
        if self.unary:
            pi = self._unary_pi(selection, aspect_counts)
        else:
            opinion_counts = self.block.unique_opinion @ weights
            pi = opinion_counts if maximum == 0.0 else opinion_counts / maximum
        return pi, phi

    def _unary_pi(
        self, selection: tuple[int, ...], aspect_counts: np.ndarray
    ) -> np.ndarray:
        strengths = self.artifacts.strength_matrix()
        totals = np.zeros(strengths.shape[0])
        for index in selection:
            totals += strengths[:, index]
        mentioned = aspect_counts > 0
        pi = np.zeros(strengths.shape[0])
        pi[mentioned] = _sigmoid(totals[mentioned])
        return pi

    def item_value(self, counts: np.ndarray, selection: tuple[int, ...]) -> float:
        """Eq.-3 contribution — mirrors :func:`~repro.core.objective.item_objective`."""
        pi, phi = self.vectors(counts, selection)
        return squared_l2(self.tau, pi) + self.lam**2 * squared_l2(self.gamma, phi)

    def plus_value(
        self,
        counts: np.ndarray,
        selection: tuple[int, ...],
        other_phis: Sequence[np.ndarray],
        mu: float,
        literal: bool,
    ) -> float:
        """Algorithm-1 acceptance score — mirrors ``_item_plus_objective``."""
        pi, phi = self.vectors(counts, selection)
        pairwise = sum(squared_l2(phi, other) for other in other_phis)
        if literal:
            return squared_l2(self.tau, pi) + squared_l2(self.gamma, phi) + pairwise
        base = squared_l2(self.tau, pi) + self.lam**2 * squared_l2(self.gamma, phi)
        return base + mu**2 * pairwise


def _run_regression(
    block: GramBlock,
    sync_blocks: int,
    target: np.ndarray,
    max_reviews: int,
    evaluate: Callable[[np.ndarray, tuple[int, ...]], float],
    timer: StageTimer,
    allow_empty: bool = False,
    exact: bool = True,
) -> RegressionSelection:
    """The kernel's Integer-Regression driver.

    Mirrors :func:`~repro.core.integer_regression.integer_regression_select`
    candidate for candidate: the same discrete rounding, the same strict
    1e-12 improvement rule, the same empty-set fallback — only the pursuit
    and the evaluation are served from precomputed artifacts.
    """
    with timer.stage("gram"):
        gram = block.gram(sync_blocks)
        stacked = block.stacked(sync_blocks)
    capacities = block.capacities
    target = np.asarray(target, dtype=float)
    with timer.stage("pursuit"):
        b = stacked.T @ target
        path = batch_omp_path(gram, b, max_reviews, stacked, target, exact=exact)

    best: RegressionSelection | None = None
    if allow_empty:
        with timer.stage("evaluate"):
            empty_value = evaluate(np.zeros(block.num_groups, dtype=int), ())
        best = RegressionSelection(selected=(), objective=empty_value)
    seen: set[tuple[int, ...]] = {()}
    for x in path:
        with timer.stage("round"):
            counts = round_to_counts(x, capacities, max_reviews)
            selection = counts_to_selection(counts, block.groups)
        if selection in seen:
            continue
        seen.add(selection)
        with timer.stage("evaluate"):
            objective = evaluate(counts, selection)
        if best is None or objective < best.objective - 1e-12:
            best = RegressionSelection(selected=selection, objective=objective)
    if best is None:
        with timer.stage("evaluate"):
            empty_value = evaluate(np.zeros(block.num_groups, dtype=int), ())
        best = RegressionSelection(selected=(), objective=empty_value)
    return best


def solve_item(
    artifacts: SolverArtifacts,
    tau: np.ndarray,
    gamma: np.ndarray,
    config: SelectionConfig,
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> RegressionSelection:
    """Kernel counterpart of the CompaReSetS per-item solve (Eq. 4)."""
    timer = timer if timer is not None else StageTimer()
    block = artifacts.base_block()
    target = concat_scaled((1.0, tau), (config.lam, gamma))
    key = ("item", config.max_reviews, exact, target.tobytes())

    def compute() -> RegressionSelection:
        evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)
        return _run_regression(
            block, 0, target, config.max_reviews, evaluator.item_value, timer,
            exact=exact,
        )

    return artifacts.cached_solve(key, compute)


def solve_plus_item(
    artifacts: SolverArtifacts,
    tau: np.ndarray,
    gamma: np.ndarray,
    other_phis: Sequence[np.ndarray],
    config: SelectionConfig,
    current: tuple[int, ...],
    literal: bool,
    *,
    timer: StageTimer | None = None,
    exact: bool = True,
) -> tuple[int, ...]:
    """Kernel counterpart of one Algorithm-1 inner iteration for item i.

    Returns the improved selection, or ``current`` when the regression
    candidate does not strictly improve the acceptance score.  With no
    other items the sync row block vanishes and the solve runs on the
    CompaReSetS base block, exactly like ``regression_columns(...,
    sync_blocks=0)`` does in the reference.
    """
    timer = timer if timer is not None else StageTimer()
    sync_blocks = len(other_phis)
    if sync_blocks == 0:
        block = artifacts.base_block()
    else:
        block = artifacts.plus_block(config.mu, timer=timer)
    gamma_scale = 1.0 if literal else config.lam
    phi_scale = 1.0 if literal else config.mu
    target_parts: list[tuple[float, np.ndarray]] = [
        (1.0, tau),
        (gamma_scale, gamma),
    ]
    for phi in other_phis:
        target_parts.append((phi_scale, phi))
    target = concat_scaled(*target_parts)
    evaluator = CountsEvaluator(artifacts, block, tau, gamma, config.lam)

    def evaluate(counts: np.ndarray, selection: tuple[int, ...]) -> float:
        return evaluator.plus_value(counts, selection, other_phis, config.mu, literal)

    # The target blocks (with mu / literal in the key) pin down the other
    # items' phis, so the memo key fully determines the candidate solve.
    key = (
        "plus", sync_blocks, config.max_reviews, config.mu, literal, exact,
        target.tobytes(),
    )
    candidate = artifacts.cached_solve(
        key,
        lambda: _run_regression(
            block, sync_blocks, target, config.max_reviews, evaluate, timer,
            exact=exact,
        ),
    )
    with timer.stage("evaluate"):
        current_objective = evaluate(block.counts_for(current), current)
    if candidate.objective < current_objective - 1e-12:
        return candidate.selected
    return current
