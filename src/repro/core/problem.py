"""Selection problem configuration.

Bundles the knobs shared by every selector: the review budget m, the
trade-off factors lambda (opinion vs aspect, Eq. 1) and mu (cross-item
synchronisation, Eq. 5), and the opinion scheme.  The paper's tuned values
are lambda = 1 and mu = 0.1 (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.vectors import OpinionScheme


@dataclass(frozen=True, slots=True)
class SelectionConfig:
    """Parameters of Problems 1 and 2.

    Attributes
    ----------
    max_reviews:
        m — the per-item review budget (|S_i| <= m).
    lam:
        lambda >= 0 — weight of the aspect-distribution term against Gamma.
    mu:
        mu >= 0 — weight of the pairwise cross-item term (CompaReSetS+ only).
    scheme:
        Opinion encoding (binary / 3-polarity / unary-scale).
    sweeps:
        Number of alternating passes Algorithm 1 makes over the items.
        The paper uses a single pass; more sweeps may refine further.
    """

    max_reviews: int = 3
    lam: float = 1.0
    mu: float = 0.1
    scheme: OpinionScheme = field(default=OpinionScheme.BINARY)
    sweeps: int = 1

    def __post_init__(self) -> None:
        if self.max_reviews < 1:
            raise ValueError(f"max_reviews must be >= 1, got {self.max_reviews}")
        if self.lam < 0:
            raise ValueError(f"lam must be >= 0, got {self.lam}")
        if self.mu < 0:
            raise ValueError(f"mu must be >= 0, got {self.mu}")
        if self.sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {self.sweeps}")

    def with_(self, **changes) -> "SelectionConfig":
        """A copy with the given fields replaced (sweep helpers)."""
        return replace(self, **changes)
