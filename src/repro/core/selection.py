"""Selector protocol, selection results, and the algorithm registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.instances import ComparisonInstance
from repro.data.models import Review
from repro.core.problem import SelectionConfig
from repro.core.vectors import VectorSpace


@dataclass(frozen=True, slots=True)
class SelectionResult:
    """Selected review sets S_1..S_n for one problem instance.

    ``selections[i]`` holds sorted indices into ``instance.reviews[i]``.
    ``degraded`` marks a substitute produced by a resilience policy (a
    cheap baseline stood in after the intended selector failed or timed
    out); measurements can filter or flag such results.  ``timings``
    optionally carries per-stage solver wall times in milliseconds
    (dedup / gram / screen / pursuit / round / evaluate — see
    :mod:`repro.core.omp_kernel`); ``counters`` likewise carries the
    solver's integer event counts (candidate pre-screen sizes,
    recheck/promotion totals).  Both are diagnostic metadata and
    excluded from equality.
    """

    instance: ComparisonInstance
    selections: tuple[tuple[int, ...], ...]
    algorithm: str
    degraded: bool = False
    timings: dict[str, float] | None = field(default=None, compare=False)
    counters: dict[str, int] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if len(self.selections) != self.instance.num_items:
            raise ValueError(
                f"{len(self.selections)} selections for "
                f"{self.instance.num_items} items"
            )
        for item_index, (selection, reviews) in enumerate(
            zip(self.selections, self.instance.reviews)
        ):
            if len(set(selection)) != len(selection):
                raise ValueError(f"duplicate review indices for item {item_index}")
            for review_index in selection:
                if not (0 <= review_index < len(reviews)):
                    raise ValueError(
                        f"review index {review_index} out of range for item "
                        f"{item_index} with {len(reviews)} reviews"
                    )

    def selected_reviews(self, item_index: int) -> tuple[Review, ...]:
        """The selected review objects S_i of item ``item_index``."""
        reviews = self.instance.reviews[item_index]
        return tuple(reviews[j] for j in self.selections[item_index])

    def all_selected(self) -> tuple[tuple[Review, ...], ...]:
        """S_1..S_n as review objects."""
        return tuple(
            self.selected_reviews(i) for i in range(self.instance.num_items)
        )

    def restricted_to_items(self, item_indices: list[int]) -> "SelectionResult":
        """Keep only the given item positions (target must be position 0)."""
        if not item_indices or item_indices[0] != 0:
            raise ValueError("restriction must start with the target item (index 0)")
        product_ids = [self.instance.products[i].product_id for i in item_indices]
        return SelectionResult(
            instance=self.instance.restricted_to(product_ids),
            selections=tuple(self.selections[i] for i in item_indices),
            algorithm=self.algorithm,
            degraded=self.degraded,
            timings=self.timings,
            counters=self.counters,
        )


@runtime_checkable
class Selector(Protocol):
    """A review-set selection algorithm."""

    name: str

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Choose at most ``config.max_reviews`` reviews per item."""
        ...


def build_space(instance: ComparisonInstance, config: SelectionConfig) -> VectorSpace:
    """The shared vector space of an instance under ``config``'s scheme."""
    return VectorSpace(instance.aspect_vocabulary(), config.scheme)


# Populated lazily to avoid a circular import with the selector modules.
SELECTORS: dict[str, type] = {}


def register_selector(cls: type) -> type:
    """Class decorator adding a selector type to :data:`SELECTORS`."""
    SELECTORS[cls.name] = cls
    return cls


def make_selector(name: str, **kwargs) -> Selector:
    """Instantiate a registered selector by its paper name.

    >>> make_selector("Random").name
    'Random'
    """
    try:
        cls = SELECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; available: {sorted(SELECTORS)}"
        ) from None
    return cls(**kwargs)
