"""Opinion and aspect distribution vectors pi(S) and phi(S).

Normalisation follows the paper's Working Example 1: both vectors are
per-review incidence *counts* divided by the maximum per-aspect frequency
in the set (denominator 6 for R_1 with aspect counts {6,4,4,0,0};
denominator 3 for S_1 = {r5, r6, r7}).  An empty or mention-free set maps
to the zero vector.

Three opinion schemes (§4.2.3):

* ``BINARY`` (default) — pi(S) in R_+^{2z}: per-aspect positive and
  negative incidence counts, normalised by the max aspect count.
* ``THREE_POLARITY`` — pi(S) in R_+^{3z}: adds a neutral channel.
* ``UNARY_SCALE`` — pi(S) in R_+^{z}: sigmoid of the summed signed
  sentiment per aspect (0 for unmentioned aspects).  Note the set-level
  sigmoid is *not* a linear function of the selected reviews, so the
  integer-regression proxy degrades here — exactly the regime where the
  paper reports CRS falling below Random (Table 4).
"""

from __future__ import annotations

import enum
from functools import cached_property
from collections.abc import Iterable, Sequence

import numpy as np

from repro.data.models import Review


class OpinionScheme(enum.Enum):
    """How per-aspect opinions are encoded in pi(S)."""

    BINARY = "binary"
    THREE_POLARITY = "3-polarity"
    UNARY_SCALE = "unary-scale"

    def opinion_dim(self, num_aspects: int) -> int:
        """Dimension of the opinion vector for ``num_aspects`` aspects."""
        if self is OpinionScheme.BINARY:
            return 2 * num_aspects
        if self is OpinionScheme.THREE_POLARITY:
            return 3 * num_aspects
        return num_aspects


def _sigmoid(value: float | np.ndarray) -> float | np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.asarray(value, dtype=float)))


class VectorSpace:
    """A fixed aspect ordering + opinion scheme for one problem instance.

    All vectors produced by one ``VectorSpace`` are mutually comparable.
    Reviews may mention aspects outside the space; those mentions are
    ignored (the paper's universal aspect set A is fixed per experiment).
    """

    def __init__(
        self,
        aspects: Sequence[str],
        scheme: OpinionScheme = OpinionScheme.BINARY,
    ) -> None:
        if len(set(aspects)) != len(aspects):
            raise ValueError("aspect list contains duplicates")
        self.aspects: tuple[str, ...] = tuple(aspects)
        self.scheme = scheme
        self._index: dict[str, int] = {a: i for i, a in enumerate(self.aspects)}
        # Reviews are frozen dataclasses and a VectorSpace lives per
        # instance, so per-review incidences are safe to memoise; the
        # candidate-scoring loops recompute them thousands of times.
        self._aspect_cache: dict[str, np.ndarray] = {}
        self._opinion_cache: dict[str, np.ndarray] = {}
        self._strength_cache: dict[str, np.ndarray] = {}
        # Set-level pi/phi of *tuples* of reviews (an item's full review
        # collection is a tuple; candidate selections are lists and skip
        # this).  tau_i / Gamma are per-item invariants recomputed on
        # every selector call otherwise — at hundreds of reviews per item
        # that walk dominates warm serving requests.
        self._set_cache: dict[tuple[str, ...], np.ndarray] = {}

    @property
    def num_aspects(self) -> int:
        """z — the size of the universal aspect set."""
        return len(self.aspects)

    def covers(self, aspects: Iterable[str]) -> bool:
        """Whether every aspect in ``aspects`` is in this vocabulary.

        The delta-patch path uses this to decide whether appended reviews
        would change an instance's aspect vocabulary (and hence every
        vector's dimensions) — if so, the artifacts must be rebuilt cold
        rather than extended.
        """
        return all(aspect in self._index for aspect in aspects)

    @cached_property
    def opinion_dim(self) -> int:
        """Dimension of pi vectors under the configured scheme."""
        return self.scheme.opinion_dim(self.num_aspects)

    # -- per-review incidence ------------------------------------------------

    def review_aspect_incidence(self, review: Review) -> np.ndarray:
        """Binary z-vector: 1 where ``review`` mentions the aspect.

        Cached per review id; callers must not mutate the returned array.
        """
        cached = self._aspect_cache.get(review.review_id)
        if cached is not None:
            return cached
        incidence = np.zeros(self.num_aspects)
        for mention in review.mentions:
            position = self._index.get(mention.aspect)
            if position is not None:
                incidence[position] = 1.0
        self._aspect_cache[review.review_id] = incidence
        return incidence

    def review_opinion_incidence(self, review: Review) -> np.ndarray:
        """Per-review opinion block used both for counting and as a W column.

        Binary: [pos_0, neg_0, pos_1, neg_1, ...] incidence (interleaved by
        aspect).  3-polarity adds a neutral slot per aspect.  Unary-scale
        uses sigmoid(signed strength) for mentioned aspects — a linear
        proxy for the non-linear set-level score.

        Cached per review id; callers must not mutate the returned array.
        """
        cached = self._opinion_cache.get(review.review_id)
        if cached is not None:
            return cached
        incidence = np.zeros(self.opinion_dim)
        if self.scheme is OpinionScheme.UNARY_SCALE:
            for aspect in {m.aspect for m in review.mentions}:
                position = self._index.get(aspect)
                if position is not None:
                    incidence[position] = float(
                        _sigmoid(review.signed_strength_for(aspect))
                    )
            self._opinion_cache[review.review_id] = incidence
            return incidence

        slots = 2 if self.scheme is OpinionScheme.BINARY else 3
        for aspect in {m.aspect for m in review.mentions}:
            position = self._index.get(aspect)
            if position is None:
                continue
            sign = review.sentiment_for(aspect)
            if sign > 0:
                incidence[slots * position] = 1.0
            elif sign < 0:
                incidence[slots * position + 1] = 1.0
            elif self.scheme is OpinionScheme.THREE_POLARITY:
                incidence[slots * position + 2] = 1.0
            # BINARY drops neutral mentions from pi; they still count in phi.
        self._opinion_cache[review.review_id] = incidence
        return incidence

    def review_signed_strengths(self, review: Review) -> np.ndarray:
        """Raw summed signed strength per aspect (z-vector, 0 if unmentioned).

        The unary-scale set-level pi applies the sigmoid to the *sum* of
        these per-review totals (see :meth:`opinion_vector`); the solver
        kernel accumulates the cached columns and applies the sigmoid at
        the end, reproducing that summation exactly.

        Cached per review id; callers must not mutate the returned array.
        """
        cached = self._strength_cache.get(review.review_id)
        if cached is not None:
            return cached
        totals = np.zeros(self.num_aspects)
        for aspect in {m.aspect for m in review.mentions}:
            position = self._index.get(aspect)
            if position is not None:
                totals[position] = review.signed_strength_for(aspect)
        self._strength_cache[review.review_id] = totals
        return totals

    # -- matrices -------------------------------------------------------------

    def aspect_matrix(self, reviews: Sequence[Review]) -> np.ndarray:
        """(z, N) matrix whose columns are per-review aspect incidences."""
        if not reviews:
            return np.zeros((self.num_aspects, 0))
        return np.column_stack([self.review_aspect_incidence(r) for r in reviews])

    def opinion_matrix(self, reviews: Sequence[Review]) -> np.ndarray:
        """(opinion_dim, N) matrix of per-review opinion blocks."""
        if not reviews:
            return np.zeros((self.opinion_dim, 0))
        return np.column_stack([self.review_opinion_incidence(r) for r in reviews])

    # -- set-level distributions ----------------------------------------------

    def _max_aspect_count(self, reviews: Sequence[Review]) -> float:
        counts = np.zeros(self.num_aspects)
        for review in reviews:
            counts += self.review_aspect_incidence(review)
        maximum = float(counts.max()) if counts.size else 0.0
        return maximum

    def _set_cache_key(
        self, kind: str, reviews: Iterable[Review]
    ) -> tuple[str, ...] | None:
        """A memo key for set-level vectors — tuples of reviews only.

        Review ids are unique within a corpus, so the id sequence fully
        determines the vector.  Callers must not mutate cached results
        (the same contract as the per-review incidence caches).
        """
        if isinstance(reviews, tuple) and reviews:
            return (kind, *[review.review_id for review in reviews])
        return None

    def aspect_vector(self, reviews: Iterable[Review]) -> np.ndarray:
        """phi(S): per-aspect incidence counts / max aspect count.

        Cached when ``reviews`` is a tuple (an item's full collection);
        callers must not mutate the returned array.
        """
        key = self._set_cache_key("phi", reviews)
        if key is not None:
            cached = self._set_cache.get(key)
            if cached is not None:
                return cached
        reviews = list(reviews)
        counts = np.zeros(self.num_aspects)
        for review in reviews:
            counts += self.review_aspect_incidence(review)
        maximum = float(counts.max()) if counts.size else 0.0
        result = counts if maximum == 0.0 else counts / maximum
        if key is not None:
            self._set_cache[key] = result
        return result

    def opinion_vector(self, reviews: Iterable[Review]) -> np.ndarray:
        """pi(S): opinion distribution of the review set.

        Binary / 3-polarity: opinion incidence counts normalised by the max
        *aspect* count (Working Example 1).  Unary-scale: sigmoid of the
        summed signed sentiment per mentioned aspect.

        Cached when ``reviews`` is a tuple (an item's full collection);
        callers must not mutate the returned array.
        """
        key = self._set_cache_key("pi", reviews)
        if key is not None:
            cached = self._set_cache.get(key)
            if cached is not None:
                return cached
        result = self._opinion_vector_uncached(reviews)
        if key is not None:
            self._set_cache[key] = result
        return result

    def _opinion_vector_uncached(self, reviews: Iterable[Review]) -> np.ndarray:
        reviews = list(reviews)
        if self.scheme is OpinionScheme.UNARY_SCALE:
            totals = np.zeros(self.num_aspects)
            mentioned = np.zeros(self.num_aspects, dtype=bool)
            for review in reviews:
                for aspect in {m.aspect for m in review.mentions}:
                    position = self._index.get(aspect)
                    if position is not None:
                        mentioned[position] = True
                        totals[position] += review.signed_strength_for(aspect)
            result = np.zeros(self.num_aspects)
            result[mentioned] = _sigmoid(totals[mentioned])
            return result

        counts = np.zeros(self.opinion_dim)
        for review in reviews:
            counts += self.review_opinion_incidence(review)
        maximum = self._max_aspect_count(reviews)
        if maximum == 0.0:
            return counts
        return counts / maximum

    def __repr__(self) -> str:
        return f"VectorSpace(z={self.num_aspects}, scheme={self.scheme.value!r})"


def regression_columns(
    space: VectorSpace,
    reviews: Sequence[Review],
    lam: float,
    mu: float = 0.0,
    sync_blocks: int = 0,
) -> np.ndarray:
    """Stacked per-review incidence columns for the Eq.-4 regression.

    Row layout: the opinion incidence block, the lambda-scaled aspect
    incidence block, then ``sync_blocks`` copies of the mu-scaled aspect
    block (one per other item in the Algorithm-1 target Upsilon).  With
    ``sync_blocks=0`` this is exactly the CompaReSetS matrix of Eq. 4;
    CompaReSetS+ and the serving :class:`~repro.serve.store.ItemStore`
    share this single construction path.
    """
    if sync_blocks < 0:
        raise ValueError(f"sync_blocks must be >= 0, got {sync_blocks}")
    opinion = space.opinion_matrix(reviews)
    aspect = space.aspect_matrix(reviews)
    blocks = [opinion, lam * aspect]
    blocks.extend([mu * aspect] * sync_blocks)
    return np.vstack(blocks)
