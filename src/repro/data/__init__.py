"""Data substrate: review/product models, corpora, synthetic generation, I/O.

The paper uses the public Amazon Product Review Dataset with "also bought"
metadata.  That dataset is not redistributable here, so
:mod:`repro.data.synthetic` generates corpora with the same statistical
shape (Table 2) and the same couplings the algorithms rely on.  All other
modules are dataset-agnostic: point :func:`repro.data.io.load_corpus` at a
JSONL export of the real data and everything downstream works unchanged.
"""

from repro.data.amazon import convert_amazon
from repro.data.corpus import Corpus, CorpusStats
from repro.data.instances import ComparisonInstance, build_instance, build_instances
from repro.data.io import load_corpus, save_corpus
from repro.data.models import AspectMention, Product, Review
from repro.data.statistics import CorpusAnalysis, analyze_corpus, render_analysis
from repro.data.synthetic import (
    CategoryProfile,
    SyntheticCorpusBuilder,
    generate_corpus,
    surface_stem_aliases,
)

__all__ = [
    "AspectMention",
    "CategoryProfile",
    "ComparisonInstance",
    "Corpus",
    "CorpusAnalysis",
    "CorpusStats",
    "Product",
    "Review",
    "SyntheticCorpusBuilder",
    "analyze_corpus",
    "build_instance",
    "build_instances",
    "convert_amazon",
    "generate_corpus",
    "load_corpus",
    "render_analysis",
    "save_corpus",
    "surface_stem_aliases",
]
