"""Converters for the McAuley Amazon Product Review Dataset format.

The paper evaluates on http://jmcauley.ucsd.edu/data/amazon/ — two JSON
files per category:

* a *reviews* file: one JSON object per line with ``reviewerID``,
  ``asin``, ``reviewText``, ``overall`` (star rating), ``summary``, ...;
* a *metadata* file: one JSON object per line with ``asin``, ``title``,
  ``related`` (containing ``also_bought`` lists), ``categories``, ...
  (the 5-core releases use strict JSON; some older dumps are Python
  literals — both are accepted here).

:func:`convert_amazon` turns the pair into a :class:`repro.data.Corpus`
(optionally annotating reviews from raw text via the mining pipeline), so
the full reproduction can run on the real data once downloaded.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from collections.abc import Iterator

from repro.data.corpus import Corpus
from repro.data.models import Product, Review
from repro.text.aspects import AspectVocabulary, mine_aspects
from repro.text.sentiment import annotate_corpus


def _parse_line(line: str, path: Path, line_number: int) -> dict:
    """Parse one record: strict JSON first, Python-literal fallback."""
    try:
        value = json.loads(line)
    except json.JSONDecodeError:
        try:
            value = ast.literal_eval(line)
        except (ValueError, SyntaxError) as exc:
            raise ValueError(
                f"{path}:{line_number}: neither JSON nor a Python literal"
            ) from exc
    if not isinstance(value, dict):
        raise ValueError(f"{path}:{line_number}: record is not an object")
    return value


def iter_records(path: str | Path) -> Iterator[dict]:
    """Yield records from a JSON-lines Amazon dump (strict or loose)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                yield _parse_line(line, path, line_number)


def load_metadata(path: str | Path, category: str = "Amazon") -> list[Product]:
    """Parse a metadata dump into products with "also bought" lists."""
    products: list[Product] = []
    seen: set[str] = set()
    for record in iter_records(path):
        asin = record.get("asin")
        if not asin or asin in seen:
            continue
        seen.add(asin)
        related = record.get("related") or {}
        also_bought = tuple(
            pid for pid in related.get("also_bought", ()) if pid != asin
        )
        products.append(
            Product(
                product_id=asin,
                title=record.get("title") or asin,
                category=category,
                also_bought=also_bought,
            )
        )
    return products


def load_reviews(path: str | Path, known_products: set[str]) -> list[Review]:
    """Parse a reviews dump, keeping reviews of ``known_products`` only."""
    reviews: list[Review] = []
    seen: set[str] = set()
    for index, record in enumerate(iter_records(path)):
        asin = record.get("asin")
        reviewer = record.get("reviewerID")
        if not asin or asin not in known_products or not reviewer:
            continue
        review_id = f"{reviewer}::{asin}::{index}"
        if review_id in seen:
            continue
        seen.add(review_id)
        text = record.get("reviewText") or record.get("summary") or ""
        rating = float(record.get("overall", 3.0))
        reviews.append(
            Review(
                review_id=review_id,
                product_id=asin,
                reviewer_id=reviewer,
                rating=min(max(rating, 0.0), 5.0),
                text=text,
            )
        )
    return reviews


def convert_amazon(
    reviews_path: str | Path,
    metadata_path: str | Path,
    category: str = "Amazon",
    annotate: bool = True,
    vocabulary: AspectVocabulary | None = None,
    candidate_pool: int = 2000,
    keep: int = 500,
    min_document_frequency: int = 2,
) -> Corpus:
    """Build a :class:`Corpus` from an Amazon reviews + metadata dump pair.

    With ``annotate=True`` (default) reviews get (aspect, opinion)
    annotations mined from their raw text with the paper's frequency-based
    recipe (top-``candidate_pool`` terms -> rating-correlation ranked ->
    top-``keep``); pass a pre-built ``vocabulary`` to skip mining.
    """
    products = load_metadata(metadata_path, category=category)
    known = {p.product_id for p in products}
    reviews = load_reviews(reviews_path, known)
    corpus = Corpus(name=category, products=products, reviews=reviews)
    if not annotate:
        return corpus
    if vocabulary is None:
        vocabulary = mine_aspects(
            corpus.reviews,
            candidate_pool=candidate_pool,
            keep=keep,
            min_document_frequency=min_document_frequency,
        )
    return annotate_corpus(corpus, vocabulary)
