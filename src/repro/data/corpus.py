"""Corpus container and Table-2 style statistics."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.data.models import Product, Review


@dataclass(frozen=True, slots=True)
class CorpusStats:
    """Summary statistics matching the rows of the paper's Table 2."""

    name: str
    num_products: int
    num_reviewers: int
    num_reviews: int
    num_target_products: int
    avg_comparison_products: float
    avg_reviews_per_product: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (label, value) rows in Table 2's order."""
        return [
            ("#Product", f"{self.num_products:,}"),
            ("#Reviewer", f"{self.num_reviewers:,}"),
            ("#Review", f"{self.num_reviews:,}"),
            ("#Target Product", f"{self.num_target_products:,}"),
            ("Avg. #Comparison Product", f"{self.avg_comparison_products:.2f}"),
            ("Avg. #Review per Product", f"{self.avg_reviews_per_product:.2f}"),
        ]


class Corpus:
    """An in-memory review corpus indexed by product.

    Invariants enforced at construction time:

    * review ids and product ids are unique;
    * every review's ``product_id`` refers to a known product;
    * ``also_bought`` entries pointing outside the corpus are kept (Amazon
      metadata routinely references unseen products) but are excluded from
      comparison-instance construction.
    """

    def __init__(self, name: str, products: Iterable[Product], reviews: Iterable[Review]) -> None:
        self.name = name
        self._products: dict[str, Product] = {}
        for product in products:
            if product.product_id in self._products:
                raise ValueError(f"duplicate product id {product.product_id!r}")
            self._products[product.product_id] = product

        self._reviews: dict[str, Review] = {}
        self._reviews_by_product: dict[str, list[Review]] = {
            pid: [] for pid in self._products
        }
        for review in reviews:
            if review.review_id in self._reviews:
                raise ValueError(f"duplicate review id {review.review_id!r}")
            if review.product_id not in self._products:
                raise ValueError(
                    f"review {review.review_id!r} references unknown product "
                    f"{review.product_id!r}"
                )
            self._reviews[review.review_id] = review
            self._reviews_by_product[review.product_id].append(review)
        self._reviews_tuple: tuple[Review, ...] | None = None

    # -- access ----------------------------------------------------------

    @property
    def products(self) -> Sequence[Product]:
        return tuple(self._products.values())

    @property
    def reviews(self) -> Sequence[Review]:
        if self._reviews_tuple is None:
            self._reviews_tuple = tuple(self._reviews.values())
        return self._reviews_tuple

    def with_appended_reviews(self, reviews: Sequence[Review]) -> "Corpus":
        """A successor corpus with ``reviews`` appended (delta ingest).

        Shares the product table and the untouched per-product review
        lists with this corpus instead of re-validating and re-indexing
        every existing review, so a delta costs O(products + delta)
        structure work rather than O(reviews).  Appended reviews keep
        insertion order: the successor's ``reviews_of`` for a touched
        product is the old sequence followed by the delta entries, which
        is exactly what the incremental artifact path appends to.

        The same invariants as ``__init__`` are enforced for the *new*
        reviews only; existing entries are immutable and already valid.
        """
        successor = object.__new__(Corpus)
        successor.name = self.name
        successor._products = self._products
        merged = dict(self._reviews)
        by_product = dict(self._reviews_by_product)
        touched: set[str] = set()
        for review in reviews:
            if review.review_id in merged:
                raise ValueError(f"duplicate review id {review.review_id!r}")
            if review.product_id not in self._products:
                raise ValueError(
                    f"review {review.review_id!r} references unknown product "
                    f"{review.product_id!r}"
                )
            merged[review.review_id] = review
            if review.product_id not in touched:
                by_product[review.product_id] = list(by_product[review.product_id])
                touched.add(review.product_id)
            by_product[review.product_id].append(review)
        successor._reviews = merged
        successor._reviews_by_product = by_product
        successor._reviews_tuple = None
        return successor

    def product(self, product_id: str) -> Product:
        """Look up a product by id (KeyError if absent)."""
        return self._products[product_id]

    def has_product(self, product_id: str) -> bool:
        return product_id in self._products

    def review(self, review_id: str) -> Review:
        """Look up a review by id (KeyError if absent)."""
        return self._reviews[review_id]

    def reviews_of(self, product_id: str) -> Sequence[Review]:
        """All reviews of ``product_id``, in insertion order."""
        return tuple(self._reviews_by_product[product_id])

    def aspect_vocabulary(self) -> list[str]:
        """Sorted list of all aspects mentioned anywhere in the corpus."""
        aspects: set[str] = set()
        for review in self._reviews.values():
            aspects.update(review.aspects)
        return sorted(aspects)

    def __len__(self) -> int:
        return len(self._products)

    def __repr__(self) -> str:
        return (
            f"Corpus(name={self.name!r}, products={len(self._products)}, "
            f"reviews={len(self._reviews)})"
        )

    # -- statistics -------------------------------------------------------

    def stats(self, min_reviews_for_target: int = 1) -> CorpusStats:
        """Compute Table-2 statistics.

        A *target product* is one with at least ``min_reviews_for_target``
        reviews and a non-empty in-corpus comparison list; the averages are
        taken over those targets / all products respectively, matching the
        paper's reporting.
        """
        reviewers = {review.reviewer_id for review in self._reviews.values()}
        comparison_counts: list[int] = []
        for product in self._products.values():
            in_corpus = [pid for pid in product.also_bought if pid in self._products]
            has_reviews = len(self._reviews_by_product[product.product_id]) >= min_reviews_for_target
            if in_corpus and has_reviews:
                comparison_counts.append(len(in_corpus))
        num_targets = len(comparison_counts)
        avg_comparisons = (
            sum(comparison_counts) / num_targets if num_targets else 0.0
        )
        avg_reviews = len(self._reviews) / len(self._products) if self._products else 0.0
        return CorpusStats(
            name=self.name,
            num_products=len(self._products),
            num_reviewers=len(reviewers),
            num_reviews=len(self._reviews),
            num_target_products=num_targets,
            avg_comparison_products=avg_comparisons,
            avg_reviews_per_product=avg_reviews,
        )
