"""Comparison-problem instances: one target item plus its comparative items.

The paper's unit of work is a *problem instance*: a target product p_1 and
comparative products p_2..p_n drawn from its "also bought" list, each with
their review sets.  Every target product in a corpus yields an independent
instance (solvable in parallel); this module extracts them.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.data.corpus import Corpus
from repro.data.models import Product, Review


@dataclass(frozen=True, slots=True)
class ComparisonInstance:
    """One selection problem: target item first, then comparative items.

    ``products[0]`` is the target item p_1; ``reviews[i]`` holds the review
    collection R_i of ``products[i]``.
    """

    products: tuple[Product, ...]
    reviews: tuple[tuple[Review, ...], ...]

    def __post_init__(self) -> None:
        if len(self.products) < 1:
            raise ValueError("an instance needs at least the target item")
        if len(self.products) != len(self.reviews):
            raise ValueError(
                f"{len(self.products)} products but {len(self.reviews)} review sets"
            )
        seen: set[str] = set()
        for product in self.products:
            if product.product_id in seen:
                raise ValueError(f"duplicate product {product.product_id!r} in instance")
            seen.add(product.product_id)
        for product, review_set in zip(self.products, self.reviews):
            for review in review_set:
                if review.product_id != product.product_id:
                    raise ValueError(
                        f"review {review.review_id!r} belongs to "
                        f"{review.product_id!r}, not {product.product_id!r}"
                    )

    @property
    def target(self) -> Product:
        """The target item p_1."""
        return self.products[0]

    @property
    def comparatives(self) -> tuple[Product, ...]:
        """The comparative items p_2..p_n."""
        return self.products[1:]

    @property
    def num_items(self) -> int:
        return len(self.products)

    def aspect_vocabulary(self) -> list[str]:
        """Sorted aspects mentioned by any review in this instance."""
        aspects: set[str] = set()
        for review_set in self.reviews:
            for review in review_set:
                aspects.update(review.aspects)
        return sorted(aspects)

    def restricted_to(self, product_ids: Sequence[str]) -> "ComparisonInstance":
        """A sub-instance containing only ``product_ids`` (target must stay).

        Order of ``product_ids`` is preserved; the target item must be the
        first entry, mirroring how TargetHkS narrows the comparison list.
        """
        if not product_ids or product_ids[0] != self.target.product_id:
            raise ValueError("restricted instance must start with the target item")
        index = {product.product_id: i for i, product in enumerate(self.products)}
        missing = [pid for pid in product_ids if pid not in index]
        if missing:
            raise ValueError(f"unknown products in restriction: {missing}")
        positions = [index[pid] for pid in product_ids]
        return ComparisonInstance(
            products=tuple(self.products[i] for i in positions),
            reviews=tuple(self.reviews[i] for i in positions),
        )


def build_instance(
    corpus: Corpus,
    target_id: str,
    max_comparisons: int | None = None,
    min_reviews: int = 1,
) -> ComparisonInstance | None:
    """Build the instance anchored at ``target_id``; None if not viable.

    Comparative items come from the target's in-corpus "also bought" list,
    keeping only products with at least ``min_reviews`` reviews, truncated
    to ``max_comparisons`` in list order.  Returns None when the target has
    too few reviews or no usable comparatives.
    """
    target = corpus.product(target_id)
    target_reviews = corpus.reviews_of(target_id)
    if len(target_reviews) < min_reviews:
        return None
    comparative_ids = [
        pid
        for pid in target.also_bought
        if corpus.has_product(pid) and len(corpus.reviews_of(pid)) >= min_reviews
    ]
    if max_comparisons is not None:
        comparative_ids = comparative_ids[:max_comparisons]
    if not comparative_ids:
        return None
    products = [target] + [corpus.product(pid) for pid in comparative_ids]
    reviews = [tuple(target_reviews)] + [
        tuple(corpus.reviews_of(pid)) for pid in comparative_ids
    ]
    return ComparisonInstance(products=tuple(products), reviews=tuple(reviews))


def build_instances(
    corpus: Corpus,
    max_instances: int | None = None,
    max_comparisons: int | None = None,
    min_reviews: int = 1,
) -> Iterator[ComparisonInstance]:
    """Yield instances for every viable target product in corpus order."""
    yielded = 0
    for product in corpus.products:
        if max_instances is not None and yielded >= max_instances:
            return
        instance = build_instance(
            corpus,
            product.product_id,
            max_comparisons=max_comparisons,
            min_reviews=min_reviews,
        )
        if instance is not None:
            yielded += 1
            yield instance
