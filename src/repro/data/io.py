"""JSONL serialisation for corpora.

Format: one JSON object per line.  The first line is a header record
(``{"kind": "header", ...}``), followed by product records and review
records.  The format round-trips everything in the data model and is easy
to produce from the real Amazon dataset with a short conversion script.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Product, Review

_FORMAT_VERSION = 1


def save_corpus(corpus: Corpus, path: str | Path) -> None:
    """Write ``corpus`` to ``path`` as JSONL."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "header", "version": _FORMAT_VERSION, "name": corpus.name}
        handle.write(json.dumps(header) + "\n")
        for product in corpus.products:
            record = {
                "kind": "product",
                "product_id": product.product_id,
                "title": product.title,
                "category": product.category,
                "also_bought": list(product.also_bought),
            }
            handle.write(json.dumps(record) + "\n")
        for review in corpus.reviews:
            record = {
                "kind": "review",
                "review_id": review.review_id,
                "product_id": review.product_id,
                "reviewer_id": review.reviewer_id,
                "rating": review.rating,
                "text": review.text,
                "mentions": [
                    {"aspect": m.aspect, "sentiment": m.sentiment, "strength": m.strength}
                    for m in review.mentions
                ],
            }
            handle.write(json.dumps(record) + "\n")


def load_corpus(path: str | Path) -> Corpus:
    """Load a corpus previously written by :func:`save_corpus`."""
    path = Path(path)
    name = path.stem
    products: list[Product] = []
    reviews: list[Review] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            kind = record.get("kind")
            if kind == "header":
                version = record.get("version")
                if version != _FORMAT_VERSION:
                    raise ValueError(
                        f"{path}: unsupported corpus format version {version!r}"
                    )
                name = record.get("name", name)
            elif kind == "product":
                products.append(
                    Product(
                        product_id=record["product_id"],
                        title=record["title"],
                        category=record["category"],
                        also_bought=tuple(record.get("also_bought", ())),
                    )
                )
            elif kind == "review":
                mentions = tuple(
                    AspectMention(
                        aspect=m["aspect"],
                        sentiment=int(m["sentiment"]),
                        strength=float(m.get("strength", 1.0)),
                    )
                    for m in record.get("mentions", ())
                )
                reviews.append(
                    Review(
                        review_id=record["review_id"],
                        product_id=record["product_id"],
                        reviewer_id=record["reviewer_id"],
                        rating=float(record["rating"]),
                        text=record["text"],
                        mentions=mentions,
                    )
                )
            else:
                raise ValueError(f"{path}:{line_number}: unknown record kind {kind!r}")
    return Corpus(name=name, products=products, reviews=reviews)
