"""Core data model: products, reviews, and aspect-opinion mentions.

A :class:`Review` carries the raw text (for ROUGE evaluation) plus its
aspect-opinion annotations (for the selection objectives).  Annotations may
come from the synthetic generator's ground truth or from the NLP pipeline
in :mod:`repro.text.sentiment` — the selection algorithms never look at the
text, matching the paper's "we consider them as given" stance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class AspectMention:
    """One aspect-opinion pair inside a review.

    ``sentiment`` is +1 (positive), -1 (negative), or 0 (neutral: the
    aspect is discussed without a polarity cue).  ``strength`` scales the
    signed sentiment for the unary-scale opinion scheme; binary and
    3-polarity schemes only use its sign.
    """

    aspect: str
    sentiment: int
    strength: float = 1.0

    def __post_init__(self) -> None:
        if self.sentiment not in (-1, 0, 1):
            raise ValueError(f"sentiment must be -1, 0, or +1; got {self.sentiment}")
        if self.strength < 0:
            raise ValueError(f"strength must be non-negative; got {self.strength}")


@dataclass(frozen=True, slots=True)
class Review:
    """A single product review with its annotations."""

    review_id: str
    product_id: str
    reviewer_id: str
    rating: float
    text: str
    mentions: tuple[AspectMention, ...] = ()

    def __post_init__(self) -> None:
        if not self.review_id:
            raise ValueError("review_id must be non-empty")
        if not (0.0 <= self.rating <= 5.0):
            raise ValueError(f"rating must be in [0, 5]; got {self.rating}")

    @property
    def aspects(self) -> frozenset[str]:
        """Distinct aspects mentioned in this review."""
        return frozenset(mention.aspect for mention in self.mentions)

    def sentiment_for(self, aspect: str) -> int:
        """Dominant sentiment sign for ``aspect`` in this review (0 if absent).

        When a review mentions an aspect several times with mixed polarity,
        the sign of the summed signed strength wins, matching how the
        sentiment extractor and the synthetic ground truth aggregate.
        """
        total = sum(
            mention.sentiment * mention.strength
            for mention in self.mentions
            if mention.aspect == aspect
        )
        if total > 0:
            return 1
        if total < 0:
            return -1
        return 0

    def signed_strength_for(self, aspect: str) -> float:
        """Summed signed sentiment strength for ``aspect`` (unary scheme)."""
        return sum(
            mention.sentiment * mention.strength
            for mention in self.mentions
            if mention.aspect == aspect
        )


@dataclass(frozen=True, slots=True)
class Product:
    """A product with its comparison candidates ("also bought")."""

    product_id: str
    title: str
    category: str
    also_bought: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.product_id:
            raise ValueError("product_id must be non-empty")
        if self.product_id in self.also_bought:
            raise ValueError("a product cannot be in its own also_bought list")
