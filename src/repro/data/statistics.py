"""Extended corpus analysis beyond Table 2.

Distributional views used by the documentation and the data-statistics
benchmark: review-count and review-length distributions, aspect
frequency/polarity profiles, and comparison-list size percentiles —
the quantities one checks when validating that a synthetic corpus (or a
converted real dump) has the shape the experiments assume.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.data.corpus import Corpus
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Five-number-ish summary of a non-negative distribution."""

    mean: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    @staticmethod
    def from_values(values: list[float]) -> "DistributionSummary":
        if not values:
            return DistributionSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        array = np.asarray(values, dtype=float)
        return DistributionSummary(
            mean=float(array.mean()),
            p25=float(np.percentile(array, 25)),
            median=float(np.percentile(array, 50)),
            p75=float(np.percentile(array, 75)),
            p95=float(np.percentile(array, 95)),
            maximum=float(array.max()),
        )


@dataclass(frozen=True, slots=True)
class AspectProfile:
    """One aspect's corpus-wide footprint."""

    aspect: str
    num_reviews: int
    positive_fraction: float
    negative_fraction: float
    neutral_fraction: float


@dataclass(frozen=True, slots=True)
class CorpusAnalysis:
    """The full extended analysis of one corpus."""

    name: str
    reviews_per_product: DistributionSummary
    tokens_per_review: DistributionSummary
    aspects_per_review: DistributionSummary
    comparisons_per_target: DistributionSummary
    top_aspects: tuple[AspectProfile, ...]


def analyze_corpus(corpus: Corpus, top_aspects: int = 10) -> CorpusAnalysis:
    """Compute the extended analysis (single pass over reviews)."""
    reviews_per_product = [
        float(len(corpus.reviews_of(p.product_id))) for p in corpus.products
    ]
    tokens_per_review: list[float] = []
    aspects_per_review: list[float] = []
    aspect_counts: Counter[str] = Counter()
    aspect_signs: dict[str, Counter[int]] = {}

    for review in corpus.reviews:
        tokens_per_review.append(float(len(tokenize(review.text))))
        aspects = review.aspects
        aspects_per_review.append(float(len(aspects)))
        for aspect in aspects:
            aspect_counts[aspect] += 1
            aspect_signs.setdefault(aspect, Counter())[review.sentiment_for(aspect)] += 1

    comparisons = [
        float(sum(1 for pid in p.also_bought if corpus.has_product(pid)))
        for p in corpus.products
        if p.also_bought
    ]

    profiles = []
    for aspect, count in aspect_counts.most_common(top_aspects):
        signs = aspect_signs[aspect]
        total = sum(signs.values())
        profiles.append(
            AspectProfile(
                aspect=aspect,
                num_reviews=count,
                positive_fraction=signs.get(1, 0) / total,
                negative_fraction=signs.get(-1, 0) / total,
                neutral_fraction=signs.get(0, 0) / total,
            )
        )

    return CorpusAnalysis(
        name=corpus.name,
        reviews_per_product=DistributionSummary.from_values(reviews_per_product),
        tokens_per_review=DistributionSummary.from_values(tokens_per_review),
        aspects_per_review=DistributionSummary.from_values(aspects_per_review),
        comparisons_per_target=DistributionSummary.from_values(comparisons),
        top_aspects=tuple(profiles),
    )


def render_analysis(analysis: CorpusAnalysis) -> str:
    """Human-readable multi-section report."""
    from repro.eval.reporting import format_table

    sections = [f"=== Corpus analysis: {analysis.name} ==="]
    distribution_rows = []
    for label, summary in (
        ("reviews / product", analysis.reviews_per_product),
        ("tokens / review", analysis.tokens_per_review),
        ("aspects / review", analysis.aspects_per_review),
        ("comparisons / target", analysis.comparisons_per_target),
    ):
        distribution_rows.append(
            [
                label,
                f"{summary.mean:.1f}",
                f"{summary.p25:.0f}",
                f"{summary.median:.0f}",
                f"{summary.p75:.0f}",
                f"{summary.p95:.0f}",
                f"{summary.maximum:.0f}",
            ]
        )
    sections.append(
        format_table(
            ["distribution", "mean", "p25", "p50", "p75", "p95", "max"],
            distribution_rows,
        )
    )
    aspect_rows = [
        [
            profile.aspect,
            profile.num_reviews,
            f"{profile.positive_fraction:.2f}",
            f"{profile.negative_fraction:.2f}",
            f"{profile.neutral_fraction:.2f}",
        ]
        for profile in analysis.top_aspects
    ]
    sections.append(
        format_table(
            ["aspect", "#reviews", "pos", "neg", "neutral"],
            aspect_rows,
            title="Top aspects",
        )
    )
    return "\n\n".join(sections)
