"""Synthetic Amazon-like review corpus generator.

The paper evaluates on three categories of the Amazon Product Review
Dataset (Cellphone, Toy, Clothing) with "also bought" comparison lists.
That data is not available offline, so this module generates corpora with
the same structure and the statistical couplings the algorithms exercise:

* products belong to latent *families* (e.g. "car chargers", "jigsaw
  puzzles"); family members share aspect distributions, which is what makes
  "also bought" items comparable;
* each product has a latent polarity per aspect; review sentiment is drawn
  from it and star ratings correlate with review sentiment (needed by the
  rating-correlation step of aspect mining);
* review *text* is rendered from aspect-specific sentence templates using
  lexicon opinion words, so two reviews discussing the same aspect share
  n-grams — the property ROUGE-based evaluation relies on;
* "also bought" lists are drawn mostly within-family, sized to match the
  category averages in the paper's Table 2.

Everything is driven by an explicit :class:`numpy.random.Generator`, so a
given seed reproduces a corpus bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.corpus import Corpus
from repro.data.models import AspectMention, Product, Review

# --------------------------------------------------------------------------
# Category vocabulary: aspect -> surface synonyms used in rendered text.
# The first synonym is the canonical aspect label stored in annotations.
# --------------------------------------------------------------------------

_CELLPHONE_ASPECTS: dict[str, tuple[str, ...]] = {
    "battery": ("battery", "battery life", "charge", "power draw"),
    "screen": ("screen", "display", "screen glass", "display panel"),
    "charger": ("charger", "charging cable", "charging speed", "charger plug"),
    "case": ("case", "cover", "case shell", "case grip"),
    "camera": ("camera", "picture quality", "camera lens", "photo detail"),
    "price": ("price", "value", "price point", "cost"),
    "quality": ("quality", "build quality", "construction", "finish"),
    "shipping": ("shipping", "delivery", "shipping time", "arrival"),
    "durability": ("durability", "build", "wear resistance", "toughness"),
    "fit": ("fit", "fitting", "snugness", "fit tolerance"),
    "color": ("color", "colour", "color tone", "shade"),
    "sound": ("sound", "speaker", "audio", "volume"),
    "signal": ("signal", "reception", "antenna", "signal strength"),
    "buttons": ("buttons", "keys", "button feel", "key travel"),
    "cable": ("cable", "cord", "cable sheath", "wire"),
    "speed": ("speed", "performance", "response time", "snappiness"),
    "design": ("design", "look", "styling", "appearance"),
    "size": ("size", "dimensions", "footprint", "bulk"),
    "weight": ("weight", "heft", "mass", "lightness"),
    "warranty": ("warranty", "support", "customer service", "guarantee"),
    "packaging": ("packaging", "box", "wrapping", "package"),
    "instructions": ("instructions", "manual", "guide", "setup steps"),
}

_TOY_ASPECTS: dict[str, tuple[str, ...]] = {
    "pieces": ("pieces", "parts", "piece count", "piece cut"),
    "quality": ("quality", "craftsmanship", "construction", "finish"),
    "colors": ("colors", "artwork", "color print", "palette"),
    "instructions": ("instructions", "manual", "guide", "directions"),
    "durability": ("durability", "sturdiness", "wear resistance", "toughness"),
    "fun": ("fun", "entertainment", "play value", "enjoyment"),
    "price": ("price", "value", "price point", "cost"),
    "size": ("size", "dimensions", "footprint", "scale"),
    "assembly": ("assembly", "setup", "putting together", "build steps"),
    "material": ("material", "plastic", "material feel", "composition"),
    "design": ("design", "theme", "styling", "appearance"),
    "battery": ("battery", "batteries", "battery compartment", "power"),
    "sound": ("sound", "noise", "audio", "volume"),
    "packaging": ("packaging", "box", "wrapping", "package"),
    "safety": ("safety", "edges", "choking hazard", "safe design"),
    "education": ("education", "learning", "educational value", "skills"),
    "shipping": ("shipping", "delivery", "shipping time", "arrival"),
    "difficulty": ("difficulty", "challenge", "difficulty level", "complexity"),
    "picture": ("picture", "image", "picture print", "illustration"),
    "brand": ("brand", "maker", "manufacturer", "brand name"),
}

_CLOTHING_ASPECTS: dict[str, tuple[str, ...]] = {
    "size": ("size", "sizing", "size chart", "true to size"),
    "fit": ("fit", "cut", "fit shape", "tailoring"),
    "color": ("color", "shade", "color tone", "dye"),
    "fabric": ("fabric", "cloth", "fabric weave", "fabric feel"),
    "comfort": ("comfort", "feel", "cushioning", "softness"),
    "price": ("price", "value", "price point", "cost"),
    "quality": ("quality", "workmanship", "construction", "finish"),
    "style": ("style", "look", "styling", "appearance"),
    "stitching": ("stitching", "seams", "stitch work", "hem stitching"),
    "material": ("material", "textile", "material blend", "composition"),
    "washing": ("washing", "laundering", "machine wash", "wash care"),
    "length": ("length", "hem", "hem length", "inseam"),
    "design": ("design", "pattern", "print", "detailing"),
    "shipping": ("shipping", "delivery", "shipping time", "arrival"),
    "sole": ("sole", "footbed", "outsole", "arch support"),
    "heel": ("heel", "heel height", "heel cup", "heel support"),
    "straps": ("straps", "bands", "strap buckle", "strap padding"),
    "durability": ("durability", "wear", "wear resistance", "longevity"),
    "warmth": ("warmth", "insulation", "lining", "thermal layer"),
    "elasticity": ("elasticity", "stretch", "give", "elastic band"),
}

# Sentence templates: {aspect} and {aspect2} are surface synonyms of the
# same aspect (two per sentence, so reviews discussing a shared aspect
# genuinely share vocabulary — the coupling ROUGE evaluation measures),
# {opinion} is an opinion word matched to the drawn sentiment.  Neutral
# templates mention the aspect without a polarity cue.
_POSITIVE_TEMPLATES = (
    "The {aspect} is {opinion} and the {aspect2} holds up.",
    "I found the {aspect} {opinion}, with the {aspect2} as expected.",
    "Honestly the {aspect} turned out {opinion} considering the {aspect2}.",
    "The {aspect} works well here, {opinion} {aspect2} all around.",
    "My favorite part is the {opinion} {aspect} and its {aspect2}.",
)
_NEGATIVE_TEMPLATES = (
    "The {aspect} is {opinion} and the {aspect2} shows it.",
    "Unfortunately the {aspect} feels {opinion}, dragging the {aspect2} down.",
    "I was let down by the {opinion} {aspect} and its {aspect2}.",
    "The {aspect} turned out {opinion} after a week of checking the {aspect2}.",
    "Sadly the {aspect} seems {opinion} to me, {aspect2} included.",
)
_NEUTRAL_TEMPLATES = (
    "The {aspect} is what you would expect given the {aspect2}.",
    "There is a note in the listing about the {aspect} and the {aspect2}.",
    "I compared the {aspect} and the {aspect2} with my old one.",
)
_OPENERS = (
    "Bought this last month.",
    "Arrived as described.",
    "Daily driver for me now.",
    "Got it as a gift.",
    "Ordered on a recommendation.",
    "Picked it up on sale.",
    "Replacing an older unit.",
    "First purchase from this seller.",
)
_CLOSERS = (
    "Would buy again.",
    "Hope this helps someone.",
    "Fair purchase overall.",
    "Will update if anything changes.",
    "Take that for what it is worth.",
    "Your mileage may vary.",
    "That settles it for me.",
    "Enough said.",
)
_OPENER_PROBABILITY = 0.35
_CLOSER_PROBABILITY = 0.3

# Opinion words partitioned by polarity; drawn uniformly per mention.  These
# are a subset of repro.text.lexicon so the NLP pipeline can recover them.
_POSITIVE_OPINIONS = (
    "great", "excellent", "sturdy", "reliable", "comfortable", "smooth",
    "perfect", "solid", "impressive", "durable", "fantastic", "nice",
)
_NEGATIVE_OPINIONS = (
    "terrible", "flimsy", "disappointing", "cheaply", "unreliable", "poor",
    "awful", "fragile", "useless", "defective", "mediocre", "weak",
)

_TITLE_PREFIXES = {
    "Cellphone": ("Skiva", "Belkin", "Chus", "Anker", "Aukey", "Voltix", "Nimbus", "Corex"),
    "Toy": ("Ravensburger", "Starline", "Playforge", "Brixo", "Wonderkit", "Giggly", "Puzzlo", "Tinker"),
    "Clothing": ("Skechers", "Crocs", "Northway", "Plumeria", "Wearwell", "Striders", "Cottonline", "Urbanfit"),
}
_TITLE_NOUNS = {
    "Cellphone": ("Car Charger", "USB Cable", "Phone Case", "Screen Protector", "Power Bank", "Wall Adapter"),
    "Toy": ("1000-Piece Puzzle", "Building Set", "Board Game", "Action Figure", "Plush Bear", "Science Kit"),
    "Clothing": ("Wedge Sandal", "Running Shoe", "Cotton Tee", "Rain Jacket", "Denim Jeans", "Wool Scarf"),
}


@dataclass(frozen=True, slots=True)
class CategoryProfile:
    """Shape parameters for one synthetic category.

    Defaults are scaled-down versions of the paper's Table 2; multiply
    ``num_products``/``num_reviewers`` by ~100 to approach full scale.
    """

    name: str
    aspects: dict[str, tuple[str, ...]]
    num_products: int
    num_reviewers: int
    num_families: int
    mean_reviews_per_product: float
    mean_comparisons: float
    aspects_per_family: int = 12
    aspects_per_product: int = 7
    aspects_per_review_mean: float = 2.0
    neutral_probability: float = 0.08

    def __post_init__(self) -> None:
        if self.num_products < 2:
            raise ValueError("need at least 2 products per category")
        if not (0.0 <= self.neutral_probability <= 1.0):
            raise ValueError("neutral_probability must be in [0, 1]")
        if self.aspects_per_family > len(self.aspects):
            raise ValueError(
                f"aspects_per_family={self.aspects_per_family} exceeds the "
                f"{len(self.aspects)} aspects available for {self.name!r}"
            )
        if self.aspects_per_product > self.aspects_per_family:
            raise ValueError(
                "aspects_per_product cannot exceed aspects_per_family"
            )


def default_profiles(scale: float = 1.0) -> dict[str, CategoryProfile]:
    """The three paper categories, scaled by ``scale`` (1.0 ~ test-sized).

    At scale 1.0 each category has on the order of 10^2 products, which
    keeps test and benchmark runs fast; the review-per-product and
    comparison-list averages match Table 2 regardless of scale.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")

    def scaled(value: int) -> int:
        return max(8, int(round(value * scale)))

    return {
        "Cellphone": CategoryProfile(
            name="Cellphone",
            aspects=_CELLPHONE_ASPECTS,
            num_products=scaled(104),
            num_reviewers=scaled(279),
            num_families=max(2, scaled(10)),
            mean_reviews_per_product=18.64,
            mean_comparisons=25.57,
        ),
        "Toy": CategoryProfile(
            name="Toy",
            aspects=_TOY_ASPECTS,
            num_products=scaled(119),
            num_reviewers=scaled(194),
            num_families=max(2, scaled(8)),
            mean_reviews_per_product=14.06,
            mean_comparisons=34.33,
        ),
        "Clothing": CategoryProfile(
            name="Clothing",
            aspects=_CLOTHING_ASPECTS,
            num_products=scaled(230),
            num_reviewers=scaled(394),
            num_families=max(2, scaled(18)),
            mean_reviews_per_product=12.10,
            mean_comparisons=12.03,
        ),
    }


@dataclass
class _FamilyModel:
    """Latent model for a product family: aspect mixture + polarity."""

    aspect_names: list[str]
    aspect_weights: np.ndarray
    polarity: dict[str, float] = field(default_factory=dict)


class SyntheticCorpusBuilder:
    """Builds a :class:`Corpus` for one :class:`CategoryProfile`."""

    def __init__(self, profile: CategoryProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self.rng = rng

    # -- latent structure -------------------------------------------------

    def _build_families(self) -> list[_FamilyModel]:
        aspect_pool = list(self.profile.aspects)
        families: list[_FamilyModel] = []
        for _ in range(self.profile.num_families):
            chosen = list(
                self.rng.choice(
                    aspect_pool, size=self.profile.aspects_per_family, replace=False
                )
            )
            weights = self.rng.dirichlet(np.full(len(chosen), 0.8))
            polarity = {
                aspect: float(np.clip(self.rng.normal(0.35, 0.65), -0.95, 0.95))
                for aspect in chosen
            }
            families.append(
                _FamilyModel(aspect_names=chosen, aspect_weights=weights, polarity=polarity)
            )
        return families

    def _product_model(
        self, family: _FamilyModel
    ) -> tuple[list[str], np.ndarray, dict[str, float]]:
        """Derive a product-level model: an aspect *subset* of the family.

        Each product discusses only ``aspects_per_product`` of its family's
        aspects (sampled by family weight), with perturbed weights and
        polarity.  Two family members therefore overlap on the family's
        popular aspects but keep idiosyncratic ones — the regime in which
        matching the target's aspect vector Gamma is a real constraint for
        comparative items (the paper's CompaReSetS/CRS gap lives there:
        with z = 500 real aspects, Gamma is sparse and peaked, never dense).
        """
        count = min(self.profile.aspects_per_product, len(family.aspect_names))
        chosen_indices = self.rng.choice(
            len(family.aspect_names),
            size=count,
            replace=False,
            p=family.aspect_weights,
        )
        aspect_names = [family.aspect_names[int(i)] for i in chosen_indices]
        base_weights = family.aspect_weights[chosen_indices]
        noise = self.rng.dirichlet(np.full(count, 1.5))
        weights = 0.6 * base_weights / base_weights.sum() + 0.4 * noise
        weights = weights / weights.sum()
        polarity = {
            aspect: float(
                np.clip(family.polarity[aspect] + self.rng.normal(0.0, 0.12), -0.98, 0.98)
            )
            for aspect in aspect_names
        }
        return aspect_names, weights, polarity

    # -- review rendering --------------------------------------------------

    def _render_sentence(self, aspect: str, sentiment: int) -> str:
        synonyms = self.profile.aspects[aspect]
        surface = str(self.rng.choice(synonyms))
        alternatives = [s for s in synonyms if s != surface] or [surface]
        surface2 = str(self.rng.choice(alternatives))
        if sentiment > 0:
            template = str(self.rng.choice(_POSITIVE_TEMPLATES))
            opinion = str(self.rng.choice(_POSITIVE_OPINIONS))
        elif sentiment < 0:
            template = str(self.rng.choice(_NEGATIVE_TEMPLATES))
            opinion = str(self.rng.choice(_NEGATIVE_OPINIONS))
        else:
            template = str(self.rng.choice(_NEUTRAL_TEMPLATES))
            return template.format(aspect=surface, aspect2=surface2)
        return template.format(aspect=surface, aspect2=surface2, opinion=opinion)

    def _make_review(
        self,
        review_id: str,
        product_id: str,
        reviewer_id: str,
        aspect_names: list[str],
        aspect_weights: np.ndarray,
        polarity: dict[str, float],
    ) -> Review:
        count = min(
            len(aspect_names),
            1 + int(self.rng.poisson(self.profile.aspects_per_review_mean - 1.0)),
        )
        chosen = self.rng.choice(
            len(aspect_names), size=count, replace=False, p=aspect_weights
        )
        mentions: list[AspectMention] = []
        sentences: list[str] = []
        if self.rng.random() < _OPENER_PROBABILITY:
            sentences.append(str(self.rng.choice(_OPENERS)))
        for index in chosen:
            aspect = aspect_names[int(index)]
            if self.rng.random() < self.profile.neutral_probability:
                sentiment = 0
            else:
                # Sharpened response: a product with a clear reputation on an
                # aspect gets consistently-signed review sentiment, the way
                # e.g. a flimsy cable is called flimsy by most reviewers.
                positive_probability = 0.5 + 0.5 * float(np.tanh(2.2 * polarity[aspect]))
                sentiment = 1 if self.rng.random() < positive_probability else -1
            strength = float(self.rng.uniform(0.6, 1.4)) if sentiment else 1.0
            mentions.append(AspectMention(aspect=aspect, sentiment=sentiment, strength=strength))
            sentences.append(self._render_sentence(aspect, sentiment))
        if self.rng.random() < _CLOSER_PROBABILITY:
            sentences.append(str(self.rng.choice(_CLOSERS)))

        mean_sentiment = float(
            np.mean([m.sentiment for m in mentions]) if mentions else 0.0
        )
        rating = float(np.clip(round(3.0 + 1.8 * mean_sentiment + self.rng.normal(0, 0.5)), 1, 5))
        return Review(
            review_id=review_id,
            product_id=product_id,
            reviewer_id=reviewer_id,
            rating=rating,
            text=" ".join(sentences),
            mentions=tuple(mentions),
        )

    # -- assembly -----------------------------------------------------------

    def build(self) -> Corpus:
        """Generate the full corpus for this category."""
        profile = self.profile
        families = self._build_families()
        family_of_product: list[int] = []
        products_raw: list[dict] = []

        prefixes = _TITLE_PREFIXES[profile.name] if profile.name in _TITLE_PREFIXES else ("Generic",)
        nouns = _TITLE_NOUNS[profile.name] if profile.name in _TITLE_NOUNS else ("Item",)

        for index in range(profile.num_products):
            family_index = int(self.rng.integers(len(families)))
            family_of_product.append(family_index)
            aspect_names, weights, polarity = self._product_model(families[family_index])
            title = (
                f"{self.rng.choice(prefixes)} {self.rng.choice(nouns)} "
                f"Model {index:04d}"
            )
            products_raw.append(
                {
                    "product_id": f"{profile.name[:4].upper()}{index:05d}",
                    "title": title,
                    "family": family_index,
                    "aspect_names": aspect_names,
                    "aspect_weights": weights,
                    "polarity": polarity,
                }
            )

        # Also-bought lists: mostly same-family neighbours.
        by_family: dict[int, list[int]] = {}
        for product_index, family_index in enumerate(family_of_product):
            by_family.setdefault(family_index, []).append(product_index)

        products: list[Product] = []
        for product_index, raw in enumerate(products_raw):
            same_family = [
                i for i in by_family[raw["family"]] if i != product_index
            ]
            others = [
                i for i in range(profile.num_products)
                if i != product_index and family_of_product[i] != raw["family"]
            ]
            target_size = max(1, int(self.rng.poisson(profile.mean_comparisons)))
            within = min(len(same_family), int(round(target_size * 0.8)))
            across = min(len(others), target_size - within)
            chosen: list[int] = []
            if within:
                chosen.extend(
                    int(i) for i in self.rng.choice(same_family, size=within, replace=False)
                )
            if across > 0:
                chosen.extend(
                    int(i) for i in self.rng.choice(others, size=across, replace=False)
                )
            also_bought = tuple(products_raw[i]["product_id"] for i in chosen)
            products.append(
                Product(
                    product_id=raw["product_id"],
                    title=raw["title"],
                    category=profile.name,
                    also_bought=also_bought,
                )
            )

        reviews: list[Review] = []
        review_counter = 0
        for raw in products_raw:
            # Lognormal review counts reproduce the long tail of real data.
            mean = profile.mean_reviews_per_product
            count = max(
                2, int(round(self.rng.lognormal(np.log(mean) - 0.18, 0.6)))
            )
            for _ in range(count):
                reviewer = f"U{int(self.rng.integers(profile.num_reviewers)):05d}"
                review_counter += 1
                reviews.append(
                    self._make_review(
                        review_id=f"R{profile.name[:4].upper()}{review_counter:07d}",
                        product_id=raw["product_id"],
                        reviewer_id=reviewer,
                        aspect_names=raw["aspect_names"],
                        aspect_weights=raw["aspect_weights"],
                        polarity=raw["polarity"],
                    )
                )

        return Corpus(name=profile.name, products=products, reviews=reviews)


def surface_stem_aliases(profile: CategoryProfile) -> dict[str, str]:
    """Map surface-token stems to canonical aspect names.

    Review text renders aspects through synonym phrases ("charge" for
    battery), so a text-only extractor reports surface stems.  This map
    lets evaluation code canonicalise them back; tokens whose stem is
    ambiguous across aspects are omitted.
    """
    from repro.text.stemmer import stem
    from repro.text.tokenize import tokenize

    aliases: dict[str, str] = {}
    ambiguous: set[str] = set()
    for aspect, synonyms in profile.aspects.items():
        for synonym in synonyms:
            for token in tokenize(synonym):
                stemmed = stem(token)
                if stemmed in ambiguous:
                    continue
                existing = aliases.get(stemmed)
                if existing is not None and existing != aspect:
                    del aliases[stemmed]
                    ambiguous.add(stemmed)
                else:
                    aliases[stemmed] = aspect
    return aliases


def generate_corpus(
    category: str = "Cellphone",
    scale: float = 1.0,
    seed: int | None = 7,
    profile: CategoryProfile | None = None,
) -> Corpus:
    """Generate one synthetic category corpus.

    Parameters
    ----------
    category:
        One of ``"Cellphone"``, ``"Toy"``, ``"Clothing"`` (ignored when an
        explicit ``profile`` is given).
    scale:
        Multiplier on product/reviewer counts; 1.0 is test-sized.
    seed:
        Seed for the deterministic generator.
    profile:
        A fully custom :class:`CategoryProfile` overriding the built-ins.
    """
    if profile is None:
        profiles = default_profiles(scale)
        if category not in profiles:
            raise ValueError(
                f"unknown category {category!r}; expected one of {sorted(profiles)}"
            )
        profile = profiles[category]
    rng = np.random.default_rng(seed)
    return SyntheticCorpusBuilder(profile, rng).build()
