"""Measurement substrate: ROUGE alignment, ratios, loss curves, statistics.

* :mod:`repro.eval.alignment` — pairwise ROUGE over selected review sets
  (Tables 3, 4, 6; Figs. 5, 6).
* :mod:`repro.eval.objective_ratio` — Table 5's objective-value ratios.
* :mod:`repro.eval.information_loss` — Fig. 11's Delta/cosine curves.
* :mod:`repro.eval.stats` — paired t-tests and Krippendorff's alpha.
* :mod:`repro.eval.user_study` — the simulated Likert survey of Table 7.
* :mod:`repro.eval.runner` — shared experiment orchestration.
* :mod:`repro.eval.reporting` — fixed-width table rendering.
"""

from repro.eval.alignment import (
    AlignmentScorer,
    AlignmentScores,
    among_items_alignment,
    mean_alignment,
    target_vs_comparative_alignment,
)
from repro.eval.bootstrap import BootstrapInterval, bootstrap_difference, bootstrap_mean
from repro.eval.coverage import (
    aspect_coverage,
    cross_item_overlap,
    polarity_balance,
    redundancy,
)
from repro.eval.information_loss import InformationLossPoint, information_loss_curve
from repro.eval.parallel import select_parallel
from repro.eval.plotting import ascii_line_plot
from repro.eval.objective_ratio import HksComparison, compare_hks_solvers
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, evaluate_selectors, prepare_instances
from repro.eval.stats import krippendorff_alpha, paired_t_test
from repro.eval.user_study import UserStudyOutcome, run_user_study

__all__ = [
    "AlignmentScorer",
    "AlignmentScores",
    "BootstrapInterval",
    "EvaluationSettings",
    "HksComparison",
    "InformationLossPoint",
    "UserStudyOutcome",
    "among_items_alignment",
    "ascii_line_plot",
    "aspect_coverage",
    "bootstrap_difference",
    "bootstrap_mean",
    "compare_hks_solvers",
    "cross_item_overlap",
    "evaluate_selectors",
    "format_table",
    "information_loss_curve",
    "krippendorff_alpha",
    "mean_alignment",
    "paired_t_test",
    "polarity_balance",
    "prepare_instances",
    "redundancy",
    "run_user_study",
    "select_parallel",
    "target_vs_comparative_alignment",
]
