"""Review-alignment measurement with ROUGE (§4.1.3).

The paper measures how well the selected reviews of one item align with
those of another: for every pair of reviews coming from two *different*
items, compute ROUGE-1/2/L F1 and average.  Two views are reported:

* *target vs comparative* (Tables 3a, 6a) — pairs between the target
  item's selected reviews and each comparative item's selected reviews;
* *among items* (Tables 3b, 6b) — pairs across every two distinct items.

Scores are kept as fractions in [0, 1]; the paper's tables show them
multiplied by 100 (done in the reporting layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.selection import SelectionResult
from repro.text.rouge import rouge_l, rouge_n
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class AlignmentScores:
    """Mean ROUGE-1/2/L F1 over cross-item review pairs."""

    rouge_1: float
    rouge_2: float
    rouge_l: float
    num_pairs: int

    def scaled(self, factor: float = 100.0) -> tuple[float, float, float]:
        """The three scores multiplied by ``factor`` (paper-style x100)."""
        return (
            self.rouge_1 * factor,
            self.rouge_2 * factor,
            self.rouge_l * factor,
        )


_EMPTY = AlignmentScores(rouge_1=0.0, rouge_2=0.0, rouge_l=0.0, num_pairs=0)


def _pair_scores(
    tokens_a: Sequence[Sequence[str]], tokens_b: Sequence[Sequence[str]]
) -> tuple[float, float, float, int]:
    """Summed ROUGE-1/2/L over the cross product of two token-list groups."""
    total_1 = total_2 = total_l = 0.0
    pairs = 0
    for a in tokens_a:
        for b in tokens_b:
            total_1 += rouge_n(a, b, 1).f1
            total_2 += rouge_n(a, b, 2).f1
            total_l += rouge_l(a, b).f1
            pairs += 1
    return total_1, total_2, total_l, pairs


def _selected_token_lists(result: SelectionResult) -> list[list[list[str]]]:
    """Tokenised selected reviews per item (tokenise once, reuse everywhere)."""
    return [
        [tokenize(review.text) for review in result.selected_reviews(i)]
        for i in range(result.instance.num_items)
    ]


def target_vs_comparative_alignment(result: SelectionResult) -> AlignmentScores:
    """Mean ROUGE between the target's and each comparative's selections."""
    token_lists = _selected_token_lists(result)
    total_1 = total_2 = total_l = 0.0
    pairs = 0
    for item_index in range(1, len(token_lists)):
        s1, s2, sl, count = _pair_scores(token_lists[0], token_lists[item_index])
        total_1 += s1
        total_2 += s2
        total_l += sl
        pairs += count
    if pairs == 0:
        return _EMPTY
    return AlignmentScores(total_1 / pairs, total_2 / pairs, total_l / pairs, pairs)


def among_items_alignment(result: SelectionResult) -> AlignmentScores:
    """Mean ROUGE over review pairs across every two distinct items."""
    token_lists = _selected_token_lists(result)
    total_1 = total_2 = total_l = 0.0
    pairs = 0
    for i in range(len(token_lists) - 1):
        for j in range(i + 1, len(token_lists)):
            s1, s2, sl, count = _pair_scores(token_lists[i], token_lists[j])
            total_1 += s1
            total_2 += s2
            total_l += sl
            pairs += count
    if pairs == 0:
        return _EMPTY
    return AlignmentScores(total_1 / pairs, total_2 / pairs, total_l / pairs, pairs)


def mean_alignment(scores: Sequence[AlignmentScores]) -> AlignmentScores:
    """Average per-instance scores, weighting instances equally (paper-style).

    Instances with no cross-item pairs (e.g. single-item restrictions) are
    skipped rather than dragging the mean to zero.
    """
    usable = [s for s in scores if s.num_pairs > 0]
    if not usable:
        return _EMPTY
    return AlignmentScores(
        rouge_1=sum(s.rouge_1 for s in usable) / len(usable),
        rouge_2=sum(s.rouge_2 for s in usable) / len(usable),
        rouge_l=sum(s.rouge_l for s in usable) / len(usable),
        num_pairs=sum(s.num_pairs for s in usable),
    )
