"""Review-alignment measurement with ROUGE (§4.1.3).

The paper measures how well the selected reviews of one item align with
those of another: for every pair of reviews coming from two *different*
items, compute ROUGE-1/2/L F1 and average.  Two views are reported:

* *target vs comparative* (Tables 3a, 6a) — pairs between the target
  item's selected reviews and each comparative item's selected reviews;
* *among items* (Tables 3b, 6b) — pairs across every two distinct items.

Scores are kept as fractions in [0, 1]; the paper's tables show them
multiplied by 100 (done in the reporting layer).

Scoring runs on the interned-token ROUGE kernel
(:mod:`repro.text.rouge_kernel`) by default: an :class:`AlignmentScorer`
owns a corpus-level interner, scores each cross-item review-pair grid in
one vectorised call, and accumulates the per-pair F1 values in exactly
the reference order, so every :class:`AlignmentScores` is bitwise equal
to the pure-Python path (``AlignmentScorer(use_kernel=False)``, kept as
the checkable reference).  Both paths tokenise each distinct review text
once per interner, however many pairs or views it appears in.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.selection import SelectionResult
from repro.text.rouge import rouge_l, rouge_n
from repro.text.rouge_kernel import CorpusInterner, InternedText, rouge_pair_grid


@dataclass(frozen=True, slots=True)
class AlignmentScores:
    """Mean ROUGE-1/2/L F1 over cross-item review pairs."""

    rouge_1: float
    rouge_2: float
    rouge_l: float
    num_pairs: int

    def scaled(self, factor: float = 100.0) -> tuple[float, float, float]:
        """The three scores multiplied by ``factor`` (paper-style x100)."""
        return (
            self.rouge_1 * factor,
            self.rouge_2 * factor,
            self.rouge_l * factor,
        )


_EMPTY = AlignmentScores(rouge_1=0.0, rouge_2=0.0, rouge_l=0.0, num_pairs=0)

VIEWS = ("target", "among")


def _pair_scores(
    tokens_a: Sequence[Sequence[str]], tokens_b: Sequence[Sequence[str]]
) -> tuple[float, float, float, int]:
    """Summed ROUGE-1/2/L over the cross product of two token-list groups.

    The pure-Python reference path; the kernel path must reproduce these
    sums bitwise (same per-pair F1 values, same accumulation order).
    """
    total_1 = total_2 = total_l = 0.0
    pairs = 0
    for a in tokens_a:
        for b in tokens_b:
            total_1 += rouge_n(a, b, 1).f1
            total_2 += rouge_n(a, b, 2).f1
            total_l += rouge_l(a, b).f1
            pairs += 1
    return total_1, total_2, total_l, pairs


class AlignmentScorer:
    """Batched alignment scoring with a shared corpus interner.

    One scorer should live per corpus/experiment: review texts are
    interned (and tokenised) once and reused across results, budgets,
    algorithms, and both views.  ``use_kernel=False`` selects the
    pure-Python reference path (same memoised token lists) for
    equivalence checks and benchmarks.
    """

    def __init__(
        self,
        *,
        use_kernel: bool = True,
        interner: CorpusInterner | None = None,
    ) -> None:
        self.use_kernel = use_kernel
        self.interner = interner if interner is not None else CorpusInterner()

    # -- per-result group preparation ---------------------------------------

    def _interned_groups(self, result: SelectionResult) -> list[list[InternedText]]:
        return [
            [self.interner.intern(review.text) for review in result.selected_reviews(i)]
            for i in range(result.instance.num_items)
        ]

    def _token_groups(self, result: SelectionResult) -> list[list[list[str]]]:
        return [
            [self.interner.tokens(review.text) for review in result.selected_reviews(i)]
            for i in range(result.instance.num_items)
        ]

    @staticmethod
    def _block_sums(blocks) -> tuple[float, float, float, int]:
        """Sum one cross-item block's F1 grids in the reference order.

        ``blocks`` holds the three (|A|, |B|) arrays; accumulation runs
        sequentially in (a outer, b inner) order, so the totals are
        bitwise equal to the reference's pair-by-pair ``+=`` loop.
        """
        block_1, block_2, block_l = blocks
        total_1 = total_2 = total_l = 0.0
        for value in block_1.ravel().tolist():
            total_1 += value
        for value in block_2.ravel().tolist():
            total_2 += value
        for value in block_l.ravel().tolist():
            total_l += value
        return total_1, total_2, total_l, block_1.shape[0] * block_1.shape[1]

    def _kernel_view_sums(
        self, groups: list[list[InternedText]], views: tuple[str, ...]
    ) -> dict[str, tuple[float, float, float, int]]:
        """Per-view F1 sums from one batched grid computation.

        The "target" view alone scores the target group against the
        flattened comparative reviews (one kernel call); anything needing
        the among view scores the full flattened cross product once and
        slices per item-pair blocks out of it.
        """
        offsets = [0]
        for group in groups:
            offsets.append(offsets[-1] + len(group))
        flat = [interned for group in groups for interned in group]

        if views == ("target",):
            grid = rouge_pair_grid(groups[0], flat[offsets[1] :])
            total_1 = total_2 = total_l = 0.0
            pairs = 0
            for j in range(1, len(groups)):
                lo, hi = offsets[j] - offsets[1], offsets[j + 1] - offsets[1]
                s1, s2, sl, count = self._block_sums(
                    (
                        grid.rouge_1[:, lo:hi],
                        grid.rouge_2[:, lo:hi],
                        grid.rouge_l[:, lo:hi],
                    )
                )
                total_1 += s1
                total_2 += s2
                total_l += sl
                pairs += count
            return {"target": (total_1, total_2, total_l, pairs)}

        grid = rouge_pair_grid(flat, flat)
        sums = {view: [0.0, 0.0, 0.0, 0] for view in views}
        for i in range(len(groups) - 1):
            for j in range(i + 1, len(groups)):
                block = (
                    grid.rouge_1[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]],
                    grid.rouge_2[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]],
                    grid.rouge_l[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]],
                )
                s1, s2, sl, count = self._block_sums(block)
                for view in views:
                    if view == "target" and i != 0:
                        continue
                    totals = sums[view]
                    totals[0] += s1
                    totals[1] += s2
                    totals[2] += sl
                    totals[3] += count
        return {view: tuple(totals) for view, totals in sums.items()}

    def _reference_view_sums(
        self, groups: list[list[list[str]]], views: tuple[str, ...]
    ) -> dict[str, tuple[float, float, float, int]]:
        """Pure-Python per-view sums (the original pair-loop semantics)."""
        sums = {view: [0.0, 0.0, 0.0, 0] for view in views}
        first_items = range(len(groups) - 1) if "among" in views else range(1)
        for i in first_items:
            for j in range(i + 1, len(groups)):
                s1, s2, sl, count = _pair_scores(groups[i], groups[j])
                for view in views:
                    if view == "target" and i != 0:
                        continue
                    totals = sums[view]
                    totals[0] += s1
                    totals[1] += s2
                    totals[2] += sl
                    totals[3] += count
        return {view: tuple(totals) for view, totals in sums.items()}

    def _score_views(
        self, result: SelectionResult, views: tuple[str, ...]
    ) -> dict[str, AlignmentScores]:
        if self.use_kernel:
            groups = self._interned_groups(result)
            view_sums = self._kernel_view_sums(groups, views)
        else:
            groups = self._token_groups(result)
            view_sums = self._reference_view_sums(groups, views)
        scores: dict[str, AlignmentScores] = {}
        for view, (s1, s2, sl, pairs) in view_sums.items():
            scores[view] = (
                _EMPTY
                if pairs == 0
                else AlignmentScores(s1 / pairs, s2 / pairs, sl / pairs, pairs)
            )
        return scores

    # -- views --------------------------------------------------------------

    def score(self, result: SelectionResult, view: str) -> AlignmentScores:
        """One view ("target" or "among") of one result."""
        if view not in VIEWS:
            raise ValueError(f"view must be one of {VIEWS}, got {view!r}")
        return self._score_views(result, (view,))[view]

    def score_both(
        self, result: SelectionResult
    ) -> tuple[AlignmentScores, AlignmentScores]:
        """(target view, among view) computing each review pair once.

        The among view's (0, j) blocks are exactly the target view's
        blocks, so experiments needing both panels (Table 3) score every
        cross-item pair a single time.
        """
        scores = self._score_views(result, ("target", "among"))
        return scores["target"], scores["among"]

    def score_many(
        self, results: Sequence[SelectionResult], view: str
    ) -> list[AlignmentScores]:
        """One view over a batch of results (shared interner)."""
        return [self.score(result, view) for result in results]


# Module-level default scorer: the free functions below share one interner
# so repeated calls over the same corpus never re-tokenise.  Reset it when
# scoring disjoint corpora in one long-lived process and memory matters.
_DEFAULT_SCORER: AlignmentScorer | None = None


def default_scorer() -> AlignmentScorer:
    """The shared kernel-backed scorer used by the free functions."""
    global _DEFAULT_SCORER
    if _DEFAULT_SCORER is None:
        _DEFAULT_SCORER = AlignmentScorer()
    return _DEFAULT_SCORER


def reset_default_scorer() -> None:
    """Drop the shared scorer (and its interned corpus)."""
    global _DEFAULT_SCORER
    _DEFAULT_SCORER = None


def target_vs_comparative_alignment(
    result: SelectionResult, *, scorer: AlignmentScorer | None = None
) -> AlignmentScores:
    """Mean ROUGE between the target's and each comparative's selections."""
    return (scorer or default_scorer()).score(result, "target")


def among_items_alignment(
    result: SelectionResult, *, scorer: AlignmentScorer | None = None
) -> AlignmentScores:
    """Mean ROUGE over review pairs across every two distinct items."""
    return (scorer or default_scorer()).score(result, "among")


def mean_alignment(scores: Sequence[AlignmentScores]) -> AlignmentScores:
    """Average per-instance scores, weighting instances equally (paper-style).

    Instances with no cross-item pairs (e.g. single-item restrictions) are
    skipped rather than dragging the mean to zero.
    """
    usable = [s for s in scores if s.num_pairs > 0]
    if not usable:
        return _EMPTY
    return AlignmentScores(
        rouge_1=sum(s.rouge_1 for s in usable) / len(usable),
        rouge_2=sum(s.rouge_2 for s in usable) / len(usable),
        rouge_l=sum(s.rouge_l for s in usable) / len(usable),
        num_pairs=sum(s.num_pairs for s in usable),
    )
