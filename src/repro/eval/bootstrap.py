"""Bootstrap confidence intervals for per-instance metric means.

The paper reports means over thousands of instances with a paired t-test
footnote; on the synthetic corpora (hundreds of instances) bootstrap
intervals give a more honest picture of the uncertainty around each mean
and around pairwise differences between algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class BootstrapInterval:
    """A mean with its percentile bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} [{self.low:.4f}, {self.high:.4f}]"


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI for the mean of ``values``.

    Raises ValueError on empty input; a single value yields a degenerate
    zero-width interval.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if data.size == 1:
        value = float(data[0])
        return BootstrapInterval(value, value, value, confidence)
    rng = np.random.default_rng(seed)
    samples = rng.choice(data, size=(resamples, data.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        mean=float(data.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_difference(
    first: Sequence[float],
    second: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Paired bootstrap CI for mean(first - second).

    The interval excluding zero is the bootstrap analogue of the paper's
    significance marker.
    """
    if len(first) != len(second):
        raise ValueError(f"length mismatch: {len(first)} vs {len(second)}")
    differences = np.asarray(first, dtype=float) - np.asarray(second, dtype=float)
    return bootstrap_mean(differences, confidence=confidence, resamples=resamples, seed=seed)
