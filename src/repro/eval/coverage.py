"""Coverage and synchronisation diagnostics for selection results.

These metrics expose *why* an algorithm scores the ROUGE it does:

* :func:`aspect_coverage` — how much of each item's own aspect mass the
  selection retains (within-item representativeness);
* :func:`cross_item_overlap` — mean Jaccard overlap of selected aspects
  across item pairs (the synchronisation CompaReSetS+ optimises);
* :func:`polarity_balance` — how close the selected positive/negative mix
  is to the item's overall mix (what CRS optimises);
* :func:`redundancy` — fraction of selected reviews whose aspect set is a
  subset of another selected review's (wasted slots).

The mechanism ablation bench reports all four side by side.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import SelectionResult


def _selected_aspect_sets(result: SelectionResult) -> list[set[str]]:
    return [
        {aspect for review in result.selected_reviews(i) for aspect in review.aspects}
        for i in range(result.instance.num_items)
    ]


def aspect_coverage(result: SelectionResult) -> float:
    """Mean fraction of each item's aspect occurrences covered by S_i.

    Weighted by occurrence counts, so covering the dominant aspects counts
    more than covering rare ones; 1.0 means every aspect mentioned in R_i
    also appears in S_i.
    """
    coverages = []
    selected_sets = _selected_aspect_sets(result)
    for item_index, reviews in enumerate(result.instance.reviews):
        counts: dict[str, int] = {}
        for review in reviews:
            for aspect in review.aspects:
                counts[aspect] = counts.get(aspect, 0) + 1
        total = sum(counts.values())
        if total == 0:
            continue
        covered = sum(
            count for aspect, count in counts.items()
            if aspect in selected_sets[item_index]
        )
        coverages.append(covered / total)
    return float(np.mean(coverages)) if coverages else 0.0


def cross_item_overlap(result: SelectionResult) -> float:
    """Mean Jaccard overlap of selected aspect sets across item pairs."""
    sets = _selected_aspect_sets(result)
    overlaps = []
    for i in range(len(sets) - 1):
        for j in range(i + 1, len(sets)):
            union = sets[i] | sets[j]
            if union:
                overlaps.append(len(sets[i] & sets[j]) / len(union))
    return float(np.mean(overlaps)) if overlaps else 0.0


def polarity_balance(result: SelectionResult) -> float:
    """Mean closeness of the selected polarity mix to the item's overall mix.

    For each item, compares the positive-fraction of signed mentions in
    S_i against R_i; returns 1 - mean |difference| (1.0 = perfectly
    characteristic polarity mix).
    """
    def positive_fraction(reviews) -> float | None:
        positive = negative = 0
        for review in reviews:
            for aspect in review.aspects:
                sign = review.sentiment_for(aspect)
                if sign > 0:
                    positive += 1
                elif sign < 0:
                    negative += 1
        total = positive + negative
        return positive / total if total else None

    gaps = []
    for item_index, reviews in enumerate(result.instance.reviews):
        overall = positive_fraction(reviews)
        selected = positive_fraction(result.selected_reviews(item_index))
        if overall is not None and selected is not None:
            gaps.append(abs(overall - selected))
    return 1.0 - float(np.mean(gaps)) if gaps else 0.0


def redundancy(result: SelectionResult) -> float:
    """Fraction of selected reviews dominated by a sibling selection.

    A review is redundant when another review selected for the same item
    mentions a superset of its aspects; a high value means slots are
    wasted restating the same content.
    """
    redundant = 0
    total = 0
    for item_index in range(result.instance.num_items):
        selected = result.selected_reviews(item_index)
        for i, review in enumerate(selected):
            total += 1
            for j, other in enumerate(selected):
                if i != j and review.aspects and review.aspects < other.aspects:
                    redundant += 1
                    break
            else:
                if any(
                    i != j and review.aspects == other.aspects and i > j
                    for j, other in enumerate(selected)
                ):
                    redundant += 1
    return redundant / total if total else 0.0
