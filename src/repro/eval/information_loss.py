"""Information-loss analysis of §4.6.1 (Fig. 11).

Selecting a subset of reviews inevitably discards information; the paper
quantifies it per item as Delta(tau_i, pi(S_i)) (lower is better, 0 means
the subset perfectly reproduces the overall opinion distribution) and as
cosine(tau_i, pi(S_i)) (Eq. 9; higher is better).  Two series are drawn:
the target item alone and all items, as a function of the budget m.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.distance import cosine_similarity, squared_l2
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, Selector, build_space
from repro.core.vectors import VectorSpace
from repro.data.instances import ComparisonInstance


@dataclass(frozen=True, slots=True)
class InformationLossPoint:
    """Mean loss measurements for one budget m."""

    max_reviews: int
    target_delta: float
    target_cosine: float
    all_items_delta: float
    all_items_cosine: float


def measure_result(
    result: SelectionResult,
    config: SelectionConfig,
    space: VectorSpace | None = None,
) -> tuple[list[float], list[float]]:
    """Per-item Delta(tau_i, pi(S_i)) and cosine(tau_i, pi(S_i)).

    Pass ``space`` to reuse one :class:`~repro.core.vectors.VectorSpace`
    across measurements of the same instance (the space memoises the
    per-item tau vectors, which dominate repeated calls); the scheme only
    depends on ``config.scheme``, so one space serves every budget.
    """
    if space is None:
        space = build_space(result.instance, config)
    deltas: list[float] = []
    cosines: list[float] = []
    for item_index in range(result.instance.num_items):
        tau = space.opinion_vector(result.instance.reviews[item_index])
        pi = space.opinion_vector(result.selected_reviews(item_index))
        deltas.append(squared_l2(tau, pi))
        cosines.append(cosine_similarity(tau, pi))
    return deltas, cosines


@dataclass(slots=True)
class _BudgetAccumulator:
    """Per-budget measurement lists, filled instance by instance."""

    target_deltas: list[float] = field(default_factory=list)
    target_cosines: list[float] = field(default_factory=list)
    all_deltas: list[float] = field(default_factory=list)
    all_cosines: list[float] = field(default_factory=list)


def information_loss_curve(
    instances: Sequence[ComparisonInstance],
    selector: Selector,
    config: SelectionConfig,
    budgets: Sequence[int] = (3, 5, 10, 15, 20),
) -> list[InformationLossPoint]:
    """Fig.-11 curves: mean loss vs budget, target-only and all-items.

    Iterates instances in the outer loop so each instance's vector space
    (and its memoised tau vectors) is built once and shared by every
    budget, instead of once per (budget, instance); measured values are
    identical to the per-budget construction.
    """
    budget_configs = [config.with_(max_reviews=budget) for budget in budgets]
    accumulators = [_BudgetAccumulator() for _ in budgets]
    for instance in instances:
        # Keyed by the result's instance identity: a selector that hands
        # back a restricted instance still gets a matching space.
        spaces: dict[int, VectorSpace] = {}
        for budget_config, accumulator in zip(budget_configs, accumulators):
            result = selector.select(instance, budget_config)
            space = spaces.get(id(result.instance))
            if space is None:
                space = build_space(result.instance, budget_config)
                spaces[id(result.instance)] = space
            deltas, cosines = measure_result(result, budget_config, space=space)
            accumulator.target_deltas.append(deltas[0])
            accumulator.target_cosines.append(cosines[0])
            accumulator.all_deltas.extend(deltas)
            accumulator.all_cosines.extend(cosines)
    return [
        InformationLossPoint(
            max_reviews=budget,
            target_delta=_mean(accumulator.target_deltas),
            target_cosine=_mean(accumulator.target_cosines),
            all_items_delta=_mean(accumulator.all_deltas),
            all_items_cosine=_mean(accumulator.all_cosines),
        )
        for budget, accumulator in zip(budgets, accumulators)
    ]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
