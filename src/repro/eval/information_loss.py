"""Information-loss analysis of §4.6.1 (Fig. 11).

Selecting a subset of reviews inevitably discards information; the paper
quantifies it per item as Delta(tau_i, pi(S_i)) (lower is better, 0 means
the subset perfectly reproduces the overall opinion distribution) and as
cosine(tau_i, pi(S_i)) (Eq. 9; higher is better).  Two series are drawn:
the target item alone and all items, as a function of the budget m.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.distance import cosine_similarity, squared_l2
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, Selector, build_space
from repro.data.instances import ComparisonInstance


@dataclass(frozen=True, slots=True)
class InformationLossPoint:
    """Mean loss measurements for one budget m."""

    max_reviews: int
    target_delta: float
    target_cosine: float
    all_items_delta: float
    all_items_cosine: float


def measure_result(
    result: SelectionResult, config: SelectionConfig
) -> tuple[list[float], list[float]]:
    """Per-item Delta(tau_i, pi(S_i)) and cosine(tau_i, pi(S_i))."""
    space = build_space(result.instance, config)
    deltas: list[float] = []
    cosines: list[float] = []
    for item_index in range(result.instance.num_items):
        tau = space.opinion_vector(result.instance.reviews[item_index])
        pi = space.opinion_vector(result.selected_reviews(item_index))
        deltas.append(squared_l2(tau, pi))
        cosines.append(cosine_similarity(tau, pi))
    return deltas, cosines


def information_loss_curve(
    instances: Sequence[ComparisonInstance],
    selector: Selector,
    config: SelectionConfig,
    budgets: Sequence[int] = (3, 5, 10, 15, 20),
) -> list[InformationLossPoint]:
    """Fig.-11 curves: mean loss vs budget, target-only and all-items."""
    points: list[InformationLossPoint] = []
    for budget in budgets:
        budget_config = config.with_(max_reviews=budget)
        target_deltas: list[float] = []
        target_cosines: list[float] = []
        all_deltas: list[float] = []
        all_cosines: list[float] = []
        for instance in instances:
            result = selector.select(instance, budget_config)
            deltas, cosines = measure_result(result, budget_config)
            target_deltas.append(deltas[0])
            target_cosines.append(cosines[0])
            all_deltas.extend(deltas)
            all_cosines.extend(cosines)
        points.append(
            InformationLossPoint(
                max_reviews=budget,
                target_delta=_mean(target_deltas),
                target_cosine=_mean(target_cosines),
                all_items_delta=_mean(all_deltas),
                all_items_cosine=_mean(all_cosines),
            )
        )
    return points


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
