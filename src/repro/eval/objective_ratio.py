"""Table-5 measurement: approximation quality of TargetHkS solvers.

For every problem instance we build the §3.1 similarity graph from the
CompaReSetS+ selections, solve TargetHkS with the (time-limited) exact
ILP, the greedy heuristic, and the random baseline, and report

* the percentage of instances the ILP solved to proven optimality, and
* the objective-value ratio (Eq. 8):
  (Omega_approx - Omega_ILP) / Omega_ILP, where Omega sums the solution
  weights over all instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult
from repro.graph.similarity import build_item_graph
from repro.graph.target_hks import solve_greedy, solve_ilp, solve_random
from repro.resilience.deadline import Deadline, resolve_deadline


@dataclass(frozen=True, slots=True)
class HksComparison:
    """Aggregated Table-5 row for one (dataset, k) setting.

    ``backend_counts`` records solve provenance as sorted
    ``(backend, count)`` pairs — informative under ``backend="fallback"``
    where different instances may be answered by different stages of the
    chain.
    """

    k: int
    num_instances: int
    optimal_percent: float
    greedy_ratio: float
    random_ratio: float
    ilp_objective: float
    greedy_objective: float
    random_objective: float
    backend_counts: tuple[tuple[str, int], ...] = ()


def compare_hks_solvers(
    results: Sequence[SelectionResult],
    config: SelectionConfig,
    k: int,
    time_limit: float = 60.0,
    backend: str = "milp",
    seed: int = 0,
    deadline: Deadline | float | None = None,
) -> HksComparison:
    """Run ILP/greedy/random on every instance graph and aggregate Eq. 8.

    Instances with fewer than k items are skipped (the narrowing problem
    is vacuous there), matching the paper's per-k instance filtering.

    ``backend="fallback"`` solves the exact column through a
    :class:`~repro.resilience.fallback.FallbackChain`
    (MILP -> branch and bound -> greedy), degrading per instance on
    solver error or an exhausted ``deadline`` and recording which stage
    answered in ``backend_counts``.
    """
    overall = resolve_deadline(deadline)
    chain = None
    if backend == "fallback":
        from repro.resilience.fallback import FallbackChain

        chain = FallbackChain(time_limit=time_limit)
    rng = np.random.default_rng(seed)
    ilp_total = 0.0
    greedy_total = 0.0
    random_total = 0.0
    optimal_count = 0
    used = 0
    backend_counts: dict[str, int] = {}
    for result in results:
        if result.instance.num_items < k:
            continue
        graph = build_item_graph(result, config)
        if chain is not None:
            outcome = chain.solve(graph.weights, k, deadline=overall)
            ilp = outcome.solution
            used_backend = outcome.backend
        else:
            ilp = solve_ilp(
                graph.weights,
                k,
                time_limit=time_limit,
                backend=backend,
                deadline=overall,
            )
            used_backend = backend
        greedy = solve_greedy(graph.weights, k)
        random_solution = solve_random(graph.weights, k, rng)
        ilp_total += ilp.weight
        greedy_total += greedy.weight
        random_total += random_solution.weight
        optimal_count += int(ilp.proven_optimal)
        backend_counts[used_backend] = backend_counts.get(used_backend, 0) + 1
        used += 1

    counts = tuple(sorted(backend_counts.items()))
    if used == 0 or ilp_total == 0.0:
        return HksComparison(
            k=k,
            num_instances=used,
            optimal_percent=0.0,
            greedy_ratio=0.0,
            random_ratio=0.0,
            ilp_objective=ilp_total,
            greedy_objective=greedy_total,
            random_objective=random_total,
            backend_counts=counts,
        )
    return HksComparison(
        k=k,
        num_instances=used,
        optimal_percent=100.0 * optimal_count / used,
        greedy_ratio=(greedy_total - ilp_total) / ilp_total,
        random_ratio=(random_total - ilp_total) / ilp_total,
        ilp_objective=ilp_total,
        greedy_objective=greedy_total,
        random_objective=random_total,
        backend_counts=counts,
    )
