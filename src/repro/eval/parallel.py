"""Parallel instance solving.

§4.1.1 notes that "every target item corresponds to an independent
instance of the problem [and] solving multiple target items can be done
in parallel".  This module provides that: a process-pool map over
instances for any registered selector.  Selectors are re-instantiated in
each worker from their registry name, so nothing unpicklable crosses the
process boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, make_selector
from repro.data.instances import ComparisonInstance


def _solve_one(
    payload: tuple[str, dict, ComparisonInstance, SelectionConfig, int]
) -> SelectionResult:
    """Worker entry point: rebuild the selector and solve one instance."""
    import numpy as np

    name, kwargs, instance, config, seed = payload
    selector = make_selector(name, **kwargs)
    return selector.select(instance, config, rng=np.random.default_rng(seed))


def select_parallel(
    selector_name: str,
    instances: Sequence[ComparisonInstance],
    config: SelectionConfig,
    max_workers: int | None = None,
    seed: int = 0,
    selector_kwargs: dict | None = None,
) -> list[SelectionResult]:
    """Solve every instance with ``selector_name`` across processes.

    Results come back in instance order.  ``seed + index`` seeds each
    worker's random stream, so stochastic selectors (Random) stay
    reproducible regardless of scheduling; deterministic selectors ignore
    the stream entirely.  With one instance (or ``max_workers=1``) the
    work runs in-process to avoid pool overhead.
    """
    selector_kwargs = selector_kwargs or {}
    payloads = [
        (selector_name, selector_kwargs, instance, config, seed + index)
        for index, instance in enumerate(instances)
    ]
    if len(payloads) <= 1 or max_workers == 1:
        return [_solve_one(payload) for payload in payloads]

    workers = max_workers or min(len(payloads), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_solve_one, payloads))
