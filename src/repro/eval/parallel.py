"""Resilient parallel instance solving.

§4.1.1 notes that "every target item corresponds to an independent
instance of the problem [and] solving multiple target items can be done
in parallel".  This module provides that — and keeps the property that a
single bad instance cannot sink the whole batch.  Instances are
submitted individually (``submit``/``wait`` rather than ``pool.map``,
whose iteration raises away every result once one worker fails), each
with:

* per-instance exception capture and a configurable ``on_error`` policy:
  ``"raise"`` (propagate, the legacy behaviour), ``"skip"`` (lose only
  that instance), or ``"degrade"`` (substitute a cheap greedy baseline
  selection, flagged via ``SelectionResult.degraded``);
* retry with deterministic jittered backoff — every attempt re-seeds the
  selector with the *same* per-instance seed, so stochastic selectors
  (Random) remain reproducible however many retries it takes;
* an optional per-instance ``timeout`` and an overall ``deadline``
  (:mod:`repro.resilience.deadline`): a hung solve is cut off at the
  runner and handled by the error policy.  (The stuck worker process is
  abandoned, not killed — pool shutdown waits for it — so timeouts bound
  *result latency*, not worker CPU.)

Zero-copy fan-out: the run's corpus (the instance list + config) is
published once to a module-level store keyed by a content fingerprint.
Workers receive it through the pool initializer — inherited for free
under the ``fork`` start method, shipped once per *worker* (never per
task) otherwise — and each task carries only ``(fingerprint, index)``.
Workers return light ``(selections, algorithm, degraded, timings)``
records that the parent re-attaches to its own instance objects, so no
corpus bytes are pickled in either direction.  Selectors are
re-instantiated in each worker from their registry name, so nothing
unpicklable crosses the process boundary.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, make_selector
from repro.data.instances import ComparisonInstance
from repro.resilience.deadline import Deadline, DeadlineExceeded, resolve_deadline
from repro.resilience.retry import RetryPolicy

# Imported for its side effect: registers the fault-injection selector so
# freshly spawned pool workers can rebuild it from its registry name.
from repro.resilience import faults as _faults  # noqa: F401

ERROR_POLICIES = ("raise", "skip", "degrade")
DEFAULT_DEGRADE_SELECTOR = "CompaReSetS_Greedy"


@dataclass(frozen=True, slots=True)
class _RunSpec:
    """Everything a worker needs to solve any instance of one run."""

    selector_name: str
    selector_kwargs: dict
    instances: tuple[ComparisonInstance, ...]
    config: SelectionConfig
    seed: int


# One entry per in-flight run, keyed by fingerprint.  In the parent it is
# populated *before* the pool exists, so fork-started workers inherit it
# via copy-on-write and tasks never carry the corpus; under spawn (or
# forkserver) the initializer fills it once per worker process.
_WORKER_STORE: dict[str, _RunSpec] = {}

# A light worker result: (selections, algorithm, degraded, timings).  The
# parent owns the instance objects already, so shipping them back would
# be pure pickling overhead.
_ResultRecord = tuple[tuple[tuple[int, ...], ...], str, bool, dict | None]


def _spec_fingerprint(spec: _RunSpec) -> str:
    """Content fingerprint identifying one run in the worker store."""
    payload = repr(
        (
            spec.selector_name,
            sorted(spec.selector_kwargs.items(), key=lambda kv: kv[0]),
            spec.config,
            [instance.target.product_id for instance in spec.instances],
            [len(reviews) for instance in spec.instances for reviews in instance.reviews],
            spec.seed,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _worker_init(fingerprint: str, shipped: _RunSpec | None) -> None:
    """Pool initializer: install the run spec (once per worker process).

    ``shipped`` is ``None`` under the fork start method — the store was
    inherited from the parent at fork time and nothing needs to cross
    the pipe at all.
    """
    if shipped is not None:
        _WORKER_STORE[fingerprint] = shipped


def _solve_spec(spec: _RunSpec, index: int) -> SelectionResult:
    """Solve one instance of a run (shared by inline and pool paths)."""
    import numpy as np

    selector = make_selector(spec.selector_name, **spec.selector_kwargs)
    return selector.select(
        spec.instances[index],
        spec.config,
        rng=np.random.default_rng(spec.seed + index),
    )


def _solve_task(task: tuple[str, int]) -> _ResultRecord:
    """Worker entry point: look the run up by fingerprint, return a light record."""
    fingerprint, index = task
    spec = _WORKER_STORE[fingerprint]
    result = _solve_spec(spec, index)
    return (result.selections, result.algorithm, result.degraded, result.timings)


def _attach_instance(spec: _RunSpec, index: int, record: _ResultRecord) -> SelectionResult:
    """Rebuild a full result around the parent's own instance object."""
    selections, algorithm, degraded, timings = record
    return SelectionResult(
        instance=spec.instances[index],
        selections=tuple(tuple(int(i) for i in s) for s in selections),
        algorithm=algorithm,
        degraded=degraded,
        timings=timings,
    )


@dataclass(frozen=True, slots=True)
class InstanceOutcome:
    """What happened to one instance in a parallel run.

    ``status`` is ``"ok"`` (solved normally), ``"degraded"`` (baseline
    substituted after failure/timeout), or ``"skipped"`` (lost under the
    skip policy).  ``error`` keeps the last failure message; ``attempts``
    counts solve attempts actually made (0 if the overall deadline
    expired before the instance ever ran).
    """

    index: int
    target_id: str
    result: SelectionResult | None
    status: str
    attempts: int
    error: str | None = None
    seconds: float = 0.0


@dataclass(frozen=True, slots=True)
class ParallelRun:
    """All per-instance outcomes of one resilient parallel run."""

    outcomes: tuple[InstanceOutcome, ...]

    @property
    def results(self) -> list[SelectionResult]:
        """Successful (including degraded) results, in instance order."""
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def num_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def num_degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "degraded")

    @property
    def num_skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def errors(self) -> dict[str, str]:
        """target_id -> last error message, for every non-ok instance."""
        return {
            o.target_id: o.error for o in self.outcomes if o.error is not None
        }


@dataclass(slots=True)
class _Pending:
    """Book-keeping for one not-yet-settled instance."""

    index: int
    attempt: int = 0  # attempts completed so far
    future: Future | None = None
    started_at: float = 0.0
    resubmit_at: float = 0.0  # backoff: not before this monotonic time
    last_error: str | None = None
    first_started_at: float | None = None


def _degrade(spec: _RunSpec, index: int, degrade_selector: str) -> SelectionResult:
    """The cheap substitute selection for the ``"degrade"`` policy."""
    import numpy as np

    result = make_selector(degrade_selector).select(
        spec.instances[index],
        spec.config,
        rng=np.random.default_rng(spec.seed + index),
    )
    return replace(result, degraded=True)


def run_parallel(
    selector_name: str,
    instances: Sequence[ComparisonInstance],
    config: SelectionConfig,
    *,
    max_workers: int | None = None,
    seed: int = 0,
    selector_kwargs: dict | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    deadline: Deadline | float | None = None,
    degrade_selector: str = DEFAULT_DEGRADE_SELECTOR,
) -> ParallelRun:
    """Solve every instance with ``selector_name``, resiliently.

    Returns a :class:`ParallelRun` with one :class:`InstanceOutcome` per
    instance, in instance order.  ``seed + index`` seeds each attempt of
    each instance — retries re-seed identically, so results are
    independent of how many attempts or which worker produced them.

    ``timeout`` bounds one attempt's wall clock (pool mode only: inline
    execution cannot preempt a running selector).  ``deadline`` bounds
    the whole run; instances that never start before it expires are
    settled by ``on_error`` with a "deadline exceeded" error.
    """
    if on_error not in ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
        )
    selector_kwargs = selector_kwargs or {}
    # Fail fast on unknown selectors / bad kwargs rather than from workers.
    make_selector(selector_name, **selector_kwargs)
    retry = retry or RetryPolicy.none()
    overall = resolve_deadline(deadline)

    spec = _RunSpec(
        selector_name=selector_name,
        selector_kwargs=selector_kwargs,
        instances=tuple(instances),
        config=config,
        seed=seed,
    )
    if not spec.instances:
        return ParallelRun(outcomes=())

    def settle_failure(state: _Pending, error: str) -> InstanceOutcome:
        target_id = spec.instances[state.index].target.product_id
        elapsed = (
            time.monotonic() - state.first_started_at
            if state.first_started_at is not None
            else 0.0
        )
        if on_error == "degrade":
            return InstanceOutcome(
                index=state.index,
                target_id=target_id,
                result=_degrade(spec, state.index, degrade_selector),
                status="degraded",
                attempts=state.attempt,
                error=error,
                seconds=elapsed,
            )
        return InstanceOutcome(
            index=state.index,
            target_id=target_id,
            result=None,
            status="skipped",
            attempts=state.attempt,
            error=error,
            seconds=elapsed,
        )

    if len(spec.instances) == 1 or max_workers == 1:
        outcomes = _run_inline(spec, retry, on_error, overall, settle_failure)
    else:
        workers = max_workers or min(len(spec.instances), os.cpu_count() or 1)
        outcomes = _run_pool(
            spec, workers, timeout, retry, on_error, overall, settle_failure
        )
    return ParallelRun(outcomes=tuple(sorted(outcomes, key=lambda o: o.index)))


def _run_inline(
    spec: _RunSpec,
    retry: RetryPolicy,
    on_error: str,
    overall: Deadline,
    settle_failure,
) -> list[InstanceOutcome]:
    """Sequential execution (single worker): same policies, no preemption."""
    outcomes: list[InstanceOutcome] = []
    for index in range(len(spec.instances)):
        state = _Pending(index=index)
        target_id = spec.instances[index].target.product_id
        started = time.monotonic()
        state.first_started_at = started
        while True:
            if overall.expired():
                if on_error == "raise":
                    raise DeadlineExceeded(
                        f"overall deadline expired before instance {index}"
                    )
                outcomes.append(settle_failure(state, "deadline exceeded"))
                break
            delay = min(retry.delay_before(state.attempt + 1, seed=spec.seed + index),
                        overall.remaining())
            if delay > 0:
                time.sleep(delay)
            try:
                result = _solve_spec(spec, index)
            except Exception as exc:
                state.attempt += 1
                state.last_error = f"{type(exc).__name__}: {exc}"
                if state.attempt < retry.max_attempts:
                    continue
                if on_error == "raise":
                    raise
                outcomes.append(settle_failure(state, state.last_error))
                break
            else:
                state.attempt += 1
                outcomes.append(
                    InstanceOutcome(
                        index=index,
                        target_id=target_id,
                        result=result,
                        status="ok",
                        attempts=state.attempt,
                        seconds=time.monotonic() - started,
                    )
                )
                break
    return outcomes


def _run_pool(
    spec: _RunSpec,
    workers: int,
    timeout: float | None,
    retry: RetryPolicy,
    on_error: str,
    overall: Deadline,
    settle_failure,
) -> list[InstanceOutcome]:
    """submit/wait event loop with capture, retries, timeouts, deadline."""
    outcomes: list[InstanceOutcome] = []
    queued = [_Pending(index=i) for i in range(len(spec.instances))]
    waiting: list[_Pending] = []  # in backoff, not yet resubmitted
    running: dict[Future, _Pending] = {}
    abandoned = False  # did we give up on a still-running worker?

    fingerprint = _spec_fingerprint(spec)
    # Publish the corpus before the pool exists: fork-started workers
    # inherit the store for free; any other start method gets the spec
    # through the initializer, once per worker instead of once per task.
    _WORKER_STORE[fingerprint] = spec
    shipped = None if multiprocessing.get_start_method() == "fork" else spec
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(fingerprint, shipped),
    )
    try:
        def submit(state: _Pending) -> None:
            now = time.monotonic()
            state.started_at = now
            if state.first_started_at is None:
                state.first_started_at = now
            state.future = pool.submit(_solve_task, (fingerprint, state.index))
            running[state.future] = state

        def fail_or_retry(state: _Pending, error: BaseException) -> None:
            state.last_error = f"{type(error).__name__}: {error}"
            if state.attempt < retry.max_attempts:
                state.resubmit_at = time.monotonic() + retry.delay_before(
                    state.attempt + 1, seed=spec.seed + state.index
                )
                waiting.append(state)
            elif on_error == "raise":
                raise error
            else:
                outcomes.append(settle_failure(state, state.last_error))

        for state in queued:
            submit(state)
        queued.clear()

        while running or waiting:
            now = time.monotonic()
            if overall.expired():
                # Settle everything unfinished under the error policy
                # (abandoning still-running workers to pool shutdown).
                unfinished = list(running.values()) + waiting
                abandoned = abandoned or bool(running)
                running.clear()
                waiting.clear()
                if on_error == "raise":
                    raise DeadlineExceeded(
                        f"overall deadline expired with "
                        f"{len(unfinished)} instances unfinished"
                    )
                for state in unfinished:
                    outcomes.append(settle_failure(state, "deadline exceeded"))
                break

            # Resubmit retries whose backoff has elapsed.
            due = [s for s in waiting if s.resubmit_at <= now]
            for state in due:
                waiting.remove(state)
                submit(state)

            # How long may we block?  Until the next per-instance timeout,
            # the next retry becomes due, or the overall deadline.
            ticks = [0.5]
            if timeout is not None:
                ticks.extend(
                    max(0.0, s.started_at + timeout - now)
                    for s in running.values()
                )
            ticks.extend(max(0.0, s.resubmit_at - now) for s in waiting)
            if overall.bounded:
                ticks.append(overall.remaining())
            block = max(0.01, min(ticks)) if running else max(0.0, min(ticks))

            done: set[Future] = set()
            if running:
                done, _ = wait(
                    list(running), timeout=block, return_when=FIRST_COMPLETED
                )
            elif block > 0:
                time.sleep(block)

            for future in done:
                state = running.pop(future)
                state.attempt += 1
                error = future.exception()
                if error is None:
                    outcomes.append(
                        InstanceOutcome(
                            index=state.index,
                            target_id=spec.instances[state.index].target.product_id,
                            result=_attach_instance(
                                spec, state.index, future.result()
                            ),
                            status="ok",
                            attempts=state.attempt,
                            seconds=time.monotonic() - state.first_started_at,
                        )
                    )
                else:
                    fail_or_retry(state, error)

            # Per-instance timeouts: a future past its budget is abandoned
            # (it cannot be preempted) and settled by the error policy.
            # Timeouts are not retried — a deterministic hang would only
            # hang again and burn the remaining budget.
            if timeout is not None:
                now = time.monotonic()
                overdue = [
                    (future, state)
                    for future, state in running.items()
                    if now - state.started_at >= timeout
                ]
                for future, state in overdue:
                    if future.cancel():
                        # Never started — it sat in the pool queue, which
                        # doesn't count against its budget.  Resubmit with
                        # a fresh clock.
                        running.pop(future)
                        submit(state)
                        continue
                    running.pop(future)
                    state.attempt += 1
                    abandoned = True
                    message = f"timed out after {timeout:.3f}s"
                    if on_error == "raise":
                        raise DeadlineExceeded(
                            f"instance {state.index} {message}"
                        )
                    outcomes.append(settle_failure(state, message))
    finally:
        # A clean run waits for the pool; once any worker was abandoned
        # (timeout / expired deadline) we return immediately and let the
        # stuck workers drain in the background — their results are
        # discarded.  (The interpreter still joins them at exit.)
        pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        _WORKER_STORE.pop(fingerprint, None)
    return outcomes


def select_parallel(
    selector_name: str,
    instances: Sequence[ComparisonInstance],
    config: SelectionConfig,
    max_workers: int | None = None,
    seed: int = 0,
    selector_kwargs: dict | None = None,
    *,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    deadline: Deadline | float | None = None,
    degrade_selector: str = DEFAULT_DEGRADE_SELECTOR,
) -> list[SelectionResult]:
    """Solve every instance with ``selector_name`` across processes.

    Results come back in instance order; under ``on_error="skip"``
    failed instances are simply absent.  ``seed + index`` seeds each
    worker's random stream, so stochastic selectors (Random) stay
    reproducible regardless of scheduling or retries; deterministic
    selectors ignore the stream entirely.  With one instance (or
    ``max_workers=1``) the work runs in-process to avoid pool overhead.

    This is the thin list-of-results façade; :func:`run_parallel`
    returns the full per-instance outcome report.
    """
    run = run_parallel(
        selector_name,
        instances,
        config,
        max_workers=max_workers,
        seed=seed,
        selector_kwargs=selector_kwargs,
        timeout=timeout,
        retry=retry,
        on_error=on_error,
        deadline=deadline,
        degrade_selector=degrade_selector,
    )
    return run.results
