"""Terminal line plots for the figure benchmarks.

The paper's figures are line charts; the benchmark harness regenerates
their data as tables (:mod:`repro.eval.reporting`) and, via this module,
as character-grid plots so a terminal run shows the curve shapes
directly.  No plotting dependency is available offline, hence the ASCII
renderer.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_MARKERS = "ox+*#@%&"


def ascii_line_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_format: str = "{:.3f}",
) -> str:
    """Render series as an ASCII scatter/line chart.

    Each series gets a marker; points are placed on a ``width x height``
    grid scaled to the data range, with y-axis labels on the left and the
    x range annotated below.  NaNs are skipped.
    """
    if not series:
        raise ValueError("at least one series is required")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for {len(x_values)} x values"
            )
    if len(x_values) < 2:
        raise ValueError("need at least two x values to draw a line plot")

    xs = [float(x) for x in x_values]
    all_y = [
        float(v)
        for values in series.values()
        for v in values
        if not math.isnan(float(v))
    ]
    if not all_y:
        raise ValueError("all series values are NaN")

    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(all_y), max(all_y)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    # A little headroom keeps extreme points off the border.
    pad = 0.05 * (y_high - y_low)
    y_low -= pad
    y_high += pad

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid_row = height - 1 - row
        current = grid[grid_row][column]
        grid[grid_row][column] = "8" if current not in (" ", marker) else marker

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, values):
            y = float(y)
            if not math.isnan(y):
                place(x, y, marker)

    label_top = y_format.format(y_high)
    label_bottom = y_format.format(y_low)
    label_width = max(len(label_top), len(label_bottom))

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = label_top.rjust(label_width)
        elif row_index == height - 1:
            label = label_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  x: {x_low:g} .. {x_high:g}   ('8' marks overlapping series)"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
