"""Fixed-width text tables for benchmark output.

The benchmark harness regenerates the paper's tables as plain text so a
run's stdout can be compared line-by-line against the paper.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(format_row(headers))
    lines.append(format_row(["-" * width for width in widths]))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render figure data as a table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            row.append(series[name][index])
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
