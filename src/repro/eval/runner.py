"""Shared experiment orchestration.

Every experiment follows the same skeleton: generate (or load) a category
corpus, extract a sample of comparison instances, run one or more
selectors on each, and aggregate measurements.  This module centralises
that loop, with corpus caching so a benchmark session generates each
category once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from collections.abc import Sequence

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, Selector, make_selector
from repro.data.corpus import Corpus
from repro.data.instances import ComparisonInstance, build_instances
from repro.data.synthetic import generate_corpus
from repro.resilience.deadline import Deadline, DeadlineExceeded, resolve_deadline


@dataclass(frozen=True, slots=True)
class EvaluationSettings:
    """Workload shape shared by the paper-reproduction experiments."""

    categories: tuple[str, ...] = ("Cellphone", "Toy", "Clothing")
    scale: float = 0.6
    seed: int = 7
    max_instances: int = 30
    max_comparisons: int = 10
    min_reviews: int = 3
    budgets: tuple[int, ...] = (3, 5, 10)
    # mu = 0.01 is the winner of the Fig.-5b sweep on the synthetic corpora
    # (the paper's sweep on the real data selected 0.1); lambda = 1 matches
    # the paper's tuned value.
    config: SelectionConfig = field(
        default_factory=lambda: SelectionConfig(lam=1.0, mu=0.01)
    )


@lru_cache(maxsize=16)
def cached_corpus(category: str, scale: float, seed: int) -> Corpus:
    """Generate (once) the synthetic corpus for a category."""
    return generate_corpus(category, scale=scale, seed=seed)


def prepare_instances(
    settings: EvaluationSettings, category: str
) -> list[ComparisonInstance]:
    """The sampled problem instances of one category under ``settings``."""
    corpus = cached_corpus(category, settings.scale, settings.seed)
    return list(
        build_instances(
            corpus,
            max_instances=settings.max_instances,
            max_comparisons=settings.max_comparisons,
            min_reviews=settings.min_reviews,
        )
    )


@dataclass(frozen=True, slots=True)
class SelectorRun:
    """All results of one selector over an instance sample, with timing."""

    algorithm: str
    results: tuple[SelectionResult, ...]
    seconds_per_instance: tuple[float, ...]

    @property
    def mean_seconds(self) -> float:
        if not self.seconds_per_instance:
            return 0.0
        return sum(self.seconds_per_instance) / len(self.seconds_per_instance)


def run_selector(
    selector: Selector | str,
    instances: Sequence[ComparisonInstance],
    config: SelectionConfig,
    seed: int = 0,
    *,
    deadline: Deadline | float | None = None,
    journal=None,
) -> SelectorRun:
    """Run ``selector`` on every instance, recording wall time per instance.

    Checkpointing: when a journal is active (passed explicitly, or
    installed ambiently with
    :func:`repro.experiments.persist.checkpointing`), every completed
    instance is streamed to it — result, wall time, and the post-call
    RNG state — and already-journaled instances are replayed instead of
    recomputed.  Replaying restores the RNG stream, so a resumed run is
    byte-identical to an uninterrupted one even for stochastic
    selectors.

    Deadlines: an explicit ``deadline`` (or the ambient
    :func:`~repro.resilience.deadline.deadline_scope`) is checked
    between instances; running out raises
    :class:`~repro.resilience.deadline.DeadlineExceeded` — with a
    journal active, completed work is already checkpointed, so a rerun
    with a fresh budget resumes where this one stopped.
    """
    if isinstance(selector, str):
        selector = make_selector(selector)
    overall = resolve_deadline(deadline)
    if journal is None:
        # Lazy import: persist sits in the experiments layer above us.
        from repro.experiments.persist import active_journal

        journal = active_journal()
    key = None
    if journal is not None:
        from repro.experiments.persist import run_key

        key = run_key(selector.name, config, seed, instances)

    rng = np.random.default_rng(seed)
    results: list[SelectionResult] = []
    timings: list[float] = []
    for index, instance in enumerate(instances):
        if overall.expired():
            raise DeadlineExceeded(
                f"time budget exhausted after {index} of {len(instances)} "
                f"instances of {selector.name}"
            )
        if journal is not None:
            entry = journal.get(key, index)
            if entry is not None:
                results.append(entry.result)
                timings.append(entry.seconds)
                if entry.rng_state is not None:
                    rng.bit_generator.state = entry.rng_state
                continue
        start = time.perf_counter()
        result = selector.select(instance, config, rng=rng)
        elapsed = time.perf_counter() - start
        results.append(result)
        timings.append(elapsed)
        if journal is not None:
            journal.append(
                key, index, result, elapsed, rng_state=rng.bit_generator.state
            )
    return SelectorRun(
        algorithm=selector.name,
        results=tuple(results),
        seconds_per_instance=tuple(timings),
    )


def evaluate_selectors(
    selector_names: Sequence[str],
    instances: Sequence[ComparisonInstance],
    config: SelectionConfig,
    seed: int = 0,
    *,
    deadline: Deadline | float | None = None,
    journal=None,
) -> dict[str, SelectorRun]:
    """Run several selectors over the same instances (same random stream seed)."""
    return {
        name: run_selector(
            name, instances, config, seed=seed, deadline=deadline, journal=journal
        )
        for name in selector_names
    }
