"""Statistical utilities: paired t-test and Krippendorff's alpha.

The paper marks Table-3 improvements with a paired significance test
(p < 0.05) and assesses user-study annotator agreement with
Krippendorff's alpha-reliability (Krippendorff 2011), which we implement
from scratch for interval-scaled Likert data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True, slots=True)
class PairedTestResult:
    """Outcome of a paired t-test between two score series."""

    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def paired_t_test(first: Sequence[float], second: Sequence[float]) -> PairedTestResult:
    """Two-sided paired t-test on per-instance scores.

    Returns (nan, 1.0) when fewer than two pairs or all differences are
    zero — i.e., never claims significance on degenerate input.
    """
    if len(first) != len(second):
        raise ValueError(f"length mismatch: {len(first)} vs {len(second)}")
    if len(first) < 2:
        return PairedTestResult(statistic=float("nan"), p_value=1.0)
    differences = np.asarray(first, dtype=float) - np.asarray(second, dtype=float)
    if np.allclose(differences, 0.0):
        return PairedTestResult(statistic=float("nan"), p_value=1.0)
    statistic, p_value = scipy_stats.ttest_rel(first, second)
    return PairedTestResult(statistic=float(statistic), p_value=float(p_value))


def krippendorff_alpha(
    ratings: Sequence[Sequence[float | None]],
    metric: str = "interval",
) -> float:
    """Krippendorff's alpha for a units x raters reliability matrix.

    ``ratings[u][r]`` is rater r's value for unit u, or None when missing.
    ``metric`` is ``"interval"`` (squared difference — right for Likert
    scales treated as equidistant) or ``"nominal"`` (0/1 disagreement).

    Returns 1.0 for perfect agreement, ~0 for chance-level agreement, and
    negative values for systematic disagreement.  NaN when fewer than two
    pairable values exist or all values are identical with no variation
    to attribute (alpha is undefined; by convention we return 1.0 when
    every pairable value is identical).
    """
    if metric == "interval":
        def delta_squared(a: float, b: float) -> float:
            return (a - b) ** 2
    elif metric == "nominal":
        def delta_squared(a: float, b: float) -> float:
            return 0.0 if a == b else 1.0
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'interval' or 'nominal'")

    # Collect pairable values: units with at least two non-missing ratings.
    pairable_units: list[list[float]] = []
    for unit in ratings:
        values = [float(v) for v in unit if v is not None]
        if len(values) >= 2:
            pairable_units.append(values)
    total_values = sum(len(values) for values in pairable_units)
    if total_values < 2:
        return float("nan")

    all_values = [v for values in pairable_units for v in values]
    if len(set(all_values)) == 1:
        return 1.0  # perfect agreement, zero expected disagreement

    # Observed disagreement: within-unit pairs, weighted by 1/(m_u - 1).
    observed = 0.0
    for values in pairable_units:
        m = len(values)
        unit_sum = sum(
            delta_squared(values[i], values[j])
            for i in range(m - 1)
            for j in range(i + 1, m)
        )
        observed += (2.0 * unit_sum) / (m - 1)
    observed /= total_values

    # Expected disagreement: all cross pairs of pairable values.
    expected_sum = sum(
        delta_squared(all_values[i], all_values[j])
        for i in range(total_values - 1)
        for j in range(i + 1, total_values)
    )
    expected = (2.0 * expected_sum) / (total_values * (total_values - 1))
    if expected == 0.0:
        return 1.0
    alpha = 1.0 - observed / expected
    return alpha if math.isfinite(alpha) else float("nan")
