"""Simulated user study (Table 7).

The paper recruits 15 human annotators, shows each 9 blind examples per
algorithm (3 products x 3 reviews), and asks three five-point Likert
questions: Q1 similarity among products' reviews, Q2 informativeness, and
Q3 helpfulness for comparison.  Humans are unavailable offline, so this
module simulates the survey while keeping the *pipeline* identical:
examples are built from real selection results, presented blind, rated by
synthetic annotators, and aggregated with Krippendorff's alpha.

Annotator model — each response is

    clip(round(signal + bias_r + noise), 1, 5)

where the per-question *signal* is an affine map of a measurable quantity
of the example (Q1: among-items ROUGE-L; Q2: opinion coverage
1 - normalised information loss; Q3: fraction of aspects shared by all
items), ``bias_r`` is a fixed per-annotator offset, and the noise standard
deviation *shrinks with signal clarity*: examples whose reviews really do
discuss the same aspects are easier to rate consistently.  That last
coupling is what lets agreement (alpha) discriminate between algorithms,
mirroring the paper's observation that CompaReSetS+ earns both higher
scores and higher alpha.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space
from repro.eval.alignment import among_items_alignment
from repro.eval.information_loss import measure_result
from repro.eval.stats import krippendorff_alpha


@dataclass(frozen=True, slots=True)
class UserStudyOutcome:
    """Mean Likert scores and agreement for one algorithm."""

    algorithm: str
    q1_similarity: float
    q2_informativeness: float
    q3_comparison: float
    alpha: float
    num_examples: int
    num_annotators: int


def _shared_aspect_fraction(result: SelectionResult) -> float:
    """Fraction of the union of selected aspects shared by every item."""
    per_item: list[set[str]] = []
    for item_index in range(result.instance.num_items):
        aspects: set[str] = set()
        for review in result.selected_reviews(item_index):
            aspects.update(review.aspects)
        per_item.append(aspects)
    union = set().union(*per_item) if per_item else set()
    if not union:
        return 0.0
    shared = set(per_item[0])
    for aspects in per_item[1:]:
        shared &= aspects
    return len(shared) / len(union)


def _signals(result: SelectionResult, config: SelectionConfig) -> tuple[float, float, float]:
    """Raw [0, 1] signals for Q1, Q2, Q3 from one example."""
    alignment = among_items_alignment(result)
    q1 = alignment.rouge_l
    deltas, cosines = measure_result(result, config)
    q2 = float(np.mean(cosines)) if cosines else 0.0
    q3 = _shared_aspect_fraction(result)
    return q1, q2, q3


def _likert(signal: float, low: float, high: float) -> float:
    """Affine map of a [0, 1]-ish signal onto the 1..5 Likert range."""
    if high <= low:
        raise ValueError("high must exceed low")
    scaled = 1.0 + 4.0 * (signal - low) / (high - low)
    return float(np.clip(scaled, 1.0, 5.0))


def run_user_study(
    examples_by_algorithm: dict[str, Sequence[SelectionResult]],
    config: SelectionConfig,
    num_annotators: int = 5,
    seed: int = 42,
    annotator_bias_sd: float = 0.25,
    base_noise_sd: float = 1.1,
) -> list[UserStudyOutcome]:
    """Simulate the blind survey and aggregate Table-7 rows.

    ``examples_by_algorithm`` maps each algorithm name to its examples
    (the paper uses 9: three per category).  Examples are shuffled into a
    blind order before rating so annotator bias cannot track algorithms.
    """
    rng = np.random.default_rng(seed)
    # One shared bias per annotator across all algorithms (same people).
    biases = rng.normal(0.0, annotator_bias_sd, size=num_annotators)

    # Blind presentation: flatten, shuffle, rate, then regroup.
    flattened: list[tuple[str, SelectionResult]] = [
        (algorithm, example)
        for algorithm, examples in examples_by_algorithm.items()
        for example in examples
    ]
    order = rng.permutation(len(flattened))

    per_algorithm_scores: dict[str, dict[str, list[list[float]]]] = {
        algorithm: {"q1": [], "q2": [], "q3": []}
        for algorithm in examples_by_algorithm
    }

    for position in order:
        algorithm, example = flattened[int(position)]
        q1_signal, q2_signal, q3_signal = _signals(example, config)
        # Q2 (informativeness) sits higher for every method in the paper;
        # map it from a wider band so means land above Q1/Q3.
        targets = {
            "q1": _likert(q1_signal, low=0.02, high=0.30),
            "q2": _likert(q2_signal, low=0.30, high=1.05),
            # Even unrelated reviews carry *some* comparative information
            # (the paper's Random baseline still scores 3.38 on Q3), hence
            # the negative low end of the band.
            "q3": _likert(q3_signal, low=-0.45, high=0.75),
        }
        # Clear examples (reviews visibly discussing the same aspects, i.e.
        # a high shared-aspect signal) are rated consistently; muddled ones
        # attract near-chance ratings.  This is the behavioural coupling
        # that lets alpha discriminate between algorithms.
        clarity = float(np.clip(1.4 * q3_signal + 0.3 * q1_signal / 0.3, 0.0, 1.0))
        noise_sd = base_noise_sd * float(np.clip(1.0 - clarity, 0.2, 1.0))
        for question, target in targets.items():
            responses = [
                float(
                    np.clip(
                        round(target + biases[r] + rng.normal(0.0, noise_sd)),
                        1,
                        5,
                    )
                )
                for r in range(num_annotators)
            ]
            per_algorithm_scores[algorithm][question].append(responses)

    outcomes: list[UserStudyOutcome] = []
    for algorithm, questions in per_algorithm_scores.items():
        q_means = {
            question: float(np.mean([r for unit in units for r in unit]))
            for question, units in questions.items()
        }
        # Agreement per question (mixing questions into one matrix would
        # inflate alpha via between-question mean differences), averaged.
        per_question_alphas = [
            krippendorff_alpha(units, metric="interval")
            for units in questions.values()
            if len(units) >= 2
        ]
        finite = [a for a in per_question_alphas if np.isfinite(a)]
        alpha = float(np.mean(finite)) if finite else float("nan")
        outcomes.append(
            UserStudyOutcome(
                algorithm=algorithm,
                q1_similarity=q_means["q1"],
                q2_informativeness=q_means["q2"],
                q3_comparison=q_means["q3"],
                alpha=alpha,
                num_examples=len(questions["q1"]),
                num_annotators=num_annotators,
            )
        )
    return outcomes
