"""Paper-reproduction experiments: one module per table/figure.

Each module exposes ``run_*`` (returns structured result rows) and
``render_*`` (formats them like the paper's table) so the benchmark
harness, the examples, and tests all share one implementation.

| Module              | Reproduces                                   |
|---------------------|----------------------------------------------|
| ``table2``          | Table 2 — dataset statistics                 |
| ``table3``          | Table 3 — review alignment vs baselines      |
| ``table4``          | Table 4 — opinion-scheme generalisation      |
| ``table5``          | Table 5 — TargetHkS optimality/objective     |
| ``table6``          | Table 6 — alignment after core-list narrowing|
| ``table7``          | Table 7 — (simulated) user study             |
| ``fig5``            | Fig. 5 — lambda / mu sensitivity             |
| ``fig6``            | Fig. 6 — gap over Random vs #reviews         |
| ``fig7``            | Fig. 7 — runtime vs #comparative items       |
| ``fig11``           | Fig. 11 — information loss vs m              |
| ``case_study``      | Figs. 8-10 — qualitative case studies        |
"""

from repro.experiments import (  # noqa: F401
    case_study,
    fig5,
    fig6,
    fig7,
    fig11,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "case_study",
    "fig5",
    "fig6",
    "fig7",
    "fig11",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
