"""Case studies (Figs. 8-10): qualitative "compare to similar items" views.

For a category, pick a target product, run CompaReSetS+ (m = 3), narrow to
the top-3 most similar items with TargetHkS_ILP, and render the selected
reviews side by side with the aspects they share — the layout of the
paper's Figures 8-10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import SelectionResult, make_selector
from repro.eval.runner import EvaluationSettings, prepare_instances
from repro.experiments.table7 import _narrow_to_top3


@dataclass(frozen=True, slots=True)
class CaseStudy:
    """One rendered case study."""

    category: str
    result: SelectionResult
    shared_aspects: tuple[str, ...]


def run_case_study(
    settings: EvaluationSettings,
    category: str = "Cellphone",
    instance_index: int = 0,
) -> CaseStudy:
    """Build the case study for the ``instance_index``-th viable instance."""
    instances = prepare_instances(settings, category)
    config = settings.config.with_(max_reviews=3)
    selector = make_selector("CompaReSetS+")
    narrowed = None
    skipped = 0
    for instance in instances:
        result = selector.select(instance, config)
        candidate = _narrow_to_top3(result, config)
        if candidate is None:
            continue
        if skipped < instance_index:
            skipped += 1
            continue
        narrowed = candidate
        break
    if narrowed is None:
        raise ValueError(
            f"no viable case-study instance in {category!r} at index {instance_index}"
        )

    per_item_aspects = []
    for item_index in range(narrowed.instance.num_items):
        aspects: set[str] = set()
        for review in narrowed.selected_reviews(item_index):
            aspects.update(review.aspects)
        per_item_aspects.append(aspects)
    shared = set(per_item_aspects[0])
    for aspects in per_item_aspects[1:]:
        shared &= aspects
    return CaseStudy(
        category=category, result=narrowed, shared_aspects=tuple(sorted(shared))
    )


def render_case_study(study: CaseStudy) -> str:
    """Render the Figs. 8-10 layout as text."""
    result = study.result
    lines = [
        f"=== Case study ({study.category}): compare to similar items ===",
        f"Aspects shared by every item's selection: {', '.join(study.shared_aspects) or '(none)'}",
        "",
    ]
    for item_index, product in enumerate(result.instance.products):
        role = "This item" if item_index == 0 else f"Similar item {item_index}"
        lines.append(f"--- {role}: {product.title} [{product.product_id}] ---")
        for review in result.selected_reviews(item_index):
            stars = "*" * int(round(review.rating))
            aspect_list = ", ".join(sorted(review.aspects))
            lines.append(f"  ({stars:<5s}) {review.text}")
            lines.append(f"          aspects: {aspect_list}")
        lines.append("")
    return "\n".join(lines)
