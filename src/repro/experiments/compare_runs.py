"""Compare two persisted experiment runs and report metric drift.

With :mod:`repro.experiments.persist` producing structured JSON, this
module closes the loop for regression tracking: load two envelopes of the
same experiment (e.g. before/after an algorithm change), align their
result rows on identifying fields, and report every numeric field whose
relative change exceeds a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.persist import load_results

# Fields that identify a row rather than measure it, per known experiment.
_KEY_FIELDS = (
    "dataset",
    "algorithm",
    "strategy",
    "view",
    "scheme",
    "max_reviews",
    "num_comparatives",
    "parameter",
    "value",
    "k",
    "name",
    "bucket_low",
    "bucket_high",
)


@dataclass(frozen=True, slots=True)
class Drift:
    """One numeric field that moved between runs."""

    row_key: tuple
    field: str
    before: float
    after: float

    @property
    def relative_change(self) -> float:
        if self.before == 0:
            return float("inf") if self.after != 0 else 0.0
        return (self.after - self.before) / abs(self.before)

    def __str__(self) -> str:
        return (
            f"{'/'.join(str(k) for k in self.row_key)}.{self.field}: "
            f"{self.before:.6g} -> {self.after:.6g} "
            f"({100 * self.relative_change:+.2f}%)"
        )


def _row_key(row: dict) -> tuple:
    return tuple(
        (field, _freeze(row[field])) for field in _KEY_FIELDS if field in row
    )


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def _numeric_fields(row: dict) -> dict[str, float]:
    fields = {}
    for field, value in row.items():
        if field in _KEY_FIELDS:
            continue
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and value is not None:
            fields[field] = float(value)
        elif isinstance(value, dict):
            for inner, inner_value in _numeric_fields(value).items():
                fields[f"{field}.{inner}"] = inner_value
    return fields


def compare_runs(
    before_path: str | Path,
    after_path: str | Path,
    tolerance: float = 0.02,
) -> list[Drift]:
    """Drifts between two persisted runs of the same experiment.

    ``tolerance`` is the relative change below which a move is ignored
    (2% by default — around the run-to-run noise of the sampled
    workloads).  Rows present in only one run are reported with
    before/after of NaN-like sentinels via a ValueError instead, since a
    changed row universe usually means the comparison is invalid.
    """
    before = load_results(before_path)
    after = load_results(after_path)
    if before["experiment"] != after["experiment"]:
        raise ValueError(
            f"experiment mismatch: {before['experiment']!r} vs {after['experiment']!r}"
        )

    def rows_of(envelope) -> dict[tuple, dict]:
        results = envelope["results"]
        if isinstance(results, dict):
            # fig5-style envelope: flatten the point lists.
            flattened = []
            for value in results.values():
                if isinstance(value, list):
                    flattened.extend(value)
            results = flattened
        indexed = {}
        for row in results:
            if isinstance(row, dict):
                indexed[_row_key(row)] = row
        return indexed

    before_rows = rows_of(before)
    after_rows = rows_of(after)
    if set(before_rows) != set(after_rows):
        missing = set(before_rows).symmetric_difference(after_rows)
        raise ValueError(
            f"row universes differ between runs ({len(missing)} unmatched rows); "
            "re-run both sides with identical settings"
        )

    drifts: list[Drift] = []
    for key, before_row in before_rows.items():
        after_row = after_rows[key]
        before_fields = _numeric_fields(before_row)
        after_fields = _numeric_fields(after_row)
        for field in sorted(set(before_fields) & set(after_fields)):
            b, a = before_fields[field], after_fields[field]
            if b == a:
                continue
            drift = Drift(row_key=key, field=field, before=b, after=a)
            if abs(drift.relative_change) > tolerance:
                drifts.append(drift)
    drifts.sort(key=lambda d: -abs(d.relative_change))
    return drifts
