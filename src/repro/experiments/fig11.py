"""Fig. 11 — information loss of CompaReSetS+ selections vs the budget m."""

from __future__ import annotations

from repro.core.selection import make_selector
from repro.eval.information_loss import InformationLossPoint, information_loss_curve
from repro.eval.reporting import format_series
from repro.eval.runner import EvaluationSettings, prepare_instances

BUDGETS = (3, 5, 10, 15, 20)


def run_fig11(
    settings: EvaluationSettings,
    category: str = "Cellphone",
    budgets: tuple[int, ...] = BUDGETS,
) -> list[InformationLossPoint]:
    """Loss curves for the Fig.-11 budgets on one category."""
    instances = prepare_instances(settings, category)
    selector = make_selector("CompaReSetS+")
    return information_loss_curve(instances, selector, settings.config, budgets)


def render_fig11(points: list[InformationLossPoint]) -> str:
    """Both panels as one series table (Delta down, cosine up with m)."""
    budgets = [p.max_reviews for p in points]
    series = {
        "Delta target": [p.target_delta for p in points],
        "Delta all items": [p.all_items_delta for p in points],
        "cosine target": [p.target_cosine for p in points],
        "cosine all items": [p.all_items_cosine for p in points],
    }
    return format_series(
        "m",
        budgets,
        series,
        title="Figure 11: information loss of CompaReSetS+ (Cellphone)",
        float_format="{:.4f}",
    )
