"""Fig. 5 — hyper-parameter sensitivity: lambda (5a) and mu (5b).

Sweeps the paper's candidate grid {0.01, 0.1, 1, 10, 100}: lambda for
CompaReSetS (target-vs-comparative ROUGE-L), then mu for CompaReSetS+
holding lambda at its winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import make_selector
from repro.eval.alignment import mean_alignment, target_vs_comparative_alignment
from repro.eval.reporting import format_series
from repro.eval.runner import EvaluationSettings, prepare_instances

GRID = (0.01, 0.1, 1.0, 10.0, 100.0)


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """ROUGE-L at one grid value for one dataset."""

    dataset: str
    parameter: str  # "lambda" or "mu"
    value: float
    rouge_l: float


def run_fig5(
    settings: EvaluationSettings,
    grid: tuple[float, ...] = GRID,
) -> tuple[list[SensitivityPoint], float, list[SensitivityPoint], float]:
    """Sweep lambda then mu; returns (lambda points, best lambda, mu points, best mu)."""
    lambda_points: list[SensitivityPoint] = []
    compare_sets = make_selector("CompaReSetS")
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        for lam in grid:
            config = settings.config.with_(max_reviews=3, lam=lam)
            results = [compare_sets.select(inst, config) for inst in instances]
            scores = mean_alignment(
                [target_vs_comparative_alignment(r) for r in results]
            )
            lambda_points.append(
                SensitivityPoint(category, "lambda", lam, scores.rouge_l)
            )

    best_lambda = _best_value(lambda_points, grid)

    mu_points: list[SensitivityPoint] = []
    compare_sets_plus = make_selector("CompaReSetS+")
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        for mu in grid:
            config = settings.config.with_(max_reviews=3, lam=best_lambda, mu=mu)
            results = [compare_sets_plus.select(inst, config) for inst in instances]
            scores = mean_alignment(
                [target_vs_comparative_alignment(r) for r in results]
            )
            mu_points.append(SensitivityPoint(category, "mu", mu, scores.rouge_l))

    best_mu = _best_value(mu_points, grid)
    return lambda_points, best_lambda, mu_points, best_mu


def _best_value(points: list[SensitivityPoint], grid: tuple[float, ...]) -> float:
    """Grid value with the highest mean ROUGE-L across datasets."""
    means = {
        value: sum(p.rouge_l for p in points if p.value == value)
        / max(1, sum(1 for p in points if p.value == value))
        for value in grid
    }
    return max(means, key=lambda value: means[value])


def render_fig5(points: list[SensitivityPoint], parameter: str) -> str:
    """Format one sweep as a series table (datasets as columns)."""
    subset = [p for p in points if p.parameter == parameter]
    datasets = sorted({p.dataset for p in subset})
    values = sorted({p.value for p in subset})
    series = {
        dataset: [
            100
            * next(p.rouge_l for p in subset if p.dataset == dataset and p.value == v)
            for v in values
        ]
        for dataset in datasets
    }
    label = "5a: CompaReSetS ROUGE-L vs lambda" if parameter == "lambda" else "5b: CompaReSetS+ ROUGE-L vs mu"
    return format_series(parameter, values, series, title=f"Figure {label}", float_format="{:.2f}")
