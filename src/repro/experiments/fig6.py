"""Fig. 6 — performance gap over Random, bucketed by #reviews per item.

The paper's hypothesis: products with more reviews make selection harder,
so the gap between a smart selector and Random widens with review count.
We bucket instances by the mean number of reviews per item and plot the
per-bucket ROUGE-L gap of CompaReSetS+ and CRS over Random, for both the
target-vs-comparative view (6a) and the among-items view (6b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.alignment import among_items_alignment, target_vs_comparative_alignment
from repro.eval.reporting import format_series
from repro.eval.runner import EvaluationSettings, evaluate_selectors, prepare_instances


@dataclass(frozen=True, slots=True)
class GapPoint:
    """ROUGE-L gap over Random for one review-count bucket."""

    view: str  # "target" or "among"
    algorithm: str
    bucket_low: float
    bucket_high: float
    mean_reviews: float
    gap: float
    num_instances: int


def run_fig6(
    settings: EvaluationSettings,
    category: str = "Cellphone",
    num_buckets: int = 4,
) -> list[GapPoint]:
    """Bucket instances by review volume and measure gaps over Random."""
    instances = prepare_instances(settings, category)
    config = settings.config.with_(max_reviews=3)
    runs = evaluate_selectors(
        ("Random", "CRS", "CompaReSetS+"), instances, config, seed=settings.seed
    )

    # Bucket by the *target item's* review count (the paper's x-axis):
    # per-instance averaging would wash out the long-tailed spread that
    # the difficulty hypothesis is about.
    review_volumes = np.array(
        [float(len(inst.reviews[0])) for inst in instances]
    )
    edges = np.quantile(review_volumes, np.linspace(0, 1, num_buckets + 1))
    # Guard against duplicate quantile edges on small samples.
    edges = np.unique(edges)

    points: list[GapPoint] = []
    for view, scorer in (
        ("target", target_vs_comparative_alignment),
        ("among", among_items_alignment),
    ):
        per_algorithm = {
            name: np.array([scorer(result).rouge_l for result in run.results])
            for name, run in runs.items()
        }
        for algorithm in ("CRS", "CompaReSetS+"):
            for low, high in zip(edges[:-1], edges[1:]):
                mask = (review_volumes >= low) & (
                    review_volumes <= high if high == edges[-1] else review_volumes < high
                )
                if not mask.any():
                    continue
                gap = float(
                    (per_algorithm[algorithm][mask] - per_algorithm["Random"][mask]).mean()
                )
                points.append(
                    GapPoint(
                        view=view,
                        algorithm=algorithm,
                        bucket_low=float(low),
                        bucket_high=float(high),
                        mean_reviews=float(review_volumes[mask].mean()),
                        gap=gap,
                        num_instances=int(mask.sum()),
                    )
                )
    return points


def render_fig6(points: list[GapPoint], view: str) -> str:
    """Format one panel as a series table (bucket centre vs gap x100)."""
    subset = [p for p in points if p.view == view]
    algorithms = sorted({p.algorithm for p in subset})
    buckets = sorted({(p.bucket_low, p.bucket_high) for p in subset})
    x_values = [f"{low:.0f}-{high:.0f}" for low, high in buckets]
    series = {}
    for algorithm in algorithms:
        column = []
        for bucket in buckets:
            match = [
                p
                for p in subset
                if p.algorithm == algorithm
                and (p.bucket_low, p.bucket_high) == bucket
            ]
            column.append(100 * match[0].gap if match else float("nan"))
        series[f"{algorithm} - Random"] = column
    label = "6a (vs target)" if view == "target" else "6b (among items)"
    return format_series(
        "#reviews", x_values, series, title=f"Figure {label}: ROUGE-L gap over Random", float_format="{:+.2f}"
    )
