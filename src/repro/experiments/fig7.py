"""Fig. 7 — average runtime vs the number of comparative items.

Times CRS, CompaReSetS, and CompaReSetS+ (m in {3, 5, 10}) on instances
restricted to n comparative items, n swept over a grid.  The paper's
observations to reproduce: CRS and CompaReSetS are nearly flat in n,
CompaReSetS+ grows roughly linearly (it re-runs integer regression per
item), and larger m does not necessarily mean slower solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.selection import make_selector
from repro.eval.reporting import format_series
from repro.eval.runner import EvaluationSettings, cached_corpus
from repro.data.instances import build_instances


@dataclass(frozen=True, slots=True)
class RuntimePoint:
    """Mean seconds per instance for one (algorithm, m, n) cell."""

    algorithm: str
    max_reviews: int
    num_comparatives: int
    mean_seconds: float
    num_instances: int


def run_fig7(
    settings: EvaluationSettings,
    category: str = "Cellphone",
    comparative_counts: tuple[int, ...] = (2, 4, 6, 8),
    algorithms: tuple[str, ...] = ("CRS", "CompaReSetS", "CompaReSetS+"),
) -> list[RuntimePoint]:
    """Time each algorithm at each instance width n."""
    corpus = cached_corpus(category, settings.scale, settings.seed)
    points: list[RuntimePoint] = []
    for n in comparative_counts:
        instances = [
            inst
            for inst in build_instances(
                corpus,
                max_instances=settings.max_instances,
                max_comparisons=n,
                min_reviews=settings.min_reviews,
            )
            if inst.num_items == n + 1
        ]
        if not instances:
            continue
        for algorithm in algorithms:
            selector = make_selector(algorithm)
            for budget in settings.budgets:
                config = settings.config.with_(max_reviews=budget)
                start = time.perf_counter()
                for instance in instances:
                    selector.select(instance, config)
                elapsed = time.perf_counter() - start
                points.append(
                    RuntimePoint(
                        algorithm=algorithm,
                        max_reviews=budget,
                        num_comparatives=n,
                        mean_seconds=elapsed / len(instances),
                        num_instances=len(instances),
                    )
                )
    return points


def render_fig7(points: list[RuntimePoint]) -> str:
    """Format as a series table: n vs mean seconds per (algorithm, m)."""
    counts = sorted({p.num_comparatives for p in points})
    series: dict[str, list[float]] = {}
    for point in points:
        key = f"{point.algorithm} m={point.max_reviews}"
        series.setdefault(key, [float("nan")] * len(counts))
        series[key][counts.index(point.num_comparatives)] = point.mean_seconds
    return format_series(
        "#comparative items",
        counts,
        series,
        title="Figure 7: mean runtime (seconds/instance)",
        float_format="{:.4f}",
    )
