"""JSON persistence for experiment results, plus checkpoint journals.

Benchmark runs archive rendered text tables; this module additionally
serialises the *structured* results (the dataclasses each ``run_*``
returns) so downstream analysis — plotting, cross-run comparison,
regression tracking — can consume them without re-parsing text.

The format is a tagged envelope::

    {"experiment": "table3", "settings": {...}, "results": [...]}

where each result is the ``dataclasses.asdict`` of one row/point/cell,
with enums and numpy scalars coerced to plain JSON types.  Writes are
atomic (temp file + ``os.replace``), so a crash mid-write never leaves a
truncated envelope behind.

Checkpoint/resume
-----------------
:class:`ResultJournal` is an append-only JSONL journal of completed
per-instance :class:`~repro.core.selection.SelectionResult`\\ s.  The
experiment runner (:func:`repro.eval.runner.run_selector`) streams every
finished instance to the active journal — together with the
post-instance RNG state, so stochastic selectors resume mid-stream with
byte-identical results — and, on a re-run, replays journal entries
instead of recomputing them.  Install a journal for a block of
experiment code with :func:`checkpointing` (that is what
``repro-cli experiment --checkpoint`` does); an interrupted run resumes
from the last journaled instance instead of restarting from zero.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any
from collections.abc import Iterator

import numpy as np

from repro.core.selection import SelectionResult
from repro.resilience.atomicio import atomic_write_text
from repro.data.instances import ComparisonInstance
from repro.data.models import AspectMention, Product, Review

if TYPE_CHECKING:  # runner imports this module lazily; avoid the cycle
    from repro.eval.runner import EvaluationSettings

_FORMAT_VERSION = 1
_JOURNAL_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce dataclasses/enums/numpy values to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not np.isfinite(value):
        return None  # JSON has no NaN/Inf; null marks "undefined"
    return value


def save_results(
    experiment: str,
    results: Any,
    settings: EvaluationSettings,
    path: str | Path,
) -> None:
    """Write one experiment's structured results to ``path`` as JSON.

    The write is atomic: a crash mid-write never corrupts an existing
    result file at ``path``.
    """
    envelope = {
        "version": _FORMAT_VERSION,
        "experiment": experiment,
        "settings": _jsonable(settings),
        "results": _jsonable(results),
    }
    atomic_write_text(Path(path), json.dumps(envelope, indent=2) + "\n")


def load_results(path: str | Path) -> dict:
    """Load a result envelope written by :func:`save_results`.

    Returns the raw envelope dict; validation errors raise ValueError.
    """
    try:
        envelope = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "experiment" not in envelope:
        raise ValueError(f"{path}: not an experiment result envelope")
    version = envelope.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported result format version {version!r}")
    return envelope


# --------------------------------------------------------------------------
# SelectionResult round-trip (for checkpoint journals)
# --------------------------------------------------------------------------


def result_record(result: SelectionResult) -> dict:
    """A JSON-ready record that fully round-trips a SelectionResult."""
    instance = result.instance
    return {
        "algorithm": result.algorithm,
        "degraded": result.degraded,
        "selections": [list(s) for s in result.selections],
        "products": [
            {
                "product_id": p.product_id,
                "title": p.title,
                "category": p.category,
                "also_bought": list(p.also_bought),
            }
            for p in instance.products
        ],
        "reviews": [
            [
                {
                    "review_id": r.review_id,
                    "product_id": r.product_id,
                    "reviewer_id": r.reviewer_id,
                    "rating": r.rating,
                    "text": r.text,
                    "mentions": [
                        {
                            "aspect": m.aspect,
                            "sentiment": m.sentiment,
                            "strength": m.strength,
                        }
                        for m in r.mentions
                    ],
                }
                for r in review_set
            ]
            for review_set in instance.reviews
        ],
    }


def result_from_record(record: dict) -> SelectionResult:
    """Rebuild a SelectionResult written by :func:`result_record`."""
    products = tuple(
        Product(
            product_id=p["product_id"],
            title=p["title"],
            category=p["category"],
            also_bought=tuple(p.get("also_bought", ())),
        )
        for p in record["products"]
    )
    reviews = tuple(
        tuple(
            Review(
                review_id=r["review_id"],
                product_id=r["product_id"],
                reviewer_id=r["reviewer_id"],
                rating=float(r["rating"]),
                text=r["text"],
                mentions=tuple(
                    AspectMention(
                        aspect=m["aspect"],
                        sentiment=int(m["sentiment"]),
                        strength=float(m.get("strength", 1.0)),
                    )
                    for m in r.get("mentions", ())
                ),
            )
            for r in review_set
        )
        for review_set in record["reviews"]
    )
    return SelectionResult(
        instance=ComparisonInstance(products=products, reviews=reviews),
        selections=tuple(tuple(int(i) for i in s) for s in record["selections"]),
        algorithm=record["algorithm"],
        degraded=bool(record.get("degraded", False)),
    )


# --------------------------------------------------------------------------
# Checkpoint journal
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, slots=True)
class CheckpointEntry:
    """One journaled per-instance result."""

    key: str
    index: int
    result: SelectionResult
    seconds: float
    rng_state: dict | None = None


def run_key(
    algorithm: str,
    config: Any,
    seed: int,
    instances: Any,
) -> str:
    """A stable identity for one selector run inside a journal.

    Two runs share journal entries only when the algorithm, the
    selection config, the seed, and the exact instance sequence (by
    target product id) all match — otherwise replaying a checkpoint
    would silently mix workloads.
    """
    fingerprint = json.dumps(
        {
            "config": _jsonable(config),
            "targets": [inst.target.product_id for inst in instances],
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]
    return f"{algorithm}|seed={seed}|{digest}"


class ResultJournal:
    """Append-only JSONL journal of completed per-instance results.

    Each ``append`` writes one line and flushes + fsyncs it, so every
    completed instance survives a crash.  Loading tolerates a torn final
    line (the signature of a crash mid-append): it is ignored, and the
    run simply redoes that one instance.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[tuple[str, int], dict] = {}
        self._load()
        self._handle = None

    def _load(self) -> None:
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for line_number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a crash mid-append is
                # expected; anything torn *before* the end means the
                # file was mangled by something else.
                if any(rest.strip() for rest in lines[line_number:]):
                    raise ValueError(
                        f"{self.path}:{line_number}: corrupt journal line "
                        "followed by more data"
                    ) from None
                return
            kind = record.get("kind")
            if kind == "header":
                version = record.get("version")
                if version != _JOURNAL_VERSION:
                    raise ValueError(
                        f"{self.path}: unsupported journal version {version!r}"
                    )
            elif kind == "entry":
                self._entries[(record["key"], int(record["index"]))] = record
            else:
                raise ValueError(
                    f"{self.path}:{line_number}: unknown journal record "
                    f"kind {kind!r}"
                )

    def _open_for_append(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            new_file = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf-8")
            if new_file:
                self._write_line({"kind": "header", "version": _JOURNAL_VERSION})
        return self._handle

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key_index: tuple[str, int]) -> bool:
        return key_index in self._entries

    def entries_for(self, key: str) -> int:
        """How many instances of run ``key`` are already journaled."""
        return sum(1 for k, _ in self._entries if k == key)

    def get(self, key: str, index: int) -> CheckpointEntry | None:
        record = self._entries.get((key, index))
        if record is None:
            return None
        return CheckpointEntry(
            key=key,
            index=index,
            result=result_from_record(record["result"]),
            seconds=float(record.get("seconds", 0.0)),
            rng_state=record.get("rng_state"),
        )

    def append(
        self,
        key: str,
        index: int,
        result: SelectionResult,
        seconds: float,
        rng_state: dict | None = None,
    ) -> None:
        """Journal one completed instance (flushed + fsynced immediately)."""
        record = {
            "kind": "entry",
            "key": key,
            "index": index,
            "seconds": seconds,
            "rng_state": _jsonable(rng_state),
            "result": result_record(result),
        }
        self._open_for_append()
        self._write_line(record)
        self._entries[(key, index)] = record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_ACTIVE_JOURNAL: contextvars.ContextVar[ResultJournal | None] = (
    contextvars.ContextVar("repro_active_journal", default=None)
)


def active_journal() -> ResultJournal | None:
    """The journal installed by :func:`checkpointing`, if any."""
    return _ACTIVE_JOURNAL.get()


@contextlib.contextmanager
def checkpointing(path: str | Path) -> Iterator[ResultJournal]:
    """Stream per-instance results to a journal for the enclosed block.

    Every :func:`repro.eval.runner.run_selector` call inside the block
    journals completed instances to ``path`` and replays already-
    journaled ones.  Re-running an interrupted block with the same
    journal resumes from the last checkpoint and produces the same final
    results as an uninterrupted run (RNG state is journaled alongside
    each instance).
    """
    journal = ResultJournal(path)
    token = _ACTIVE_JOURNAL.set(journal)
    try:
        yield journal
    finally:
        _ACTIVE_JOURNAL.reset(token)
        journal.close()
