"""JSON persistence for experiment results.

Benchmark runs archive rendered text tables; this module additionally
serialises the *structured* results (the dataclasses each ``run_*``
returns) so downstream analysis — plotting, cross-run comparison,
regression tracking — can consume them without re-parsing text.

The format is a tagged envelope::

    {"experiment": "table3", "settings": {...}, "results": [...]}

where each result is the ``dataclasses.asdict`` of one row/point/cell,
with enums and numpy scalars coerced to plain JSON types.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.eval.runner import EvaluationSettings

_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively coerce dataclasses/enums/numpy values to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not np.isfinite(value):
        return None  # JSON has no NaN/Inf; null marks "undefined"
    return value


def save_results(
    experiment: str,
    results: Any,
    settings: EvaluationSettings,
    path: str | Path,
) -> None:
    """Write one experiment's structured results to ``path`` as JSON."""
    envelope = {
        "version": _FORMAT_VERSION,
        "experiment": experiment,
        "settings": _jsonable(settings),
        "results": _jsonable(results),
    }
    Path(path).write_text(json.dumps(envelope, indent=2) + "\n", encoding="utf-8")


def load_results(path: str | Path) -> dict:
    """Load a result envelope written by :func:`save_results`.

    Returns the raw envelope dict; validation errors raise ValueError.
    """
    try:
        envelope = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "experiment" not in envelope:
        raise ValueError(f"{path}: not an experiment result envelope")
    version = envelope.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported result format version {version!r}")
    return envelope
