"""Table 2 — dataset statistics for the three categories."""

from __future__ import annotations

from repro.data.corpus import CorpusStats
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, cached_corpus


def run_table2(settings: EvaluationSettings) -> list[CorpusStats]:
    """Collect Table-2 statistics for every configured category."""
    return [
        cached_corpus(category, settings.scale, settings.seed).stats(
            min_reviews_for_target=settings.min_reviews
        )
        for category in settings.categories
    ]


def render_table2(stats: list[CorpusStats]) -> str:
    """Format the statistics like the paper's Table 2 (rows x datasets)."""
    headers = [""] + [s.name for s in stats]
    labels = [label for label, _ in stats[0].as_rows()] if stats else []
    rows = []
    for row_index, label in enumerate(labels):
        rows.append([label] + [s.as_rows()[row_index][1] for s in stats])
    return format_table(headers, rows, title="Table 2: Data statistics")
