"""Table 3 — review alignment of all selectors across budgets and datasets.

Reproduces both panels: (a) target item vs comparative items, (b) among
items; for m in {3, 5, 10} and ROUGE-1/2/L.  Statistical significance of
the best method over the second best is assessed with a paired t-test on
per-instance ROUGE-L, mirroring the paper's footnote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.alignment import (
    AlignmentScorer,
    AlignmentScores,
    mean_alignment,
)
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, evaluate_selectors, prepare_instances
from repro.eval.stats import paired_t_test

ALGORITHMS = ("Random", "CRS", "CompaReSetS_Greedy", "CompaReSetS", "CompaReSetS+")


@dataclass(frozen=True, slots=True)
class Table3Cell:
    """One (dataset, algorithm, view, m) cell of Table 3."""

    dataset: str
    algorithm: str
    view: str  # "target" or "among"
    max_reviews: int
    scores: AlignmentScores
    best_vs_second_p: float | None = None


def run_table3(
    settings: EvaluationSettings,
    algorithms: tuple[str, ...] = ALGORITHMS,
    scorer: AlignmentScorer | None = None,
) -> list[Table3Cell]:
    """Run every selector on every (dataset, m) workload and score alignment.

    One :class:`~repro.eval.alignment.AlignmentScorer` (kernel-backed by
    default) serves the whole table: review texts are interned once per
    corpus, and each result's cross-item pair grids are scored a single
    time for both panels via :meth:`~AlignmentScorer.score_both`.
    """
    scorer = scorer if scorer is not None else AlignmentScorer()
    cells: list[Table3Cell] = []
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        for budget in settings.budgets:
            config = settings.config.with_(max_reviews=budget)
            runs = evaluate_selectors(algorithms, instances, config, seed=settings.seed)
            both_views = {
                name: [scorer.score_both(result) for result in run.results]
                for name, run in runs.items()
            }
            for view_index, view in enumerate(("target", "among")):
                per_algorithm = {
                    name: [pair[view_index] for pair in pairs]
                    for name, pairs in both_views.items()
                }
                means = {
                    name: mean_alignment(scores)
                    for name, scores in per_algorithm.items()
                }
                ranked = sorted(means, key=lambda name: -means[name].rouge_l)
                p_value: float | None = None
                if len(ranked) >= 2:
                    best_series = [s.rouge_l for s in per_algorithm[ranked[0]]]
                    second_series = [s.rouge_l for s in per_algorithm[ranked[1]]]
                    p_value = paired_t_test(best_series, second_series).p_value
                for name in algorithms:
                    cells.append(
                        Table3Cell(
                            dataset=category,
                            algorithm=name,
                            view=view,
                            max_reviews=budget,
                            scores=means[name],
                            best_vs_second_p=p_value if name == ranked[0] else None,
                        )
                    )
    return cells


def render_table3(cells: list[Table3Cell], view: str) -> str:
    """Format one panel ('target' -> Table 3a, 'among' -> Table 3b)."""
    panel = [c for c in cells if c.view == view]
    datasets = sorted({c.dataset for c in panel})
    budgets = sorted({c.max_reviews for c in panel})
    algorithms = list(dict.fromkeys(c.algorithm for c in panel))

    headers = ["Dataset", "Algorithm"]
    for budget in budgets:
        headers.extend([f"m={budget} R-1", "R-2", "R-L"])
    rows = []
    for dataset in datasets:
        for algorithm in algorithms:
            row: list[object] = [dataset, algorithm]
            for budget in budgets:
                cell = next(
                    c
                    for c in panel
                    if c.dataset == dataset
                    and c.algorithm == algorithm
                    and c.max_reviews == budget
                )
                r1, r2, rl = cell.scores.scaled()
                marker = (
                    "*"
                    if cell.best_vs_second_p is not None
                    and cell.best_vs_second_p < 0.05
                    else ""
                )
                row.extend([f"{r1:.2f}{marker}", f"{r2:.2f}", f"{rl:.2f}"])
            rows.append(row)
    label = "Target Item vs Comparative Items" if view == "target" else "Among Items"
    return format_table(headers, rows, title=f"Table 3 ({label})")
