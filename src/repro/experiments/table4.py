"""Table 4 — generalisation across opinion definitions (§4.2.3).

ROUGE-L of the target-vs-comparative alignment for binary, 3-polarity,
and unary-scale opinion vectors on the Cellphone workload, m = 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.vectors import OpinionScheme
from repro.eval.alignment import AlignmentScorer, mean_alignment
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, evaluate_selectors, prepare_instances

ALGORITHMS = ("Random", "CRS", "CompaReSetS_Greedy", "CompaReSetS", "CompaReSetS+")
SCHEMES = (
    OpinionScheme.BINARY,
    OpinionScheme.THREE_POLARITY,
    OpinionScheme.UNARY_SCALE,
)


@dataclass(frozen=True, slots=True)
class Table4Cell:
    """ROUGE-L for one (algorithm, opinion scheme) pair."""

    algorithm: str
    scheme: OpinionScheme
    rouge_l: float


def run_table4(
    settings: EvaluationSettings,
    category: str = "Cellphone",
    algorithms: tuple[str, ...] = ALGORITHMS,
    scorer: AlignmentScorer | None = None,
) -> list[Table4Cell]:
    """Score every algorithm under each opinion definition.

    One kernel-backed scorer (shared interner) serves all schemes and
    algorithms — the selected texts are drawn from the same corpus.
    """
    scorer = scorer if scorer is not None else AlignmentScorer()
    instances = prepare_instances(settings, category)
    cells: list[Table4Cell] = []
    for scheme in SCHEMES:
        config = settings.config.with_(max_reviews=3, scheme=scheme)
        runs = evaluate_selectors(algorithms, instances, config, seed=settings.seed)
        for name, run in runs.items():
            scores = mean_alignment(scorer.score_many(run.results, "target"))
            cells.append(
                Table4Cell(algorithm=name, scheme=scheme, rouge_l=scores.rouge_l)
            )
    return cells


def render_table4(cells: list[Table4Cell]) -> str:
    """Format like the paper's Table 4 (algorithms x opinion definitions)."""
    algorithms = list(dict.fromkeys(c.algorithm for c in cells))
    headers = ["Algorithm"] + [f"{s.value}" for s in SCHEMES]
    rows = []
    for algorithm in algorithms:
        row: list[object] = [algorithm]
        for scheme in SCHEMES:
            cell = next(
                c for c in cells if c.algorithm == algorithm and c.scheme == scheme
            )
            row.append(f"{cell.rouge_l * 100:.2f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Table 4: Review alignment (ROUGE-L) across opinion definitions",
    )
