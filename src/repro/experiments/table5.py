"""Table 5 — TargetHkS: approximation ratios against the time-limited ILP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.objective_ratio import HksComparison, compare_hks_solvers
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, prepare_instances, run_selector


@dataclass(frozen=True, slots=True)
class Table5Row:
    """One (dataset, k) row of Table 5."""

    dataset: str
    comparison: HksComparison


def run_table5(
    settings: EvaluationSettings,
    time_limit: float = 60.0,
    backend: str = "milp",
) -> list[Table5Row]:
    """Build graphs from CompaReSetS+ selections and compare HkS solvers.

    Following §4.1.4 the narrowing budget k matches the review budget m
    (k = m); the selection itself always uses the paper's default budgets.
    """
    rows: list[Table5Row] = []
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        for k in settings.budgets:
            config = settings.config.with_(max_reviews=k)
            run = run_selector("CompaReSetS+", instances, config, seed=settings.seed)
            comparison = compare_hks_solvers(
                run.results,
                config,
                k=k,
                time_limit=time_limit,
                backend=backend,
                seed=settings.seed,
            )
            rows.append(Table5Row(dataset=category, comparison=comparison))
    return rows


def render_table5(rows: list[Table5Row]) -> str:
    """Format like the paper's Table 5 (ratios in percent)."""
    headers = [
        "Dataset",
        "k",
        "#Instances",
        "#Optimal (%)",
        "Greedy ratio (%)",
        "Random ratio (%)",
    ]
    table_rows = []
    for row in rows:
        c = row.comparison
        table_rows.append(
            [
                row.dataset,
                c.k,
                c.num_instances,
                f"{c.optimal_percent:.2f}",
                f"{100 * c.greedy_ratio:+.5f}",
                f"{100 * c.random_ratio:+.2f}",
            ]
        )
    return format_table(
        headers, table_rows, title="Table 5: Performance ratios over TargetHkS_ILP (%)"
    )
