"""Table 6 — review alignment after narrowing to the core list of k items.

For parity with the paper, the selected review sets always come from
CompaReSetS+; the four strategies only differ in *which k items* survive:
Random, Top-k similarity, TargetHkS_Greedy, TargetHkS_ILP (k = m).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection import SelectionResult
from repro.eval.alignment import (
    AlignmentScores,
    among_items_alignment,
    mean_alignment,
    target_vs_comparative_alignment,
)
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, prepare_instances, run_selector
from repro.graph.similarity import build_item_graph
from repro.graph.target_hks import (
    solve_greedy,
    solve_ilp,
    solve_random,
    solve_top_k_similarity,
)

STRATEGIES = ("Random", "Top-k similarity", "TargetHkS_Greedy", "TargetHkS_ILP")


@dataclass(frozen=True, slots=True)
class Table6Cell:
    """Alignment of the narrowed instance for one (dataset, strategy, k)."""

    dataset: str
    strategy: str
    k: int
    view: str  # "target" or "among"
    scores: AlignmentScores


def _narrow(
    result: SelectionResult,
    strategy: str,
    k: int,
    config,
    rng: np.random.Generator,
    time_limit: float,
    backend: str,
) -> SelectionResult:
    """Restrict ``result`` to the k items chosen by ``strategy``."""
    graph = build_item_graph(result, config)
    if strategy == "Random":
        solution = solve_random(graph.weights, k, rng)
    elif strategy == "Top-k similarity":
        solution = solve_top_k_similarity(graph.weights, k)
    elif strategy == "TargetHkS_Greedy":
        solution = solve_greedy(graph.weights, k)
    elif strategy == "TargetHkS_ILP":
        solution = solve_ilp(graph.weights, k, time_limit=time_limit, backend=backend)
    else:
        raise ValueError(f"unknown narrowing strategy {strategy!r}")
    kept = [0] + sorted(v for v in solution.selected if v != 0)
    return result.restricted_to_items(kept)


def run_table6(
    settings: EvaluationSettings,
    time_limit: float = 60.0,
    backend: str = "milp",
) -> list[Table6Cell]:
    """Narrow every instance with each strategy and re-score alignment."""
    cells: list[Table6Cell] = []
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        for k in settings.budgets:
            config = settings.config.with_(max_reviews=k)
            run = run_selector("CompaReSetS+", instances, config, seed=settings.seed)
            usable = [r for r in run.results if r.instance.num_items >= k]
            for strategy in STRATEGIES:
                rng = np.random.default_rng(settings.seed)
                narrowed = [
                    _narrow(r, strategy, k, config, rng, time_limit, backend)
                    for r in usable
                ]
                for view, scorer in (
                    ("target", target_vs_comparative_alignment),
                    ("among", among_items_alignment),
                ):
                    cells.append(
                        Table6Cell(
                            dataset=category,
                            strategy=strategy,
                            k=k,
                            view=view,
                            scores=mean_alignment([scorer(r) for r in narrowed]),
                        )
                    )
    return cells


def render_table6(cells: list[Table6Cell], view: str) -> str:
    """Format one panel ('target' -> Table 6a, 'among' -> Table 6b)."""
    panel = [c for c in cells if c.view == view]
    datasets = sorted({c.dataset for c in panel})
    ks = sorted({c.k for c in panel})
    headers = ["Dataset", "Algorithm"]
    for k in ks:
        headers.extend([f"k=m={k} R-1", "R-2", "R-L"])
    rows = []
    for dataset in datasets:
        for strategy in STRATEGIES:
            row: list[object] = [dataset, strategy]
            for k in ks:
                cell = next(
                    c
                    for c in panel
                    if c.dataset == dataset and c.strategy == strategy and c.k == k
                )
                r1, r2, rl = cell.scores.scaled()
                row.extend([f"{r1:.2f}", f"{r2:.2f}", f"{rl:.2f}"])
            rows.append(row)
    label = "Target Item vs Comparative Items" if view == "target" else "Among Items"
    return format_table(headers, rows, title=f"Table 6 ({label})")
