"""Table 7 — the (simulated) user study.

Builds the paper's survey material: for each category, take 3 target
products, narrow to the top-3 most similar items with TargetHkS_ILP on
CompaReSetS+ selections, and present each example's review sets as
selected by CompaReSetS+, CRS, and Random.  For parity only examples
whose items all have at least 3 selected reviews are kept (the paper
presents exactly-3-review examples).  The simulated annotators then rate
each example blind; see :mod:`repro.eval.user_study` for the model.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import SelectionResult, make_selector
from repro.eval.reporting import format_table
from repro.eval.runner import EvaluationSettings, prepare_instances
from repro.eval.user_study import UserStudyOutcome, run_user_study
from repro.graph.similarity import build_item_graph
from repro.graph.target_hks import solve_ilp

STUDY_ALGORITHMS = ("Random", "CRS", "CompaReSetS+")


def _narrow_to_top3(result: SelectionResult, config) -> SelectionResult | None:
    """Keep the target plus its two TargetHkS_ILP companions."""
    if result.instance.num_items < 3:
        return None
    graph = build_item_graph(result, config)
    solution = solve_ilp(graph.weights, 3, time_limit=10.0)
    kept = [0] + sorted(v for v in solution.selected if v != 0)
    return result.restricted_to_items(kept)


def build_examples(
    settings: EvaluationSettings,
    examples_per_category: int = 3,
) -> dict[str, list[SelectionResult]]:
    """Survey material: per algorithm, 3 narrowed examples per category."""
    config = settings.config.with_(max_reviews=3)
    examples: dict[str, list[SelectionResult]] = {
        name: [] for name in STUDY_ALGORITHMS
    }
    for category in settings.categories:
        instances = prepare_instances(settings, category)
        picked = 0
        for instance in instances:
            if picked >= examples_per_category:
                break
            plus_result = make_selector("CompaReSetS+").select(instance, config)
            narrowed_plus = _narrow_to_top3(plus_result, config)
            if narrowed_plus is None:
                continue
            # Paper parity: only keep examples with exactly 3 reviews/item.
            if any(len(s) != 3 for s in narrowed_plus.selections):
                continue
            kept_ids = [p.product_id for p in narrowed_plus.instance.products]
            candidate_sets: dict[str, SelectionResult] = {"CompaReSetS+": narrowed_plus}
            ok = True
            for name in ("CRS", "Random"):
                rng = np.random.default_rng(settings.seed + picked)
                other = make_selector(name).select(instance, config, rng=rng)
                narrowed = other.restricted_to_items(
                    [
                        [p.product_id for p in instance.products].index(pid)
                        for pid in kept_ids
                    ]
                )
                if any(len(s) != 3 for s in narrowed.selections):
                    ok = False
                    break
                candidate_sets[name] = narrowed
            if not ok:
                continue
            for name, example in candidate_sets.items():
                examples[name].append(example)
            picked += 1
    return examples


def run_table7(
    settings: EvaluationSettings,
    num_annotators: int = 5,
) -> list[UserStudyOutcome]:
    """Build the survey and run the simulated annotators."""
    examples = build_examples(settings)
    config = settings.config.with_(max_reviews=3)
    outcomes = run_user_study(
        examples, config, num_annotators=num_annotators, seed=settings.seed
    )
    order = {name: i for i, name in enumerate(STUDY_ALGORITHMS)}
    return sorted(outcomes, key=lambda o: order.get(o.algorithm, 99))


def render_table7(outcomes: list[UserStudyOutcome]) -> str:
    """Format like the paper's Table 7."""
    headers = ["Algorithm", "Q1", "Q2", "Q3", "Krippendorff's alpha", "#Examples"]
    rows = [
        [
            o.algorithm,
            f"{o.q1_similarity:.2f}",
            f"{o.q2_informativeness:.2f}",
            f"{o.q3_comparison:.2f}",
            f"{o.alpha:.3f}",
            o.num_examples,
        ]
        for o in outcomes
    ]
    return format_table(headers, rows, title="Table 7: User study (simulated annotators)")
