"""Core-list-of-items substrate: item graphs and heaviest-k-subgraph solvers.

* :mod:`repro.graph.similarity` — pairwise item distances d_ij (§3.1) and
  the similarity-weighted complete graph.
* :mod:`repro.graph.ilp` — exact solvers for the TargetHkS integer program
  (Eq. 7): a HiGHS-backed linearised MILP (the paper used Gurobi) and a
  from-scratch branch-and-bound, both time-limited and reporting whether
  optimality was proven.
* :mod:`repro.graph.target_hks` — the TargetHkS problem: greedy
  (Algorithm 2), exact, brute-force, top-k-similarity, and random solvers.
* :mod:`repro.graph.hks` — the classic (unanchored) heaviest k-subgraph,
  plus the solve-all-targets reduction from §3.1.
* :mod:`repro.graph.local_search` — swap-based refinement of any feasible
  TargetHkS solution (an extension beyond the paper's Algorithm 2).
"""

from repro.graph.hks import peel_greedy_hks, solve_hks_via_targets
from repro.graph.ilp import BranchAndBoundSolver, IlpSolution, MilpBackendSolver
from repro.graph.local_search import improve_by_swaps, solve_greedy_with_local_search
from repro.graph.similarity import ItemGraph, build_item_graph
from repro.graph.target_hks import (
    HksSolution,
    solve_brute_force,
    solve_greedy,
    solve_ilp,
    solve_random,
    solve_top_k_similarity,
    total_weight,
)

__all__ = [
    "BranchAndBoundSolver",
    "HksSolution",
    "IlpSolution",
    "ItemGraph",
    "MilpBackendSolver",
    "build_item_graph",
    "improve_by_swaps",
    "peel_greedy_hks",
    "solve_brute_force",
    "solve_greedy",
    "solve_greedy_with_local_search",
    "solve_hks_via_targets",
    "solve_ilp",
    "solve_random",
    "solve_top_k_similarity",
    "total_weight",
]
