"""Classic (unanchored) heaviest k-subgraph, related work for §3 and §5.3.

* :func:`peel_greedy_hks` — Asahiro et al. (2000): repeatedly remove the
  vertex with minimum weighted degree until exactly k vertices remain.
* :func:`solve_hks_via_targets` — the paper's observation (§3.1): solving
  TargetHkS with every vertex as the target yields the HkS optimum, since
  the heaviest k-subgraph anchored at each of its own members is itself.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.graph.ilp import subset_weight
from repro.graph.target_hks import HksSolution, solve_brute_force


def peel_greedy_hks(weights: np.ndarray, k: int) -> HksSolution:
    """Greedy peeling: drop the minimum-weighted-degree vertex until k left."""
    weights = np.asarray(weights, dtype=float)
    n = weights.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}], got {k}")
    alive = list(range(n))
    degrees = weights.sum(axis=1).astype(float)
    while len(alive) > k:
        position = int(np.argmin([degrees[v] for v in alive]))
        removed = alive.pop(position)
        for v in alive:
            degrees[v] -= weights[v, removed]
    subset = tuple(sorted(alive))
    return HksSolution(
        selected=subset,
        weight=subset_weight(weights, subset),
        algorithm="HkS_PeelGreedy",
    )


def solve_hks_via_targets(
    weights: np.ndarray,
    k: int,
    target_solver: Callable[[np.ndarray, int, int], HksSolution] | None = None,
) -> HksSolution:
    """Solve HkS by anchoring TargetHkS at every vertex (§3.1 reduction).

    With an exact ``target_solver`` this is exact; with the greedy solver
    it becomes a strong multi-start heuristic.  Defaults to brute force,
    which is exact but only suitable for small graphs.
    """
    weights = np.asarray(weights, dtype=float)
    n = weights.shape[0]
    if target_solver is None:
        target_solver = lambda w, kk, t: solve_brute_force(w, kk, target=t)  # noqa: E731
    best: HksSolution | None = None
    for vertex in range(n):
        candidate = target_solver(weights, k, vertex)
        if best is None or candidate.weight > best.weight + 1e-12:
            best = candidate
    assert best is not None  # n >= 1 always yields one candidate
    return HksSolution(
        selected=best.selected,
        weight=best.weight,
        algorithm="HkS_via_TargetHkS",
        proven_optimal=best.proven_optimal,
    )
