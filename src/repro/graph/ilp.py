"""Exact solvers for the TargetHkS integer program (Eq. 7).

The paper solves TargetHkS_ILP with Gurobi under a 60-second limit and
reports the fraction of instances solved to proven optimality (Table 5).
This module provides two offline equivalents:

* :class:`MilpBackendSolver` — the standard linearisation of the quadratic
  0-1 objective (y_ij = gamma_i * gamma_j with y_ij <= gamma_i,
  y_ij <= gamma_j, y_ij >= gamma_i + gamma_j - 1) handed to scipy's HiGHS
  MILP solver with a time limit.
* :class:`BranchAndBoundSolver` — a from-scratch depth-first branch and
  bound on the quadratic form.  The admissible upper bound for a partial
  choice counts every chosen-chosen edge exactly, plus for each remaining
  slot the best possible "attachment" value of any candidate vertex
  (edges to the chosen set at full value, candidate-candidate edges at
  half value per endpoint), which never underestimates the completion.

Both report whether optimality was proven, so the Table-5 "#Optimal
Solution %" column is reproducible with either backend.

Both solvers accept an optional :class:`~repro.resilience.deadline.Deadline`
(falling back to the ambient :func:`~repro.resilience.deadline.deadline_scope`
when none is passed) in addition to their constructor ``time_limit``; the
effective budget is the tighter of the two.  Hitting the budget degrades
to the best incumbent with ``proven_optimal=False`` — it never raises —
mirroring how the paper reports non-proven solutions under the 60-second
Gurobi limit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.resilience.deadline import Deadline, resolve_deadline


@dataclass(frozen=True, slots=True)
class IlpSolution:
    """A (possibly proven-optimal) solution of Eq. 7."""

    selected: tuple[int, ...]
    weight: float
    proven_optimal: bool
    solve_seconds: float


def _validate_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"weights must be square, got shape {weights.shape}")
    if not np.allclose(weights, weights.T, atol=1e-9):
        raise ValueError("weights must be symmetric")
    return weights


def subset_weight(weights: np.ndarray, subset: tuple[int, ...] | list[int]) -> float:
    """Total edge weight sum_{i<j in subset} w_ij."""
    indices = np.fromiter(subset, dtype=int)
    if indices.size < 2:
        return 0.0
    block = weights[np.ix_(indices, indices)]
    return float(block.sum()) / 2.0


def greedy_incumbent(weights: np.ndarray, k: int, target: int) -> list[int]:
    """Algorithm-2 greedy solution, used as incumbent / timeout fallback."""
    chosen = [target]
    remaining = set(range(weights.shape[0])) - {target}
    while len(chosen) < k and remaining:
        chosen_array = np.array(chosen)
        best_vertex = max(
            sorted(remaining),
            key=lambda v: float(weights[v, chosen_array].sum()),
        )
        chosen.append(best_vertex)
        remaining.discard(best_vertex)
    return chosen


class MilpBackendSolver:
    """Eq. 7 linearised and solved by scipy's HiGHS MILP backend."""

    def __init__(self, time_limit: float = 60.0) -> None:
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        self.time_limit = time_limit

    def solve(
        self,
        weights: np.ndarray,
        k: int,
        target: int = 0,
        deadline: Deadline | None = None,
    ) -> IlpSolution:
        """Heaviest k-subgraph containing ``target``; k nodes total.

        The effective budget is the tighter of ``deadline`` (or the
        ambient deadline scope) and the constructor ``time_limit``.  If
        the budget runs out before HiGHS finds any incumbent, the greedy
        solution is returned with ``proven_optimal=False`` instead of
        raising.
        """
        weights = _validate_weights(weights)
        n = weights.shape[0]
        if not (1 <= k <= n):
            raise ValueError(f"k must be in [1, {n}], got {k}")
        if not (0 <= target < n):
            raise ValueError(f"target {target} out of range for n={n}")
        effective = resolve_deadline(deadline).tightened(self.time_limit)

        start = time.perf_counter()
        pairs = [(i, j) for i in range(n - 1) for j in range(i + 1, n)]
        num_pairs = len(pairs)
        num_vars = n + num_pairs  # gamma_0..gamma_{n-1}, then y per pair

        objective = np.zeros(num_vars)
        for pair_index, (i, j) in enumerate(pairs):
            objective[n + pair_index] = -weights[i, j]  # milp minimises

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        lower: list[float] = []
        upper: list[float] = []
        row_count = 0

        def add_row(entries: list[tuple[int, float]], lo: float, hi: float) -> None:
            nonlocal row_count
            for col, value in entries:
                rows.append(row_count)
                cols.append(col)
                data.append(value)
            lower.append(lo)
            upper.append(hi)
            row_count += 1

        # sum gamma = k
        add_row([(i, 1.0) for i in range(n)], k, k)
        # linearisation per pair
        for pair_index, (i, j) in enumerate(pairs):
            y = n + pair_index
            add_row([(y, 1.0), (i, -1.0)], -np.inf, 0.0)          # y <= gamma_i
            add_row([(y, 1.0), (j, -1.0)], -np.inf, 0.0)          # y <= gamma_j
            add_row([(y, 1.0), (i, -1.0), (j, -1.0)], -1.0, np.inf)  # y >= gi+gj-1

        constraint_matrix = sparse.csc_matrix(
            (data, (rows, cols)), shape=(row_count, num_vars)
        )
        constraints = LinearConstraint(constraint_matrix, lower, upper)

        variable_lower = np.zeros(num_vars)
        variable_upper = np.ones(num_vars)
        variable_lower[target] = 1.0  # gamma_target = 1 (Eq. 7c)
        bounds = Bounds(variable_lower, variable_upper)
        integrality = np.ones(num_vars)

        result = milp(
            c=objective,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options={"time_limit": effective.as_time_limit(cap=self.time_limit)},
        )
        elapsed = time.perf_counter() - start
        if result.x is None:
            # status 1 = iteration/time limit: degrade to the greedy
            # incumbent rather than raising — the budget, not the model,
            # is what failed (the paper reports non-proven solutions).
            if result.status == 1 or effective.expired():
                selected = tuple(sorted(greedy_incumbent(weights, k, target)))
                return IlpSolution(
                    selected=selected,
                    weight=subset_weight(weights, selected),
                    proven_optimal=False,
                    solve_seconds=elapsed,
                )
            raise RuntimeError(f"MILP backend returned no solution: {result.message}")
        gamma = result.x[:n]
        selected = tuple(int(i) for i in np.flatnonzero(gamma > 0.5))
        return IlpSolution(
            selected=selected,
            weight=subset_weight(weights, selected),
            proven_optimal=(result.status == 0),
            solve_seconds=elapsed,
        )


class BranchAndBoundSolver:
    """From-scratch exact branch and bound on the quadratic 0-1 objective."""

    def __init__(self, time_limit: float = 60.0) -> None:
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        self.time_limit = time_limit

    def solve(
        self,
        weights: np.ndarray,
        k: int,
        target: int = 0,
        deadline: Deadline | None = None,
    ) -> IlpSolution:
        """Heaviest k-subgraph containing ``target``, DFS branch and bound.

        The effective budget is the tighter of ``deadline`` (or the
        ambient deadline scope) and the constructor ``time_limit``; it is
        checked at every search node *and* inside the bound computation
        itself, so a single expensive bound over a large candidate set
        cannot overshoot the budget by more than a few iterations.
        """
        weights = _validate_weights(weights)
        n = weights.shape[0]
        if not (1 <= k <= n):
            raise ValueError(f"k must be in [1, {n}], got {k}")
        if not (0 <= target < n):
            raise ValueError(f"target {target} out of range for n={n}")
        effective = resolve_deadline(deadline).tightened(self.time_limit)

        start = time.perf_counter()

        # Greedy incumbent (Algorithm 2) gives a strong initial lower bound.
        incumbent = greedy_incumbent(weights, k, target)
        incumbent_weight = subset_weight(weights, incumbent)

        # Candidates ordered by total weighted degree: heavier vertices
        # first tends to find good solutions early and prune harder.
        others = [v for v in range(n) if v != target]
        others.sort(key=lambda v: -float(weights[v].sum()))

        best = list(incumbent)
        best_weight = incumbent_weight
        timed_out = False

        chosen = [target]
        chosen_weight = 0.0

        def bound(position: int, slots: int) -> float:
            """Admissible completion bound for candidates[position:].

            Checks the deadline every few candidates: on a large
            candidate set a single bound computation is the most
            expensive step between search-node deadline checks, so
            without this an almost-expired budget could overshoot by the
            full cost of one bound pass.
            """
            nonlocal timed_out
            candidates = others[position:]
            if slots == 0 or not candidates:
                return 0.0
            values = []
            candidate_array = np.array(candidates)
            chosen_array = np.array(chosen)
            for index, v in enumerate(candidates):
                if index % 16 == 0 and effective.expired():
                    timed_out = True
                    return float("inf")  # never prunes; dfs aborts next check
                to_chosen = float(weights[v, chosen_array].sum())
                cross = np.sort(weights[v, candidate_array])[::-1]
                # v itself appears with weight 0 (zero diagonal), harmless.
                top_cross = float(cross[: max(0, slots - 1)].sum())
                values.append(to_chosen + 0.5 * top_cross)
            values.sort(reverse=True)
            return float(sum(values[:slots]))

        def dfs(position: int) -> None:
            nonlocal best, best_weight, chosen_weight, timed_out
            if timed_out:
                return
            if effective.expired():
                timed_out = True
                return
            slots = k - len(chosen)
            if slots == 0:
                if chosen_weight > best_weight + 1e-12:
                    best = list(chosen)
                    best_weight = chosen_weight
                return
            if len(others) - position < slots:
                return
            if chosen_weight + bound(position, slots) <= best_weight + 1e-12:
                return
            if timed_out:
                return
            vertex = others[position]
            # Branch 1: include vertex.
            gain = float(weights[vertex, np.array(chosen)].sum())
            chosen.append(vertex)
            chosen_weight += gain
            dfs(position + 1)
            chosen.pop()
            chosen_weight -= gain
            # Branch 2: exclude vertex.
            dfs(position + 1)

        dfs(0)
        elapsed = time.perf_counter() - start
        return IlpSolution(
            selected=tuple(sorted(best)),
            weight=subset_weight(weights, tuple(best)),
            proven_optimal=not timed_out,
            solve_seconds=elapsed,
        )
