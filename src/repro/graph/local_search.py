"""Swap-based local search for TargetHkS.

A light extension beyond the paper's greedy (Algorithm 2): starting from
any feasible solution, repeatedly apply the best improving 1-swap
(replace one non-target member with one outside vertex) until a local
optimum.  Greedy + local search closes most of greedy's residual gap to
the exact optimum at a cost of O(k * n) per pass — still far cheaper than
branch and bound, and useful when the ILP's time limit is binding.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ilp import subset_weight
from repro.graph.target_hks import HksSolution, solve_greedy


def improve_by_swaps(
    weights: np.ndarray,
    solution: HksSolution,
    target: int = 0,
    max_passes: int = 50,
) -> HksSolution:
    """Apply best-improvement 1-swaps to ``solution`` until locally optimal.

    The target vertex is never swapped out.  Each pass scans every
    (member, outsider) pair; the best strictly-improving swap is applied.
    Terminates after ``max_passes`` passes or at a local optimum.
    """
    weights = np.asarray(weights, dtype=float)
    n = weights.shape[0]
    if target not in solution.selected:
        raise ValueError("solution must contain the target vertex")

    chosen = list(solution.selected)
    chosen_weight = subset_weight(weights, tuple(chosen))
    outside = [v for v in range(n) if v not in set(chosen)]

    for _ in range(max_passes):
        best_gain = 1e-12
        best_swap: tuple[int, int] | None = None
        chosen_array = np.array(chosen)
        # Contribution of each member to the current subgraph weight.
        contributions = {
            member: float(weights[member, chosen_array].sum()) for member in chosen
        }
        for member in chosen:
            if member == target:
                continue
            removed_contribution = contributions[member]
            for candidate in outside:
                gain = (
                    float(weights[candidate, chosen_array].sum())
                    - float(weights[candidate, member])
                    - removed_contribution
                )
                if gain > best_gain:
                    best_gain = gain
                    best_swap = (member, candidate)
        if best_swap is None:
            break
        member, candidate = best_swap
        chosen[chosen.index(member)] = candidate
        outside[outside.index(candidate)] = member
        chosen_weight += best_gain

    return HksSolution(
        selected=tuple(sorted(chosen)),
        weight=subset_weight(weights, tuple(chosen)),
        algorithm=f"{solution.algorithm}+LocalSearch",
    )


def solve_greedy_with_local_search(
    weights: np.ndarray,
    k: int,
    target: int = 0,
    max_passes: int = 50,
) -> HksSolution:
    """Algorithm 2 followed by 1-swap local search."""
    return improve_by_swaps(
        weights, solve_greedy(weights, k, target), target=target, max_passes=max_passes
    )
