"""Item similarity graph construction (§3.1).

After solving CompaReSetS+, the distance between items p_i and p_j is

    d_ij = Delta(tau_i, pi(S_i)) + Delta(tau_j, pi(S_j))
         + lambda^2 [Delta(Gamma, phi(S_i)) + Delta(Gamma, phi(S_j))]
         + mu^2 Delta(phi(S_i), phi(S_j))

and the similarity weight is w_ij = max_{i',j'} d_{i'j'} - d_ij, turning
the complete distance graph into a similarity graph on which TargetHkS
operates.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.distance import squared_l2
from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, build_space


@dataclass(frozen=True, slots=True)
class ItemGraph:
    """Complete similarity graph over an instance's items.

    ``product_ids[0]`` is the target item; ``weights`` and ``distances``
    are symmetric with zero diagonal.
    """

    product_ids: tuple[str, ...]
    distances: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.product_ids)
        if self.distances.shape != (n, n) or self.weights.shape != (n, n):
            raise ValueError("matrix shapes must match the number of items")

    @property
    def num_items(self) -> int:
        return len(self.product_ids)

    def to_networkx(self) -> nx.Graph:
        """Export as a networkx graph with 'weight' and 'distance' edges."""
        graph = nx.Graph()
        for index, product_id in enumerate(self.product_ids):
            graph.add_node(index, product_id=product_id, target=(index == 0))
        n = self.num_items
        for i in range(n - 1):
            for j in range(i + 1, n):
                graph.add_edge(
                    i,
                    j,
                    weight=float(self.weights[i, j]),
                    distance=float(self.distances[i, j]),
                )
        return graph


def _pairwise_aspect_distances(phis: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 over stacked φ(S_i) rows via the Gram trick.

    ||a - b||² = ||a||² + ||b||² - 2⟨a, b⟩, computed for every pair from
    one Gram matrix.  Cancellation can leave tiny negatives on
    near-identical rows, so the result is clipped at zero; the upper
    triangle is mirrored so the matrix is exactly symmetric.
    """
    gram = phis @ phis.T
    norms = np.einsum("ij,ij->i", phis, phis)
    deltas = norms[:, None] + norms[None, :] - 2.0 * gram
    np.clip(deltas, 0.0, None, out=deltas)
    deltas = np.triu(deltas, k=1)
    return deltas + deltas.T


def _pairwise_distances_reference(
    fit_terms: np.ndarray, phis: list[np.ndarray], mu: float
) -> np.ndarray:
    """Per-pair loop over squared_l2 — the checkable reference for tests."""
    n = len(phis)
    distances = np.zeros((n, n))
    for i in range(n - 1):
        for j in range(i + 1, n):
            d = fit_terms[i] + fit_terms[j] + mu**2 * squared_l2(phis[i], phis[j])
            distances[i, j] = d
            distances[j, i] = d
    return distances


def build_item_graph(result: SelectionResult, config: SelectionConfig) -> ItemGraph:
    """Construct the §3.1 graph from a selection result.

    The per-item fit terms are computed once and the pairwise aspect
    distances come from one Gram-matrix product over the stacked φ(S_i)
    rows, so the construction is O(n^2 z + n z N) with the n² part a
    single BLAS call instead of a Python pair loop.
    """
    instance = result.instance
    space = build_space(instance, config)
    gamma = space.aspect_vector(instance.reviews[0])
    n = instance.num_items

    fit_terms = np.zeros(n)
    phis = np.zeros((n, gamma.shape[0]))
    for item_index in range(n):
        selected = result.selected_reviews(item_index)
        tau = space.opinion_vector(instance.reviews[item_index])
        pi = space.opinion_vector(selected)
        phi = space.aspect_vector(selected)
        fit_terms[item_index] = squared_l2(tau, pi) + config.lam**2 * squared_l2(gamma, phi)
        phis[item_index] = phi

    distances = fit_terms[:, None] + fit_terms[None, :]
    distances += config.mu**2 * _pairwise_aspect_distances(phis)
    np.fill_diagonal(distances, 0.0)

    if n >= 2:
        off_diagonal = distances[~np.eye(n, dtype=bool)]
        max_distance = float(off_diagonal.max())
    else:
        max_distance = 0.0
    weights = max_distance - distances
    np.fill_diagonal(weights, 0.0)

    return ItemGraph(
        product_ids=tuple(p.product_id for p in instance.products),
        distances=distances,
        weights=weights,
    )
