"""TargetHkS: heaviest k-subgraph anchored at the target item (Problem 3).

Solvers:

* :func:`solve_greedy` — Algorithm 2: start from the target, repeatedly
  add the vertex maximising the subgraph weight.
* :func:`solve_ilp` — exact Eq. 7 via a chosen backend ("milp" = HiGHS
  linearisation, "bnb" = from-scratch branch and bound), time-limited.
* :func:`solve_brute_force` — exhaustive enumeration (tests / tiny n).
* :func:`solve_top_k_similarity` — baseline: k-1 items with the highest
  direct similarity to the target (Table 6's "Top-k similarity").
* :func:`solve_random` — baseline: target plus k-1 uniformly random items.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.graph.ilp import BranchAndBoundSolver, MilpBackendSolver, subset_weight
from repro.resilience.deadline import Deadline


@dataclass(frozen=True, slots=True)
class HksSolution:
    """A TargetHkS solution: chosen vertex indices (target included)."""

    selected: tuple[int, ...]
    weight: float
    algorithm: str
    proven_optimal: bool = False
    solve_seconds: float = 0.0

    def __post_init__(self) -> None:
        if len(set(self.selected)) != len(self.selected):
            raise ValueError("selected vertices must be distinct")


def total_weight(weights: np.ndarray, subset: tuple[int, ...]) -> float:
    """sum_{i<j in subset} w_ij (Eq. 6)."""
    return subset_weight(np.asarray(weights, dtype=float), subset)


def _check_arguments(weights: np.ndarray, k: int, target: int) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    n = weights.shape[0]
    if weights.ndim != 2 or weights.shape != (n, n):
        raise ValueError(f"weights must be square, got {weights.shape}")
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if not (0 <= target < n):
        raise ValueError(f"target {target} out of range for n={n}")
    return weights


def solve_greedy(weights: np.ndarray, k: int, target: int = 0) -> HksSolution:
    """Algorithm 2: greedily grow the solution from the target item.

    Each step adds the vertex p_i' maximising the weight of
    rho + {p_i'}; since the existing edges are fixed, that is the vertex
    with the largest total weight to the current set.  Ties break toward
    the lowest vertex index for determinism.

    The gain vector is maintained incrementally: adding vertex v only
    changes each candidate's gain by w(·, v), so the whole solve is
    O(n·k) vector updates instead of recomputing every candidate's sum
    against the chosen set each round (O(n²k)).  Chosen vertices are
    masked to -inf so ``argmax``'s first-maximum rule still breaks ties
    toward the lowest vertex index, exactly like the reference loop
    (kept as :func:`_solve_greedy_reference` for the equivalence tests).
    """
    weights = _check_arguments(weights, k, target)
    chosen = [target]
    gains = weights[:, target].astype(float, copy=True)
    gains[target] = -np.inf
    current_weight = 0.0
    while len(chosen) < k:
        best = int(np.argmax(gains))
        current_weight += float(gains[best])
        chosen.append(best)
        gains += weights[:, best]
        gains[best] = -np.inf
    return HksSolution(
        selected=tuple(sorted(chosen)),
        weight=current_weight,
        algorithm="TargetHkS_Greedy",
    )


def _solve_greedy_reference(weights: np.ndarray, k: int, target: int = 0) -> HksSolution:
    """The pre-optimisation greedy: recompute every gain each round.

    Kept as the semantic reference for :func:`solve_greedy`'s incremental
    gain updates — same selections, same tie-breaking.
    """
    weights = _check_arguments(weights, k, target)
    n = weights.shape[0]
    chosen = [target]
    remaining = [v for v in range(n) if v != target]
    current_weight = 0.0
    while len(chosen) < k:
        chosen_array = np.array(chosen)
        gains = [float(weights[v, chosen_array].sum()) for v in remaining]
        best_position = int(np.argmax(gains))
        current_weight += gains[best_position]
        chosen.append(remaining.pop(best_position))
    return HksSolution(
        selected=tuple(sorted(chosen)),
        weight=current_weight,
        algorithm="TargetHkS_Greedy",
    )


def solve_ilp(
    weights: np.ndarray,
    k: int,
    target: int = 0,
    time_limit: float = 60.0,
    backend: str = "milp",
    deadline: Deadline | None = None,
) -> HksSolution:
    """Exact Eq. 7 solution (within the time limit) via the chosen backend.

    ``backend="milp"`` uses scipy's HiGHS on the standard linearisation
    (the Gurobi stand-in); ``backend="bnb"`` uses the from-scratch branch
    and bound.  ``proven_optimal`` is False when the limit was hit first,
    mirroring the paper's 60-second Gurobi budget in Table 5.  An
    explicit ``deadline`` (or an ambient deadline scope) tightens the
    ``time_limit`` further; see :mod:`repro.resilience.deadline`.
    """
    weights = _check_arguments(weights, k, target)
    if backend == "milp":
        solver = MilpBackendSolver(time_limit=time_limit)
    elif backend == "bnb":
        solver = BranchAndBoundSolver(time_limit=time_limit)
    else:
        raise ValueError(f"unknown backend {backend!r}; use 'milp' or 'bnb'")
    solution = solver.solve(weights, k, target, deadline=deadline)
    return HksSolution(
        selected=solution.selected,
        weight=solution.weight,
        algorithm=f"TargetHkS_ILP[{backend}]",
        proven_optimal=solution.proven_optimal,
        solve_seconds=solution.solve_seconds,
    )


def solve_brute_force(weights: np.ndarray, k: int, target: int = 0) -> HksSolution:
    """Exhaustive optimum — O(C(n-1, k-1)); for tests and tiny graphs."""
    weights = _check_arguments(weights, k, target)
    n = weights.shape[0]
    others = [v for v in range(n) if v != target]
    best: tuple[int, ...] = (target,)
    best_weight = -np.inf
    for combo in combinations(others, k - 1):
        subset = (target, *combo)
        weight = subset_weight(weights, subset)
        if weight > best_weight:
            best_weight = weight
            best = subset
    return HksSolution(
        selected=tuple(sorted(best)),
        weight=float(best_weight) if best_weight > -np.inf else 0.0,
        algorithm="TargetHkS_BruteForce",
        proven_optimal=True,
    )


def solve_top_k_similarity(weights: np.ndarray, k: int, target: int = 0) -> HksSolution:
    """Baseline: the k-1 vertices most similar to the target itself."""
    weights = _check_arguments(weights, k, target)
    n = weights.shape[0]
    others = sorted(
        (v for v in range(n) if v != target),
        key=lambda v: (-float(weights[target, v]), v),
    )
    subset = tuple(sorted([target] + others[: k - 1]))
    return HksSolution(
        selected=subset,
        weight=subset_weight(weights, subset),
        algorithm="Top-k similarity",
    )


def solve_random(
    weights: np.ndarray,
    k: int,
    rng: np.random.Generator,
    target: int = 0,
) -> HksSolution:
    """Baseline: target plus k-1 uniformly random other vertices."""
    weights = _check_arguments(weights, k, target)
    n = weights.shape[0]
    others = [v for v in range(n) if v != target]
    picked = rng.choice(others, size=k - 1, replace=False) if k > 1 else []
    subset = tuple(sorted([target] + [int(v) for v in picked]))
    return HksSolution(
        selected=subset,
        weight=subset_weight(weights, subset),
        algorithm="Random",
    )
