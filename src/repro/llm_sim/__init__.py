"""A simulated LLM-judge selection baseline (§4.6.2 made measurable).

The paper argues that delegating comparative review selection to an LLM
via pairwise "are these comparable?" judgments explodes combinatorially.
This package turns that argument into a runnable experiment: a simulated
judge (ROUGE-based similarity standing in for the LLM's comparability
call, with optional noise standing in for hallucination) driving a
pairwise-judgment selection loop whose *judgment budget* is measured, so
cost and quality can be compared against CompaReSetS+ directly.
"""

from repro.llm_sim.judge import NoisyRougeJudge, PairwiseJudge
from repro.llm_sim.selector import LlmJudgeSelector

__all__ = ["LlmJudgeSelector", "NoisyRougeJudge", "PairwiseJudge"]
