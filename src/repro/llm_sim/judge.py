"""Pairwise comparability judges standing in for an LLM.

An LLM asked "are these two reviews comparable?" effectively scores their
topical overlap, with some probability of a confidently wrong answer
(hallucination).  :class:`NoisyRougeJudge` models exactly that: ROUGE-L
similarity as the signal plus seeded noise and a flip probability.  Every
call is counted so the selection loop's judgment budget — the quantity
§4.6.2's combinatorial argument is about — is observable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.models import Review
from repro.text.rouge import rouge_l


@runtime_checkable
class PairwiseJudge(Protocol):
    """Scores the comparability of two reviews in [0, 1]."""

    calls: int

    def compare(self, first: Review, second: Review) -> float:
        """Return a comparability score; higher means more comparable."""
        ...


class NoisyRougeJudge:
    """ROUGE-L comparability with additive noise and hallucinated flips.

    Parameters
    ----------
    noise_sd:
        Standard deviation of Gaussian noise added to the ROUGE score.
    flip_probability:
        Chance of returning a uniformly random score instead — the
        "confidently wrong" failure mode the paper's Fig. 12 illustrates.
    seed:
        Seed for the judge's private random stream.
    """

    def __init__(
        self,
        noise_sd: float = 0.05,
        flip_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_sd < 0:
            raise ValueError("noise_sd must be non-negative")
        if not (0.0 <= flip_probability <= 1.0):
            raise ValueError("flip_probability must be in [0, 1]")
        self.noise_sd = noise_sd
        self.flip_probability = flip_probability
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self._cache: dict[tuple[str, str], float] = {}

    def compare(self, first: Review, second: Review) -> float:
        """Score one pair; repeated identical queries hit a cache.

        Caching mirrors how a real system would memoise LLM calls; the
        ``calls`` counter only counts cache misses (billable judgments).
        """
        key = (first.review_id, second.review_id)
        if key[0] > key[1]:
            key = (key[1], key[0])
        if key in self._cache:
            return self._cache[key]
        self.calls += 1
        if self._rng.random() < self.flip_probability:
            score = float(self._rng.random())
        else:
            signal = rouge_l(first.text, second.text).f1
            score = float(np.clip(signal + self._rng.normal(0.0, self.noise_sd), 0.0, 1.0))
        self._cache[key] = score
        return score
