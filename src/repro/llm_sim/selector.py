"""Greedy pairwise-judgment selection — the tractable LLM strategy.

Exhaustively enumerating review tuples is the 25^18 blow-up of §4.6.2; no
real system would do it.  The realistic alternative is greedy: seed each
item's selection with the review the judge finds most comparable to the
target item's reviews, then grow selections one review at a time by the
best judged pair.  Even this "cheap" strategy needs a *quadratic* number
of pairwise judgments per item pair — the measurable cost this module
exposes — while CompaReSetS+ touches each review a constant number of
times per item.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SelectionConfig
from repro.core.selection import SelectionResult, register_selector
from repro.data.instances import ComparisonInstance
from repro.llm_sim.judge import NoisyRougeJudge, PairwiseJudge


@register_selector
class LlmJudgeSelector:
    """Selects review sets by greedy pairwise comparability judgments.

    The target item keeps its ``max_reviews`` longest reviews (a common
    LLM-pipeline heuristic: richest context first); every comparative
    item then greedily picks the reviews the judge scores most comparable
    to the target's kept reviews.  ``judge.calls`` after a run is the
    judgment budget spent.
    """

    name = "LLM-Judge"

    def __init__(self, judge: PairwiseJudge | None = None) -> None:
        self.judge = judge if judge is not None else NoisyRougeJudge()

    def select(
        self,
        instance: ComparisonInstance,
        config: SelectionConfig,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        """Greedy judged selection; deterministic given the judge's seed."""
        target_reviews = instance.reviews[0]
        target_order = sorted(
            range(len(target_reviews)),
            key=lambda j: -len(target_reviews[j].text),
        )
        target_selection = tuple(sorted(target_order[: config.max_reviews]))
        kept_target = [target_reviews[j] for j in target_selection]

        selections: list[tuple[int, ...]] = [target_selection]
        for reviews in instance.reviews[1:]:
            if not reviews:
                selections.append(())
                continue
            scored = []
            for index, review in enumerate(reviews):
                if kept_target:
                    score = max(
                        self.judge.compare(review, anchor) for anchor in kept_target
                    )
                else:
                    score = 0.0
                scored.append((score, index))
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            chosen = tuple(sorted(index for _, index in scored[: config.max_reviews]))
            selections.append(chosen)

        return SelectionResult(
            instance=instance, selections=tuple(selections), algorithm=self.name
        )
