"""Learned aspect-level preferences (the paper's §4.2.3 extension).

The paper notes that the opinion vector need not come from raw mention
counts: "we can also use other alternatives, such as learned aspect-level
preference vectors from another model (e.g., EFM)".  This package
implements that extension: a from-scratch Explicit Factor Model
(Zhang et al., SIGIR 2014) fitted on the corpus's aspect-sentiment data,
whose predicted item aspect-quality vectors plug into the selection
pipeline as an alternative target opinion vector.
"""

from repro.prefs.efm import EfmConfig, EfmModel, efm_target_vector

__all__ = ["EfmConfig", "EfmModel", "efm_target_vector"]
