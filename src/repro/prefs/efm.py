"""A from-scratch Explicit Factor Model (EFM, Zhang et al. SIGIR 2014).

EFM couples three observed matrices through shared low-rank factors:

* ``A`` (users x items) — star ratings;
* ``X`` (users x aspects) — how much each user *attends to* each aspect
  (here: how often they mention it);
* ``Y`` (items x aspects) — each item's *quality* on each aspect (here:
  the sentiment-weighted mention score, mapped to a positive scale).

The factorisation  A ~ U1 @ U2.T,  X ~ U1 @ V.T,  Y ~ U2 @ V.T  with
non-negative factors is fitted by multiplicative updates (Lee & Seung
2001, extended to the coupled objective).  The reconstructed Y-hat fills
in unobserved (item, aspect) qualities, which
:func:`efm_target_vector` turns into an alternative target opinion
vector for the selection pipeline (unary-scale semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corpus import Corpus

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class EfmConfig:
    """Hyper-parameters of the factorisation."""

    num_factors: int = 8
    iterations: int = 120
    weight_ratings: float = 1.0
    weight_attention: float = 1.0
    weight_quality: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_factors < 1:
            raise ValueError("num_factors must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        for weight in (self.weight_ratings, self.weight_attention, self.weight_quality):
            if weight < 0:
                raise ValueError("weights must be non-negative")


class EfmModel:
    """Fitted EFM over one corpus; see the module docstring."""

    def __init__(self, config: EfmConfig | None = None) -> None:
        self.config = config or EfmConfig()
        self._users: dict[str, int] = {}
        self._items: dict[str, int] = {}
        self._aspects: dict[str, int] = {}
        self._user_factors: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self._aspect_factors: np.ndarray | None = None

    # -- observed matrices -------------------------------------------------

    def _build_matrices(self, corpus: Corpus) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        users = sorted({r.reviewer_id for r in corpus.reviews})
        items = sorted({p.product_id for p in corpus.products})
        aspects = corpus.aspect_vocabulary()
        self._users = {u: i for i, u in enumerate(users)}
        self._items = {p: i for i, p in enumerate(items)}
        self._aspects = {a: i for i, a in enumerate(aspects)}

        ratings = np.zeros((len(users), len(items)))
        rating_counts = np.zeros_like(ratings)
        attention = np.zeros((len(users), len(aspects)))
        quality = np.zeros((len(items), len(aspects)))
        quality_counts = np.zeros_like(quality)

        for review in corpus.reviews:
            u = self._users[review.reviewer_id]
            p = self._items[review.product_id]
            ratings[u, p] += review.rating
            rating_counts[u, p] += 1
            for aspect in review.aspects:
                a = self._aspects[aspect]
                attention[u, a] += 1.0
                # Signed sentiment mapped to the positive 1..5 scale EFM uses.
                signed = review.signed_strength_for(aspect)
                quality[p, a] += 3.0 + 2.0 * float(np.tanh(signed))
                quality_counts[p, a] += 1

        with np.errstate(invalid="ignore", divide="ignore"):
            ratings = np.where(rating_counts > 0, ratings / np.maximum(rating_counts, 1), 0.0)
            quality = np.where(quality_counts > 0, quality / np.maximum(quality_counts, 1), 0.0)
        attention = np.log1p(attention)
        return ratings, attention, quality

    # -- fitting ------------------------------------------------------------

    def fit(self, corpus: Corpus) -> "EfmModel":
        """Fit the coupled non-negative factorisation on ``corpus``."""
        ratings, attention, quality = self._build_matrices(corpus)
        config = self.config
        rng = np.random.default_rng(config.seed)
        k = config.num_factors
        num_users, num_items = ratings.shape
        num_aspects = attention.shape[1]

        u1 = rng.uniform(0.1, 1.0, (num_users, k))
        u2 = rng.uniform(0.1, 1.0, (num_items, k))
        v = rng.uniform(0.1, 1.0, (num_aspects, k))

        # Masks: only observed entries contribute to the objective.
        mask_a = (ratings > 0).astype(float)
        mask_x = (attention > 0).astype(float)
        mask_y = (quality > 0).astype(float)
        wa, wx, wy = config.weight_ratings, config.weight_attention, config.weight_quality

        for _ in range(config.iterations):
            # Multiplicative updates on the coupled masked objective.
            numerator = wa * (mask_a * ratings) @ u2 + wx * (mask_x * attention) @ v
            denominator = (
                wa * (mask_a * (u1 @ u2.T)) @ u2
                + wx * (mask_x * (u1 @ v.T)) @ v
                + _EPS
            )
            u1 *= numerator / denominator

            numerator = wa * (mask_a * ratings).T @ u1 + wy * (mask_y * quality) @ v
            denominator = (
                wa * (mask_a * (u1 @ u2.T)).T @ u1
                + wy * (mask_y * (u2 @ v.T)) @ v
                + _EPS
            )
            u2 *= numerator / denominator

            numerator = wx * (mask_x * attention).T @ u1 + wy * (mask_y * quality).T @ u2
            denominator = (
                wx * (mask_x * (u1 @ v.T)).T @ u1
                + wy * (mask_y * (u2 @ v.T)).T @ u2
                + _EPS
            )
            v *= numerator / denominator

        self._user_factors = u1
        self._item_factors = u2
        self._aspect_factors = v
        return self

    # -- queries -------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._item_factors is None:
            raise RuntimeError("call fit() before querying the model")

    @property
    def aspects(self) -> list[str]:
        """Aspect vocabulary in factor order."""
        return list(self._aspects)

    def item_aspect_quality(self, product_id: str) -> np.ndarray:
        """Predicted quality of every aspect for ``product_id`` (>= 0)."""
        self._require_fitted()
        try:
            index = self._items[product_id]
        except KeyError:
            raise KeyError(f"unknown product {product_id!r}") from None
        return self._item_factors[index] @ self._aspect_factors.T

    def user_aspect_attention(self, reviewer_id: str) -> np.ndarray:
        """Predicted attention of ``reviewer_id`` over every aspect."""
        self._require_fitted()
        try:
            index = self._users[reviewer_id]
        except KeyError:
            raise KeyError(f"unknown reviewer {reviewer_id!r}") from None
        return self._user_factors[index] @ self._aspect_factors.T

    def predict_rating(self, reviewer_id: str, product_id: str) -> float:
        """Reconstructed rating, clipped to the 1..5 star range."""
        self._require_fitted()
        u = self._users.get(reviewer_id)
        p = self._items.get(product_id)
        if u is None or p is None:
            raise KeyError("unknown reviewer or product")
        value = float(self._user_factors[u] @ self._item_factors[p])
        return float(np.clip(value, 1.0, 5.0))

    def reconstruction_error(self, corpus: Corpus) -> float:
        """Masked RMSE of the rating reconstruction on ``corpus``."""
        self._require_fitted()
        errors = []
        for review in corpus.reviews:
            errors.append(
                (self.predict_rating(review.reviewer_id, review.product_id) - review.rating)
                ** 2
            )
        return float(np.sqrt(np.mean(errors))) if errors else 0.0


def efm_target_vector(
    model: EfmModel, product_id: str, aspect_order: list[str]
) -> np.ndarray:
    """An EFM-derived target opinion vector over ``aspect_order``.

    Predicted qualities (a 1..5-ish scale) are squashed to (0, 1) with the
    same sigmoid convention as the unary opinion scheme, so the vector is
    directly comparable to ``VectorSpace(..., UNARY_SCALE)`` opinion
    vectors; aspects unknown to the model get 0.
    """
    quality = model.item_aspect_quality(product_id)
    index = {aspect: i for i, aspect in enumerate(model.aspects)}
    target = np.zeros(len(aspect_order))
    for position, aspect in enumerate(aspect_order):
        model_index = index.get(aspect)
        if model_index is not None:
            centred = quality[model_index] - 3.0  # neutral quality -> 0
            target[position] = 1.0 / (1.0 + np.exp(-centred))
    return target
