"""Fault tolerance for the evaluation pipeline.

* :mod:`repro.resilience.deadline` — wall-clock :class:`Deadline` /
  :class:`Budget` objects and the ambient :func:`deadline_scope`, so an
  experiment-level budget propagates down to per-instance and per-solve
  limits.
* :mod:`repro.resilience.retry` — deterministic retry with seeded
  jittered backoff.
* :mod:`repro.resilience.fallback` — solver fallback chains
  (MILP -> branch and bound -> greedy) with provenance.
* :mod:`repro.resilience.faults` — seeded fault injection for tests.

Only the dependency-free deadline/retry layer is re-exported here;
``fallback`` and ``faults`` sit above the solver and selector registries
and are imported explicitly to keep the import graph acyclic.
"""

from repro.resilience.deadline import (
    Budget,
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
    resolve_deadline,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Budget",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "resolve_deadline",
]
