"""Crash-safe filesystem primitives shared by every durable writer.

Three subsystems persist state that must survive ``kill -9`` and torn
writes: the experiment checkpoint journal (:mod:`repro.experiments.persist`),
the serving write-ahead log (:mod:`repro.serve.wal`), and generation
snapshots (:mod:`repro.serve.snapshot`).  They all lean on the same two
guarantees, implemented once here:

* **atomic replace** — serialise the payload first, write it to a
  temporary file *in the target directory*, fsync the file, then
  ``os.replace`` it over the destination.  A crash at any point leaves
  either the old file or the new one, never a truncated hybrid.
* **directory durability** — ``os.replace`` makes the rename atomic but
  not durable; fsyncing the parent directory pins the new directory
  entry to disk so the file does not vanish on power loss.

POSIX semantics are assumed for directory fsync; on platforms where
opening a directory fails (Windows), it degrades to a no-op — the rename
is still atomic, just not power-loss durable.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import zlib
from pathlib import Path


def fsync_directory(path: str | Path) -> None:
    """Fsync a directory so renames inside it survive power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX hosts
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path, data: bytes, *, durable: bool = True
) -> None:
    """Write ``data`` to ``path`` atomically (same-directory temp + replace).

    ``durable=True`` additionally fsyncs the file before the rename and
    the parent directory after it; ``durable=False`` keeps only the
    atomicity (used for best-effort caches where losing the write is
    acceptable but a torn file is not).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    if durable:
        fsync_directory(path.parent)


def atomic_write_text(path: str | Path, text: str, *, durable: bool = True) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), durable=durable)


def checksum(data: bytes) -> int:
    """The CRC32 used by every checksummed record/file in the repo."""
    return zlib.crc32(data) & 0xFFFFFFFF
