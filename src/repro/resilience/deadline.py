"""Wall-clock deadlines and budgets for fault-tolerant evaluation runs.

The paper already embraces degradation semantics: Table 5 runs the
TargetHkS ILP under a 60-second limit and reports non-proven solutions
when it is hit.  This module generalises that into a first-class
mechanism.  A :class:`Deadline` is an absolute point on a monotonic
clock; a :class:`Budget` bundles the experiment-level wall-clock budget
with per-instance and per-solve caps.  A budget set at the experiment
level propagates down — every layer tightens the deadline it received
rather than inventing its own ``time_limit`` float.

Deadlines can also be installed ambiently with :func:`deadline_scope`,
so experiment drivers (`repro-cli experiment --time-budget`) can bound
whole runs without threading a parameter through every ``run_*``
signature; :func:`current_deadline` retrieves the active scope.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import time
from dataclasses import dataclass
from collections.abc import Callable, Iterator


class DeadlineExceeded(TimeoutError):
    """A wall-clock deadline ran out before the work completed."""


class Deadline:
    """An absolute wall-clock deadline on a monotonic clock.

    ``seconds=None`` means unlimited.  Deadlines are immutable; derive
    tighter ones with :meth:`tightened`.  A custom ``clock`` (a zero-arg
    callable returning seconds) makes deadline logic testable without
    sleeping.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self,
        seconds: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"seconds must be >= 0 or None, got {seconds}")
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    @classmethod
    def after(
        cls, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    @property
    def bounded(self) -> bool:
        """Whether this deadline can ever expire."""
        return self._expires_at is not None

    def remaining(self) -> float:
        """Seconds left (never negative); ``inf`` when unlimited."""
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            suffix = f" ({context})" if context else ""
            raise DeadlineExceeded(f"deadline exceeded{suffix}")

    def tightened(self, seconds: float | None) -> "Deadline":
        """The tighter of this deadline and one ``seconds`` from now.

        ``seconds=None`` returns ``self`` unchanged, so per-layer caps
        can be optional without branching at every call site.
        """
        if seconds is None:
            return self
        child = Deadline(seconds, clock=self._clock)
        if self._expires_at is not None and self._expires_at < child._expires_at:
            return self
        return child

    def as_time_limit(self, cap: float | None = None, minimum: float = 1e-3) -> float:
        """The remaining time as a plain solver ``time_limit`` float.

        Legacy solver APIs want a positive float; this clamps the
        remaining budget to at least ``minimum`` (so an already-expired
        deadline still yields a valid, immediately-expiring limit) and
        at most ``cap`` when given.
        """
        limit = self.remaining()
        if cap is not None:
            limit = min(limit, cap)
        if not math.isfinite(limit):
            raise ValueError("cannot express an unlimited deadline as a time limit")
        return max(limit, minimum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True, slots=True)
class Budget:
    """An experiment-level wall-clock budget with per-layer caps.

    ``total_seconds`` bounds the whole run, ``per_instance_seconds`` one
    problem instance, and ``per_solve_seconds`` a single solver call
    (the generalisation of the paper's 60-second Gurobi limit).  Any
    component may be ``None`` (unlimited).
    """

    total_seconds: float | None = None
    per_instance_seconds: float | None = None
    per_solve_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("total_seconds", "per_instance_seconds", "per_solve_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")

    def start(self, *, clock: Callable[[], float] = time.monotonic) -> Deadline:
        """Begin the run: the overall deadline for the whole budget."""
        return Deadline(self.total_seconds, clock=clock)

    def instance_deadline(self, overall: Deadline) -> Deadline:
        """The deadline for one instance under the running ``overall``."""
        return overall.tightened(self.per_instance_seconds)

    def solve_deadline(self, instance: Deadline) -> Deadline:
        """The deadline for one solver call under an instance deadline."""
        return instance.tightened(self.per_solve_seconds)


_ACTIVE_DEADLINE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_active_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient deadline installed by :func:`deadline_scope`, if any."""
    return _ACTIVE_DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | float | None) -> Iterator[Deadline]:
    """Install ``deadline`` as the ambient deadline for the block.

    Accepts a :class:`Deadline`, a number of seconds, or ``None`` (an
    unlimited scope that still shadows any outer one).  Layers that take
    an optional ``deadline`` parameter fall back to the ambient scope,
    so a budget set at the experiment level reaches every solver call.
    """
    if deadline is None:
        resolved = Deadline.unlimited()
    elif isinstance(deadline, Deadline):
        resolved = deadline
    else:
        resolved = Deadline.after(float(deadline))
    token = _ACTIVE_DEADLINE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE_DEADLINE.reset(token)


def resolve_deadline(deadline: "Deadline | float | None") -> Deadline:
    """Coerce an explicit deadline, falling back to the ambient scope.

    ``None`` consults :func:`current_deadline`; if no scope is active
    the result is unlimited.  Numbers mean "seconds from now".
    """
    if deadline is None:
        return current_deadline() or Deadline.unlimited()
    if isinstance(deadline, Deadline):
        return deadline
    return Deadline.after(float(deadline))
