"""Solver fallback chains with provenance.

Table 5 runs the TargetHkS ILP under a 60-second limit and reports
non-proven solutions when it is hit.  :class:`FallbackChain` generalises
that degradation: run the exact MILP, fall back to the from-scratch
branch and bound on solver error or an exhausted deadline, and finally
to the greedy Algorithm 2 — which always answers.  The outcome records
which backend actually produced the solution and what happened to every
stage before it, so experiment tables can report provenance alongside
``proven_optimal``.
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.graph.target_hks import HksSolution, solve_greedy, solve_ilp
from repro.resilience.deadline import Deadline, DeadlineExceeded, resolve_deadline

# A stage is a name from DEFAULT_STAGES, or a (name, solver) pair where
# solver(weights, k, target, deadline) -> HksSolution (for custom
# backends and fault-injection tests).
StageSolver = Callable[[np.ndarray, int, int, Deadline], HksSolution]

DEFAULT_STAGES: tuple[str, ...] = ("milp", "bnb", "greedy")


class FallbackExhausted(RuntimeError):
    """Every stage of a fallback chain failed (no terminal greedy stage)."""


@dataclass(frozen=True, slots=True)
class FallbackAttempt:
    """What happened to one stage of the chain."""

    backend: str
    status: str  # "ok" | "error" | "deadline"
    seconds: float
    error: str | None = None


@dataclass(frozen=True, slots=True)
class FallbackOutcome:
    """The chain's answer plus full provenance."""

    solution: HksSolution
    backend: str
    attempts: tuple[FallbackAttempt, ...]

    @property
    def degraded(self) -> bool:
        """Whether any earlier (preferred) stage failed before the answer."""
        return self.attempts[0].status != "ok"


def builtin_stage(name: str, time_limit: float) -> StageSolver:
    """The named built-in stage solver (public so callers can wrap it —
    the serving engine interposes circuit breakers per backend)."""
    return _builtin_stage(name, time_limit)


def _builtin_stage(name: str, time_limit: float) -> StageSolver:
    if name in ("milp", "bnb"):
        def solve(weights, k, target, deadline, _backend=name):
            return solve_ilp(
                weights, k, target,
                time_limit=time_limit, backend=_backend, deadline=deadline,
            )
        return solve
    if name == "greedy":
        def solve(weights, k, target, deadline):
            return solve_greedy(weights, k, target)
        return solve
    raise ValueError(
        f"unknown fallback stage {name!r}; use one of {DEFAULT_STAGES} "
        "or a (name, solver) pair"
    )


class FallbackChain:
    """Try TargetHkS backends in order, degrading on timeout or error.

    ``stages`` is an ordered sequence of backend names (``"milp"``,
    ``"bnb"``, ``"greedy"``) or ``(name, solver)`` pairs.  Each stage
    gets the remaining deadline, itself tightened by ``time_limit``
    (the per-solve cap, the paper's 60-second budget).  A stage that
    raises — or that cannot start because the deadline already expired —
    is recorded and the next stage is tried; ``"greedy"`` never fails,
    so the default chain always answers.
    """

    def __init__(
        self,
        stages: Sequence["str | tuple[str, StageSolver]"] = DEFAULT_STAGES,
        time_limit: float = 60.0,
    ) -> None:
        if not stages:
            raise ValueError("a fallback chain needs at least one stage")
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        self.time_limit = time_limit
        self._stages: list[tuple[str, StageSolver]] = []
        for stage in stages:
            if isinstance(stage, str):
                self._stages.append((stage, _builtin_stage(stage, time_limit)))
            else:
                name, solver = stage
                self._stages.append((str(name), solver))

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._stages)

    def solve(
        self,
        weights: np.ndarray,
        k: int,
        target: int = 0,
        deadline: Deadline | float | None = None,
    ) -> FallbackOutcome:
        """Solve TargetHkS, degrading through the chain as needed."""
        overall = resolve_deadline(deadline)
        attempts: list[FallbackAttempt] = []
        last = len(self._stages) - 1
        for position, (name, solver) in enumerate(self._stages):
            # Greedy (or whatever the terminal stage is) still runs on an
            # expired deadline: a cheap degraded answer beats no answer.
            if overall.expired() and position != last:
                attempts.append(
                    FallbackAttempt(backend=name, status="deadline", seconds=0.0)
                )
                continue
            start = time.perf_counter()
            try:
                solution = solver(
                    weights, k, target, overall.tightened(self.time_limit)
                )
            except DeadlineExceeded as exc:
                attempts.append(
                    FallbackAttempt(
                        backend=name,
                        status="deadline",
                        seconds=time.perf_counter() - start,
                        error=str(exc),
                    )
                )
            except Exception as exc:
                attempts.append(
                    FallbackAttempt(
                        backend=name,
                        status="error",
                        seconds=time.perf_counter() - start,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                attempts.append(
                    FallbackAttempt(
                        backend=name,
                        status="ok",
                        seconds=time.perf_counter() - start,
                    )
                )
                return FallbackOutcome(
                    solution=solution, backend=name, attempts=tuple(attempts)
                )
        raise FallbackExhausted(
            "all fallback stages failed: "
            + "; ".join(f"{a.backend}={a.status}({a.error})" for a in attempts)
        )


def solve_with_fallback(
    weights: np.ndarray,
    k: int,
    target: int = 0,
    deadline: Deadline | float | None = None,
    time_limit: float = 60.0,
    stages: Sequence["str | tuple[str, StageSolver]"] = DEFAULT_STAGES,
) -> FallbackOutcome:
    """One-shot convenience wrapper around :class:`FallbackChain`."""
    return FallbackChain(stages, time_limit=time_limit).solve(
        weights, k, target, deadline=deadline
    )
