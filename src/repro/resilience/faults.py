"""Deterministic fault injection for the evaluation pipeline.

The resilience guarantees of :mod:`repro.eval.parallel` — a crashing
worker loses only its own instance, a hung solve is cut off, transient
failures are retried — are only trustworthy if tests can *provoke* those
failures on demand.  This module injects them on a seeded schedule:

* :class:`FaultPlan` maps instance keys (target product ids) to
  :class:`FaultSpec` actions — crash, hang, slow-down, or "flaky"
  (fail the first N attempts, then succeed, for exercising retries).
* :class:`FaultInjectingSelector` wraps any registered selector and
  applies the plan before delegating.  It is itself registered (name
  ``"FaultInjecting"``) and configured entirely with picklable
  primitives, so it survives the process-pool boundary exactly like the
  real selectors.

Flaky faults need attempt counts that survive worker processes; they are
tracked as marker files under ``scratch_dir`` (one file per key, one
line per attempt), which keeps the schedule deterministic regardless of
which worker lands the retry.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.selection import (
    SelectionResult,
    make_selector,
    register_selector,
)


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised by real code paths)."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    ``kind`` is ``"crash"`` (raise :class:`InjectedFault`), ``"hang"``
    (sleep ``seconds`` then proceed — long enough to trip a runner
    timeout), ``"slow"`` (sleep ``seconds``, a mild delay), or
    ``"flaky"`` (raise on the first ``fail_attempts`` attempts, then
    proceed normally).
    """

    kind: str
    seconds: float = 0.0
    fail_attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang", "slow", "flaky"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.fail_attempts < 0:
            raise ValueError("fail_attempts must be >= 0")


class FaultPlan:
    """A deterministic schedule of faults keyed by instance identity."""

    def __init__(self, faults: Mapping[str, FaultSpec] | None = None) -> None:
        self._faults: dict[str, FaultSpec] = dict(faults or {})

    @classmethod
    def seeded(
        cls,
        keys: Iterable[str],
        seed: int,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        slow_rate: float = 0.0,
        hang_seconds: float = 1.0,
        slow_seconds: float = 0.05,
    ) -> "FaultPlan":
        """Assign faults to ``keys`` by seeded independent draws.

        The same (keys, seed, rates) always yields the same plan, so a
        fault-injection test failure replays exactly.
        """
        rng = np.random.default_rng(seed)
        faults: dict[str, FaultSpec] = {}
        for key in keys:
            draw = float(rng.random())
            if draw < crash_rate:
                faults[key] = FaultSpec(kind="crash")
            elif draw < crash_rate + hang_rate:
                faults[key] = FaultSpec(kind="hang", seconds=hang_seconds)
            elif draw < crash_rate + hang_rate + slow_rate:
                faults[key] = FaultSpec(kind="slow", seconds=slow_seconds)
        return cls(faults)

    def fault_for(self, key: str) -> FaultSpec | None:
        return self._faults.get(key)

    def __len__(self) -> int:
        return len(self._faults)

    def keys(self) -> tuple[str, ...]:
        return tuple(sorted(self._faults))


def _flaky_attempt_number(scratch_dir: str, key: str) -> int:
    """Record one attempt for ``key`` and return its 1-based number.

    Marker files make the count visible across worker processes; the
    append is a single small write, atomic enough for the sequential
    per-instance retries the runner performs.
    """
    os.makedirs(scratch_dir, exist_ok=True)
    marker = os.path.join(scratch_dir, f"flaky-{key}.attempts")
    with open(marker, "a", encoding="utf-8") as handle:
        handle.write("x\n")
    with open(marker, "r", encoding="utf-8") as handle:
        return sum(1 for _ in handle)


@register_selector
class FaultInjectingSelector:
    """Wrap a registered selector and inject scheduled faults.

    All constructor arguments are plain picklable primitives so the
    selector can be rebuilt inside pool workers from registry kwargs,
    exactly like production selectors:

    ``crash_ids``
        target product ids whose select always raises.
    ``hang``/``slow``
        mappings of target product id -> sleep seconds (hang is meant to
        exceed the runner's per-instance timeout; slow is a mild delay).
    ``flaky_ids``/``flaky_attempts``/``scratch_dir``
        ids that fail their first ``flaky_attempts`` attempts and then
        succeed; attempt counts live in ``scratch_dir`` marker files.
    """

    name = "FaultInjecting"

    def __init__(
        self,
        inner: str = "CompaReSetS_Greedy",
        inner_kwargs: dict | None = None,
        crash_ids: tuple[str, ...] | list[str] = (),
        hang: dict[str, float] | None = None,
        slow: dict[str, float] | None = None,
        flaky_ids: tuple[str, ...] | list[str] = (),
        flaky_attempts: int = 1,
        scratch_dir: str | None = None,
    ) -> None:
        self.inner = inner
        self.inner_kwargs = dict(inner_kwargs or {})
        self.crash_ids = frozenset(crash_ids)
        self.hang = dict(hang or {})
        self.slow = dict(slow or {})
        self.flaky_ids = frozenset(flaky_ids)
        self.flaky_attempts = flaky_attempts
        self.scratch_dir = scratch_dir
        if self.flaky_ids and scratch_dir is None:
            raise ValueError("flaky faults need a scratch_dir for attempt markers")

    def select(
        self,
        instance,
        config,
        rng: np.random.Generator | None = None,
    ) -> SelectionResult:
        key = instance.target.product_id
        if key in self.crash_ids:
            raise InjectedFault(f"injected crash for {key}")
        if key in self.flaky_ids:
            attempt = _flaky_attempt_number(self.scratch_dir, key)
            if attempt <= self.flaky_attempts:
                raise InjectedFault(
                    f"injected flaky failure for {key} (attempt {attempt})"
                )
        delay = self.hang.get(key, 0.0) + self.slow.get(key, 0.0)
        if delay > 0:
            time.sleep(delay)
        return make_selector(self.inner, **self.inner_kwargs).select(
            instance, config, rng=rng
        )
