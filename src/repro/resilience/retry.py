"""Deterministic retry with jittered exponential backoff.

Retries in an evaluation pipeline must not break reproducibility: a
stochastic selector that is retried has to produce the same selection it
would have produced on a clean first attempt.  The runner therefore
re-seeds every attempt identically (see ``repro.eval.parallel``), and
the *jitter* applied to backoff delays is itself derived from a seed, so
two runs of the same workload sleep the same amounts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.resilience.deadline import Deadline, DeadlineExceeded


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to attempt a unit of work and how long to wait.

    ``max_attempts=1`` means no retries.  Delay before attempt ``a``
    (a >= 2) is ``backoff_seconds * backoff_multiplier**(a - 2)``,
    scaled by a deterministic jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from the given seed.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy."""
        return cls(max_attempts=1)

    def delay_before(self, attempt: int, seed: int = 0) -> float:
        """Seconds to wait before ``attempt`` (1-based; attempt 1 is free)."""
        if attempt <= 1:
            return 0.0
        base = self.backoff_seconds * self.backoff_multiplier ** (attempt - 2)
        if self.jitter == 0.0 or base == 0.0:
            return base
        # Seeded per (seed, attempt): deterministic across runs and across
        # schedulers, yet de-synchronised across instances.
        uniform = float(np.random.default_rng([seed, attempt]).random())
        return base * (1.0 + self.jitter * (2.0 * uniform - 1.0))

    def call(
        self,
        fn: Callable[[int], object],
        *,
        seed: int = 0,
        deadline: Deadline | None = None,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
    ) -> object:
        """Run ``fn(attempt)`` until it succeeds or attempts run out.

        ``fn`` receives the 1-based attempt number (so callers can
        re-seed deterministically per attempt).  :class:`DeadlineExceeded`
        is never retried — an exhausted budget is not transient.
        """
        deadline = deadline or Deadline.unlimited()
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            wait = min(self.delay_before(attempt, seed=seed), deadline.remaining())
            if wait > 0:
                sleep(wait)
            deadline.check(f"retry attempt {attempt}")
            try:
                return fn(attempt)
            except DeadlineExceeded:
                raise
            except retry_on as exc:
                last_error = exc
        assert last_error is not None
        raise last_error
