"""Online selection serving: precomputed stores, caching, HTTP API.

The batch pipeline answers "regenerate Table 4"; this package answers
"what are the comparative review sets for product X, right now".  The
pieces compose bottom-up:

* :mod:`repro.serve.store` — :class:`ItemStore`: corpus ingested once,
  per-instance artifacts (vector space, tau/Gamma, incidence matrices)
  precomputed behind versioned keys.
* :mod:`repro.serve.cache` — :class:`ResultCache`: thread-safe LRU+TTL
  results with single-flight coalescing of concurrent identical requests.
* :mod:`repro.serve.batch` — :class:`MicroBatcher`: same-target request
  grouping so shared per-target work amortises.
* :mod:`repro.serve.engine` — :class:`SelectionEngine`: deadline-aware
  select / select_plus / narrow with provenance on every answer.
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``/healthz``, ``/metrics``, ``/v1/select``, ``/v1/narrow``,
  ``/v1/reload``).
* :mod:`repro.serve.metrics` — counters and reservoir histograms with
  JSON and Prometheus renderings.
* :mod:`repro.serve.admission` — :class:`AdmissionController`: bounded
  pending queue + token-bucket rate limiting; sheds excess load with
  typed :class:`Overloaded` errors (HTTP 429).
* :mod:`repro.serve.breaker` — per-backend :class:`CircuitBreaker`
  tripping failing solvers out of the narrow fallback chain.
* :mod:`repro.serve.health` — the healthy → degraded → draining state
  machine behind ``/healthz`` and graceful shutdown.
* :mod:`repro.serve.chaos` — deterministic in-process chaos harness
  (overload bursts, failing backends, mid-flight reloads) with SLO
  assertions; ``python -m repro.serve.chaos`` runs the default suite.

In-process quickstart (no sockets)::

    from repro.data.synthetic import generate_corpus
    from repro.serve import ItemStore, SelectionEngine

    engine = SelectionEngine(ItemStore(generate_corpus("Toy", scale=0.3)))
    response = engine.select(m=3, algorithm="CompaReSetS+")
    response.result["items"]          # the selected review sets
    response.provenance.cache         # "miss" first, then "hit"
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionStats,
    Overloaded,
    TokenBucket,
    request_cost,
)
from repro.serve.batch import BatchClosed, BatchStats, MicroBatcher
from repro.serve.breaker import BreakerBoard, CircuitBreaker, CircuitOpen
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.engine import (
    EngineClosed,
    EngineDraining,
    EngineResponse,
    InvalidRequest,
    NarrowRequest,
    Provenance,
    SelectionEngine,
    SelectRequest,
    selection_payload,
)
from repro.serve.health import HealthMonitor
from repro.serve.http import ServingHTTPServer, encode_json, make_server, run_server
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.store import (
    CorpusValidationError,
    InstanceArtifacts,
    ItemStore,
    ReloadInProgress,
    UnknownTargetError,
    UnviableTargetError,
    corpus_fingerprint,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BatchClosed",
    "BatchStats",
    "BreakerBoard",
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpen",
    "CorpusValidationError",
    "Counter",
    "EngineClosed",
    "EngineDraining",
    "EngineResponse",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "InstanceArtifacts",
    "InvalidRequest",
    "ItemStore",
    "MetricsRegistry",
    "MicroBatcher",
    "NarrowRequest",
    "Overloaded",
    "Provenance",
    "ReloadInProgress",
    "ResultCache",
    "SelectRequest",
    "SelectionEngine",
    "ServingHTTPServer",
    "TokenBucket",
    "UnknownTargetError",
    "UnviableTargetError",
    "corpus_fingerprint",
    "encode_json",
    "make_server",
    "request_cost",
    "run_server",
    "selection_payload",
]
