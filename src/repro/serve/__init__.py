"""Online selection serving: precomputed stores, caching, HTTP API.

The batch pipeline answers "regenerate Table 4"; this package answers
"what are the comparative review sets for product X, right now".  The
pieces compose bottom-up:

* :mod:`repro.serve.store` — :class:`ItemStore`: corpus ingested once,
  per-instance artifacts (vector space, tau/Gamma, incidence matrices)
  precomputed behind versioned keys.
* :mod:`repro.serve.cache` — :class:`ResultCache`: thread-safe LRU+TTL
  results with single-flight coalescing of concurrent identical requests.
* :mod:`repro.serve.batch` — :class:`MicroBatcher`: same-target request
  grouping so shared per-target work amortises.
* :mod:`repro.serve.engine` — :class:`SelectionEngine`: deadline-aware
  select / select_plus / narrow with provenance on every answer.
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``/healthz``, ``/metrics``, ``/v1/select``, ``/v1/narrow``,
  ``/v1/reload``).
* :mod:`repro.serve.metrics` — counters and reservoir histograms with
  JSON and Prometheus renderings.
* :mod:`repro.serve.admission` — :class:`AdmissionController`: bounded
  pending queue + token-bucket rate limiting; sheds excess load with
  typed :class:`Overloaded` errors (HTTP 429).
* :mod:`repro.serve.breaker` — per-backend :class:`CircuitBreaker`
  tripping failing solvers out of the narrow fallback chain.
* :mod:`repro.serve.health` — the healthy → degraded → draining state
  machine behind ``/healthz`` and graceful shutdown.
* :mod:`repro.serve.wal` — :class:`WriteAheadLog`: fsynced, checksummed
  delta log; every ingest is durable *before* it is acknowledged.
* :mod:`repro.serve.snapshot` — :class:`SnapshotManager` atomic
  generation snapshots and :func:`open_durable_store` (snapshot load +
  WAL replay = byte-identical recovery).
* :mod:`repro.serve.cachetier` — :class:`SharedCacheTier`: a
  breaker-guarded process-external result cache (file or in-memory
  backend) with generation-chained invalidation.
* :mod:`repro.serve.supervisor` — :class:`Supervisor`: the engine in a
  child process, crash detection, backoff restarts through recovery.
* :mod:`repro.serve.jitter` — :class:`RetryJitter`: seeded, bounded
  jitter on every ``Retry-After`` hint.
* :mod:`repro.serve.chaos` — deterministic in-process chaos harness
  (overload bursts, failing backends, mid-flight reloads, SIGKILL
  mid-ingest, torn WAL writes, full disks, cache outages, shard kills)
  with SLO assertions; ``python -m repro.serve.chaos`` runs the suite.
* :mod:`repro.serve.cluster` — horizontal scale-out: a consistent-hash
  ring, supervised shard workers speaking length-prefixed JSON frames,
  and an asyncio HTTP gateway (``repro-cli serve --shards N``) with
  byte-identical responses to the single-process server.

In-process quickstart (no sockets)::

    from repro.data.synthetic import generate_corpus
    from repro.serve import ItemStore, SelectionEngine

    engine = SelectionEngine(ItemStore(generate_corpus("Toy", scale=0.3)))
    response = engine.select(m=3, algorithm="CompaReSetS+")
    response.result["items"]          # the selected review sets
    response.provenance.cache         # "miss" first, then "hit"
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionStats,
    Overloaded,
    TokenBucket,
    request_cost,
)
from repro.serve.batch import BatchClosed, BatchStats, MicroBatcher
from repro.serve.breaker import BreakerBoard, CircuitBreaker, CircuitOpen
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.cachetier import (
    CacheBackend,
    CacheBackendError,
    FileBackend,
    InMemoryBackend,
    SharedCacheTier,
    TierStats,
    tier_key,
)
from repro.serve.engine import (
    EngineClosed,
    EngineDraining,
    EngineResponse,
    InvalidRequest,
    NarrowRequest,
    Provenance,
    SelectionEngine,
    SelectRequest,
    build_durable_engine,
    selection_payload,
)
from repro.serve.health import HealthMonitor
from repro.serve.http import ServingHTTPServer, encode_json, make_server, run_server
from repro.serve.jitter import NO_JITTER, RetryJitter
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.snapshot import (
    RecoveryInfo,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotInfo,
    SnapshotManager,
    open_durable_store,
)
from repro.serve.store import (
    CorpusValidationError,
    DeltaOutcome,
    DeltaValidationError,
    InstanceArtifacts,
    ItemStore,
    ReloadInProgress,
    UnknownTargetError,
    UnviableTargetError,
    corpus_fingerprint,
)
from repro.serve.supervisor import RestartPolicy, Supervisor, SupervisorError
from repro.serve.wal import (
    WALCorruptError,
    WALError,
    WALStats,
    WriteAheadLog,
    review_from_record,
    review_record,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BatchClosed",
    "BatchStats",
    "BreakerBoard",
    "CacheBackend",
    "CacheBackendError",
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpen",
    "CorpusValidationError",
    "Counter",
    "DeltaOutcome",
    "DeltaValidationError",
    "EngineClosed",
    "EngineDraining",
    "EngineResponse",
    "FileBackend",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "InMemoryBackend",
    "InstanceArtifacts",
    "InvalidRequest",
    "ItemStore",
    "MetricsRegistry",
    "MicroBatcher",
    "NO_JITTER",
    "NarrowRequest",
    "Overloaded",
    "Provenance",
    "RecoveryInfo",
    "ReloadInProgress",
    "RestartPolicy",
    "ResultCache",
    "RetryJitter",
    "SelectRequest",
    "SelectionEngine",
    "ServingHTTPServer",
    "SharedCacheTier",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotManager",
    "Supervisor",
    "SupervisorError",
    "TierStats",
    "TokenBucket",
    "UnknownTargetError",
    "UnviableTargetError",
    "WALCorruptError",
    "WALError",
    "WALStats",
    "WriteAheadLog",
    "build_durable_engine",
    "corpus_fingerprint",
    "encode_json",
    "make_server",
    "open_durable_store",
    "request_cost",
    "review_from_record",
    "review_record",
    "run_server",
    "selection_payload",
    "tier_key",
]
