"""Admission control: shed excess load *before* it burns a worker.

The serving worker pool bounds how many solves execute, but nothing in
PR 2 bounds how many requests pile up behind it — a 16x traffic burst
just queues, every queued request eventually times out, and the server
does maximal work for zero successful answers.  The classic fix is to
reject early and cheaply:

* a **bounded pending count** — at most ``max_pending`` requests may be
  inside the engine (queued or executing) at once; request
  ``max_pending + 1`` is refused in microseconds with a typed
  :class:`Overloaded` carrying a ``retry_after`` hint, which the HTTP
  layer renders as ``429`` + ``Retry-After``;
* a **token bucket** rate limiter — sustained arrival rate is capped at
  ``rate`` cost-units/second with bursts up to ``burst``, so a flood is
  smoothed instead of admitted until the queue bound trips;
* **per-request cost estimates** — :func:`request_cost` charges heavier
  requests (large ``m``, narrowing with many stages, big corpora) more
  tokens, so one expensive ``narrow`` spends the budget of several
  cheap ``select`` calls.

Everything takes an injectable monotonic ``clock`` so tests are
deterministic and sleep-free.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.serve.jitter import NO_JITTER, RetryJitter


class Overloaded(RuntimeError):
    """The request was shed by admission control (HTTP 429).

    ``retry_after`` is the server's hint, in seconds, for when capacity
    is expected again; ``reason`` is ``"queue_full"`` or
    ``"rate_limited"`` (a metrics label, not free text).
    """

    def __init__(
        self, message: str, *, retry_after: float = 1.0, reason: str = "queue_full"
    ) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)
        self.reason = reason


@dataclass(frozen=True, slots=True)
class AdmissionStats:
    """Counter snapshot for ``/metrics`` and the chaos harness."""

    admitted: int
    shed_queue: int
    shed_rate: int
    inflight: int
    max_pending: int
    tokens: float

    @property
    def shed(self) -> int:
        return self.shed_queue + self.shed_rate

    @property
    def shed_ratio(self) -> float:
        """Fraction of offered requests that were refused."""
        offered = self.admitted + self.shed
        return self.shed / offered if offered else 0.0

    @property
    def saturation(self) -> float:
        """Pending-queue fullness in [0, 1]."""
        return self.inflight / self.max_pending if self.max_pending else 0.0


class TokenBucket:
    """A standard token bucket on an injectable monotonic clock.

    ``rate=None`` disables rate limiting (the bucket always grants).
    ``burst`` defaults to one second of tokens.  Not thread-safe on its
    own — :class:`AdmissionController` serialises access.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0.0))
        if rate is not None and self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        if self.rate is not None:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently available (``inf`` when unlimited)."""
        if self.rate is None:
            return math.inf
        self._refill()
        return self._tokens

    def try_take(self, cost: float) -> float:
        """Take ``cost`` tokens; return 0.0 on success, else seconds to wait.

        On refusal no tokens are consumed and the return value is the
        time until ``cost`` tokens will have accumulated — the natural
        ``Retry-After`` hint.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if self.rate is None:
            return 0.0
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (min(cost, self.burst) - self._tokens) / self.rate


def request_cost(
    endpoint: str, m: int, k: int = 0, stages: int = 0, reviews: int = 0
) -> float:
    """Heuristic cost units for one request.

    A plain ``select`` with the default ``m=3`` is ~1 unit.  Larger
    review budgets, narrowing (which adds a graph build plus up to
    ``stages`` solver attempts), and bigger corpora all scale the
    estimate up.  The absolute numbers only need to be *relatively*
    right — the token bucket's ``rate`` is calibrated in the same units.
    """
    cost = 0.5 + m / 6.0
    if endpoint == "narrow":
        cost += 0.25 * max(1, k) + 0.25 * max(1, stages)
    if reviews > 0:
        # Gentle size scaling: a 10x bigger corpus costs ~1.4x.
        cost *= 1.0 + math.log10(max(reviews, 10)) / 6.0
    return cost


class _Admission:
    """Context manager for one admitted request's pending-queue slot."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()


class AdmissionController:
    """Bounded pending queue + token bucket in front of the engine.

    :meth:`admit` either returns a slot (use it as a context manager so
    the pending count is released on every exit path) or raises
    :class:`Overloaded` without blocking — shedding is O(1) and never
    waits on a solve.
    """

    def __init__(
        self,
        *,
        max_pending: int = 64,
        rate: float | None = None,
        burst: float | None = None,
        queue_retry_after: float = 0.1,
        jitter: RetryJitter | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if queue_retry_after < 0:
            raise ValueError("queue_retry_after must be >= 0")
        self.max_pending = max_pending
        self.queue_retry_after = queue_retry_after
        self.jitter = jitter or NO_JITTER
        self._bucket = TokenBucket(rate, burst, clock=clock)
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._shed_queue = 0
        self._shed_rate = 0

    def admit(self, cost: float = 1.0) -> _Admission:
        """Admit one request of ``cost`` units or raise :class:`Overloaded`."""
        with self._lock:
            if self._inflight >= self.max_pending:
                self._shed_queue += 1
                raise Overloaded(
                    f"pending queue full ({self.max_pending} requests in flight)",
                    retry_after=self.jitter.apply(self.queue_retry_after),
                    reason="queue_full",
                )
            wait = self._bucket.try_take(cost)
            if wait > 0:
                self._shed_rate += 1
                raise Overloaded(
                    f"rate limit exceeded (cost {cost:.2f}, "
                    f"~{wait:.3f}s until tokens refill)",
                    retry_after=self.jitter.apply(wait),
                    reason="rate_limited",
                )
            self._inflight += 1
            self._admitted += 1
        return _Admission(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def saturated(self) -> bool:
        """Whether the pending queue is at its bound right now."""
        with self._lock:
            return self._inflight >= self.max_pending

    def stats(self) -> AdmissionStats:
        with self._lock:
            tokens = self._bucket.tokens
            return AdmissionStats(
                admitted=self._admitted,
                shed_queue=self._shed_queue,
                shed_rate=self._shed_rate,
                inflight=self._inflight,
                max_pending=self.max_pending,
                tokens=tokens if math.isfinite(tokens) else -1.0,
            )
