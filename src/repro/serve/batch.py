"""Micro-batching for concurrent requests that share per-target work.

Single-flight (``serve.cache``) collapses *identical* requests; this
layer handles the adjacent case — concurrent requests that share
expensive solver state but not a result.  The engine groups **any
requests of one corpus generation** (same or different targets, mixed
budgets/algorithms): a sealed batch is handed to the GEMM-level batch
solver (:mod:`repro.core.batch_solver`), which stacks the per-item
subproblems that share Gram blocks into multi-RHS pursuit rounds, so a
burst of distinct requests costs close to one solve.

The first requester for a group key becomes the *leader*: it holds the
batch open for ``max_wait`` seconds (or until ``max_batch`` requests have
joined), then executes the whole batch in one handler call.  Joiners
block until the leader distributes their result.  A zero ``max_wait``
degrades gracefully to pass-through batches of one.

The batcher is generic — the handler receives ``(key, requests)`` and
returns one result per request — so it is unit-testable without an
engine behind it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.deadline import Deadline, DeadlineExceeded


class BatchClosed(RuntimeError):
    """The batcher was closed while requests were waiting."""


class _Slot:
    """One request's seat in a batch."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def resolve(self, result: Any = None, error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


@dataclass
class _Batch:
    slots: list[tuple[Any, _Slot]] = field(default_factory=list)
    full: threading.Event = field(default_factory=threading.Event)


@dataclass(frozen=True, slots=True)
class BatchStats:
    submitted: int
    batches: int
    batched_requests: int
    largest_batch: int

    @property
    def amortisation(self) -> float:
        """Mean requests per handler call (1.0 = no batching benefit)."""
        return self.submitted / self.batches if self.batches else 0.0


class MicroBatcher:
    """Group concurrent same-key requests into one handler call.

    ``handler(key, requests)`` must return a sequence of results aligned
    with ``requests``; an exception fails the whole batch.  ``max_wait``
    is the batching window in seconds — the extra latency a lone request
    pays to give concurrent peers a chance to join.
    """

    def __init__(
        self,
        handler: Callable[[Hashable, list[Any]], Sequence[Any]],
        *,
        max_batch: int = 8,
        max_wait: float = 0.005,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._lock = threading.Lock()
        self._open: dict[Hashable, _Batch] = {}
        self._closed = False
        self._submitted = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0

    def submit(
        self,
        key: Hashable,
        request: Any,
        deadline: Deadline | None = None,
    ) -> Any:
        """Submit one request and block until its result is available."""
        slot = _Slot()
        with self._lock:
            if self._closed:
                raise BatchClosed("batcher is closed")
            self._submitted += 1
            batch = self._open.get(key)
            leader = batch is None
            if leader:
                batch = _Batch()
                self._open[key] = batch
            batch.slots.append((request, slot))
            if len(batch.slots) >= self.max_batch:
                batch.full.set()

        if not leader:
            timeout = None
            if deadline is not None and deadline.bounded:
                timeout = deadline.remaining()
            if not slot.done.wait(timeout):
                raise DeadlineExceeded(
                    "deadline exceeded while waiting for a batched solve"
                )
            if slot.error is not None:
                raise slot.error
            return slot.result

        # Leader: hold the window open, then seal and execute the batch.
        window = self.max_wait
        if deadline is not None and deadline.bounded:
            window = min(window, deadline.remaining())
        if window > 0 and self.max_batch > 1:
            batch.full.wait(window)
        with self._lock:
            self._open.pop(key, None)
            sealed = list(batch.slots)
            self._batches += 1
            self._batched_requests += len(sealed) - 1
            self._largest_batch = max(self._largest_batch, len(sealed))

        # Re-check the deadline after the window wait: a leader whose
        # budget expired while holding the batch open must not spend the
        # handler's solve time on a result nobody can use — but its
        # joiners may still be within budget, so they keep the batch.
        if deadline is not None and deadline.bounded and deadline.expired():
            expired = DeadlineExceeded(
                "deadline exceeded while holding the batch window open"
            )
            joiners = [(request_, slot_) for request_, slot_ in sealed if slot_ is not slot]
            if joiners:
                try:
                    results = self._handler(
                        key, [request_ for request_, _ in joiners]
                    )
                    if len(results) != len(joiners):
                        raise RuntimeError(
                            f"batch handler returned {len(results)} results "
                            f"for {len(joiners)} requests"
                        )
                except BaseException as exc:
                    for _, each in joiners:
                        each.resolve(error=exc)
                    slot.resolve(error=expired)
                    raise expired from exc
                for (_, each), result in zip(joiners, results):
                    each.resolve(result=result)
            slot.resolve(error=expired)
            raise expired

        try:
            results = self._handler(key, [request for request, _ in sealed])
            if len(results) != len(sealed):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results for "
                    f"{len(sealed)} requests"
                )
        except BaseException as exc:
            for _, each in sealed:
                each.resolve(error=exc)
            raise
        for (_, each), result in zip(sealed, results):
            each.resolve(result=result)
        if slot.error is not None:  # pragma: no cover - defensive
            raise slot.error
        return slot.result

    def close(self) -> None:
        """Reject new submissions and fail any still-open batches."""
        with self._lock:
            self._closed = True
            open_batches = list(self._open.values())
            self._open.clear()
        for batch in open_batches:
            for _, slot in batch.slots:
                if not slot.done.is_set():
                    slot.resolve(error=BatchClosed("batcher closed mid-batch"))

    def stats(self) -> BatchStats:
        with self._lock:
            return BatchStats(
                submitted=self._submitted,
                batches=self._batches,
                batched_requests=self._batched_requests,
                largest_batch=self._largest_batch,
            )
