"""Per-backend circuit breakers for the narrow fallback chain.

The PR-1 :class:`~repro.resilience.fallback.FallbackChain` already
degrades a *single* request past a failing solver stage — but every
request still pays for the doomed attempt (often a full solver timeout)
before falling through.  Under load that is exactly backwards: a backend
that has failed its last N attempts should be skipped *immediately* so
requests land on the cheaper stage without burning their deadline.

:class:`CircuitBreaker` is the textbook three-state machine:

* **closed** — calls flow through; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips; calls are refused instantly for ``recovery_time``
  seconds.
* **half-open** — after ``recovery_time`` a limited number of probe
  calls are let through; one success closes the breaker, one failure
  re-opens it.

All timing runs on an injectable monotonic clock, so the full state
machine is testable without sleeping.  :class:`BreakerBoard` keeps one
breaker per backend name, exposes their states to ``/metrics``, and
wraps stage solvers for the engine.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping


class CircuitOpen(RuntimeError):
    """A call was refused because the backend's breaker is open."""


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding used by ``/metrics`` (ordered by severity).
STATE_CODES: Mapping[str, int] = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Three-state circuit breaker on a monotonic clock."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time <= 0:
            raise ValueError(f"recovery_time must be positive, got {recovery_time}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self._transitions = 0

    def _transition(self, new_state: str) -> None:
        # Caller holds self._lock.
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        self._transitions += 1
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions

    def _maybe_half_open(self) -> None:
        # Caller holds self._lock.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._transition(HALF_OPEN)
            self._probes = 0

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state this also *claims* a probe slot, so at most
        ``half_open_probes`` concurrent callers test the backend.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh timer.
                self._transition(OPEN)
                self._opened_at = self._clock()
                self._failures = self.failure_threshold
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._transition(OPEN)
                self._opened_at = self._clock()


class BreakerBoard:
    """One :class:`CircuitBreaker` per backend name, metrics-friendly.

    ``transition_hook(backend, old, new)`` fires on every state change
    (the engine feeds it into a ``repro_breaker_transitions_total``
    counter).  Breakers are created lazily on first use and shared
    thereafter.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        transition_hook: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self._kwargs = {
            "failure_threshold": failure_threshold,
            "recovery_time": recovery_time,
            "half_open_probes": half_open_probes,
            "clock": clock,
        }
        self._transition_hook = transition_hook
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def add_transition_hook(
        self, hook: Callable[[str, str, str], None]
    ) -> None:
        """Chain ``hook`` after any existing transition hook.

        The engine calls this on whatever board it is handed, so breaker
        transitions reach the metrics registry even when the board was
        constructed by the caller.  Only breakers created from now on
        observe the new hook; breakers already in the board keep their
        original callbacks.
        """
        with self._lock:
            existing = self._transition_hook
            if existing is None:
                self._transition_hook = hook
                return

            def chained(backend: str, old: str, new: str) -> None:
                existing(backend, old, new)
                hook(backend, old, new)

            self._transition_hook = chained

    def breaker(self, backend: str) -> CircuitBreaker:
        with self._lock:
            existing = self._breakers.get(backend)
            if existing is not None:
                return existing
            hook = None
            if self._transition_hook is not None:
                outer = self._transition_hook

                def hook(old: str, new: str, _backend: str = backend) -> None:
                    outer(_backend, old, new)

            created = CircuitBreaker(on_transition=hook, **self._kwargs)
            self._breakers[backend] = created
            return created

    def states(self) -> dict[str, str]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.state for name, breaker in breakers.items()}

    def open_backends(self) -> tuple[str, ...]:
        """Backends currently refusing calls (open, sorted for stability)."""
        return tuple(
            sorted(name for name, state in self.states().items() if state == OPEN)
        )

    def wrap(self, backend: str, solver, *, skipped: list | None = None, gate: bool = True):
        """Wrap a fallback-stage solver with this board's breaker.

        A refused call raises :class:`CircuitOpen` immediately (the
        fallback chain records it and moves to the next stage);
        ``skipped`` collects the names of backends skipped that way for
        provenance.  ``gate=False`` disables the refusal (used for the
        terminal stage, which must always answer) but still records
        success/failure so the breaker tracks its health.
        """
        breaker = self.breaker(backend)

        def guarded(weights, k, target, deadline):
            if gate and not breaker.allow():
                if skipped is not None:
                    skipped.append(backend)
                raise CircuitOpen(f"circuit open for backend {backend!r}")
            try:
                solution = solver(weights, k, target, deadline)
            except Exception:
                breaker.record_failure()
                raise
            breaker.record_success()
            return solution

        return guarded
