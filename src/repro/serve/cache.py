"""Thread-safe LRU+TTL result cache with single-flight coalescing.

The serving hot path is "N identical requests arrive together" — a flash
of traffic for one popular product.  A plain cache still solves N times
(every miss races past the lookup before the first solve lands); the
single-flight discipline makes the first caller the *leader* that
computes while the N-1 *followers* block on its completion and share the
result.  :meth:`ResultCache.get_or_compute` is the whole public recipe;
hit/miss/coalesced/eviction/expiry counters feed ``/metrics``.

Errors are not cached: a leader that raises propagates the exception to
every coalesced follower, and the next request for that key starts a
fresh solve.  A follower whose deadline expires before the leader
finishes raises :class:`~repro.resilience.deadline.DeadlineExceeded`
without disturbing the in-flight computation.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.resilience.deadline import Deadline, DeadlineExceeded

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counter snapshot; ``coalesced`` counts followers served by a leader."""

    hits: int
    misses: int
    coalesced: int
    evictions: int
    expirations: int
    size: int
    inflight: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered without a fresh solve."""
        served = self.hits + self.coalesced
        total = served + self.misses
        return served / total if total else 0.0


class _InFlight:
    """One leader computation that followers can wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class ResultCache:
    """Bounded LRU cache with per-entry TTL and single-flight coalescing.

    ``max_size`` bounds the number of *completed* entries (in-flight
    computations are tracked separately and never evicted).  ``ttl``
    is seconds-to-live per entry; ``None`` disables expiry.  ``clock``
    is injectable for TTL tests.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.max_size = max_size
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, float | None]] = OrderedDict()
        self._entry_tags: dict[Hashable, tuple[str, ...]] = {}
        self._inflight: dict[Hashable, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals (callers hold self._lock) --------------------------------

    def _lookup(self, key: Hashable) -> tuple[bool, Any]:
        entry = self._entries.get(key)
        if entry is None:
            return False, None
        value, expires_at = entry
        if expires_at is not None and self._clock() >= expires_at:
            del self._entries[key]
            self._entry_tags.pop(key, None)
            self._expirations += 1
            return False, None
        self._entries.move_to_end(key)
        return True, value

    def _store(
        self, key: Hashable, value: Any, tags: tuple[str, ...] = ()
    ) -> None:
        expires_at = None if self.ttl is None else self._clock() + self.ttl
        self._entries[key] = (value, expires_at)
        self._entries.move_to_end(key)
        if tags:
            self._entry_tags[key] = tags
        else:
            self._entry_tags.pop(key, None)
        while len(self._entries) > self.max_size:
            evicted, _ = self._entries.popitem(last=False)
            self._entry_tags.pop(evicted, None)
            self._evictions += 1

    # -- public API ----------------------------------------------------------

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """``(hit, value)`` without computing; counts a hit or a miss."""
        with self._lock:
            hit, value = self._lookup(key)
            if hit:
                self._hits += 1
            else:
                self._misses += 1
            return hit, value

    def put(
        self, key: Hashable, value: Any, tags: tuple[str, ...] = ()
    ) -> None:
        """Insert ``value`` directly (warming; bypasses single-flight).

        ``tags`` label the entry for :meth:`invalidate_tags` — the
        engine tags each entry with the product ids of its instance so
        a review delta evicts exactly the entries it staled.
        """
        with self._lock:
            self._store(key, value, tags)

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], T],
        deadline: Deadline | None = None,
        tags: tuple[str, ...] = (),
    ) -> tuple[T, str]:
        """Return ``(value, source)``; source is "hit" | "miss" | "coalesced".

        Exactly one concurrent caller per key runs ``compute``; the rest
        wait for its result.  ``deadline`` bounds only the follower wait —
        the leader's own compute is expected to honour it internally.
        """
        with self._lock:
            hit, value = self._lookup(key)
            if hit:
                self._hits += 1
                return value, "hit"
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                leader = True
                self._misses += 1
            else:
                leader = False
                self._coalesced += 1

        if leader:
            try:
                value = compute()
            except BaseException as exc:
                flight.error = exc
                raise
            else:
                flight.value = value
                with self._lock:
                    self._store(key, value, tags)
                return value, "miss"
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.done.set()

        timeout = None
        if deadline is not None and deadline.bounded:
            timeout = deadline.remaining()
        if not flight.done.wait(timeout):
            raise DeadlineExceeded(
                "deadline exceeded while waiting for an in-flight solve"
            )
        if flight.error is None:
            return flight.value, "coalesced"
        # Leader failed: propagate to followers too, but never cache the
        # error — the next request for this key solves afresh.
        raise flight.error

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; True if it existed."""
        with self._lock:
            self._entry_tags.pop(key, None)
            return self._entries.pop(key, None) is not None

    def invalidate_tags(self, tags: Iterable[str]) -> int:
        """Drop every entry labelled with any of ``tags``; returns count.

        This is the local half of generation-chained invalidation: a
        replayed or live delta to product P evicts exactly the entries
        tagged with P, leaving the rest of the cache warm.
        """
        wanted = set(tags)
        if not wanted:
            return 0
        with self._lock:
            doomed = [
                key
                for key, entry_tags in self._entry_tags.items()
                if wanted.intersection(entry_tags)
            ]
            for key in doomed:
                self._entries.pop(key, None)
                self._entry_tags.pop(key, None)
            return len(doomed)

    def clear(self) -> int:
        """Drop every completed entry (in-flight solves finish unaffected)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._entry_tags.clear()
            return dropped

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                coalesced=self._coalesced,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                inflight=len(self._inflight),
            )
