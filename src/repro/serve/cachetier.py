"""Pluggable shared cache tier behind the local result cache.

The local :class:`~repro.serve.cache.ResultCache` dies with the process
— after a crash-restart every popular request re-solves even though the
recovered generation is byte-identical to the pre-crash one.  The shared
tier fixes that: solved results are published to a :class:`CacheBackend`
(a process-external store) keyed by the generation *chain token*, so a
restarted engine — or a sibling process on the same host — hits warm
entries immediately.

Two backends ship: :class:`InMemoryBackend` (tests and the chaos
harness's fault injection) and :class:`FileBackend` (a host-local
directory of checksummed entry files, shared across processes; writes
are atomic-replace so readers never observe torn values).

Failure containment is non-negotiable — a cache must never take down
the serving path.  :class:`SharedCacheTier` wraps every backend call in
a :class:`~repro.serve.breaker.CircuitBreaker`: backend errors degrade
reads to misses and drop writes, consecutive failures trip the breaker
so an out-of-service backend costs nothing per request, and half-open
probes re-attach automatically when it comes back.  The engine keeps
serving from its local LRU throughout.

Invalidation is generation-chained, not version-global: entries carry
product-id *tags*, and a review delta purges only entries tagged with an
affected product.  Because keys embed the chain token (lineage +
per-product epochs), stale entries are unreachable even if a purge is
lost while the backend is out — the purge is hygiene, the key is the
guarantee.

Values cross process boundaries, so they are JSON envelopes (never
pickle — a shared file tier must not be a code-execution vector) with a
CRC32 over the payload; a corrupt entry reads as a miss and is deleted.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.atomicio import atomic_write_bytes, checksum
from repro.serve.breaker import CircuitBreaker

_FORMAT = 1


class CacheBackendError(RuntimeError):
    """A shared-cache backend operation failed (outage, IO error)."""


class CacheBackend:
    """Interface a shared-tier backend implements.

    Keys are opaque strings; values are opaque bytes.  Implementations
    raise :class:`CacheBackendError` on operational failure — the tier
    translates that into graceful degradation, never a request error.
    """

    name = "backend"

    def get(self, key: str) -> bytes | None:
        raise NotImplementedError

    def put(self, key: str, value: bytes, tags: Sequence[str]) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def purge_tags(self, tags: Iterable[str]) -> int:
        raise NotImplementedError

    def entry_count(self) -> int:
        raise NotImplementedError


class InMemoryBackend(CacheBackend):
    """Dict-backed backend with scriptable outages (tests / chaos).

    ``fail(n)`` makes the next ``n`` operations raise
    :class:`CacheBackendError`; ``set_down(True)`` fails everything
    until further notice — the cache-backend-outage chaos scenario
    drives exactly these two knobs.
    """

    name = "memory"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[bytes, tuple[str, ...]]] = {}
        self._fail_next = 0
        self._down = False
        self.operations = 0
        self.failures = 0

    def fail(self, operations: int = 1) -> None:
        with self._lock:
            self._fail_next = max(self._fail_next, int(operations))

    def set_down(self, down: bool) -> None:
        with self._lock:
            self._down = bool(down)

    def _gate(self) -> None:
        with self._lock:
            self.operations += 1
            if self._down or self._fail_next > 0:
                if self._fail_next > 0:
                    self._fail_next -= 1
                self.failures += 1
                raise CacheBackendError("injected backend outage")

    def get(self, key: str) -> bytes | None:
        self._gate()
        with self._lock:
            entry = self._entries.get(key)
            return entry[0] if entry else None

    def put(self, key: str, value: bytes, tags: Sequence[str]) -> None:
        self._gate()
        with self._lock:
            self._entries[key] = (bytes(value), tuple(tags))

    def delete(self, key: str) -> None:
        self._gate()
        with self._lock:
            self._entries.pop(key, None)

    def purge_tags(self, tags: Iterable[str]) -> int:
        self._gate()
        wanted = set(tags)
        with self._lock:
            doomed = [
                key
                for key, (_, entry_tags) in self._entries.items()
                if wanted.intersection(entry_tags)
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)


class FileBackend(CacheBackend):
    """Host-local shared cache: one checksummed file per entry.

    Entries live flat in ``root`` as ``<sha256(key)>.cache``; the file
    body is a JSON envelope carrying the key (for verification), the
    tags (for purges), and the payload.  Writes go through the shared
    atomic-replace helper with ``durable=False`` — losing a cached
    entry in a power cut is fine, serving half a value is not.  Any IO
    error surfaces as :class:`CacheBackendError` for the tier's breaker
    to count; a checksum mismatch deletes the entry and reads as a miss.
    """

    name = "file"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.root / f"{digest}.cache"

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CacheBackendError(f"read {path}: {exc}") from exc
        entry = self._decode(path, raw)
        if entry is None or entry["key"] != key:
            return None
        return bytes.fromhex(entry["payload"])

    def _decode(self, path: Path, raw: bytes) -> dict | None:
        try:
            entry = json.loads(raw)
            payload = bytes.fromhex(entry["payload"])
            if entry.get("format") != _FORMAT or checksum(payload) != entry["crc"]:
                raise ValueError("checksum or format mismatch")
        except (ValueError, KeyError, TypeError):
            # Corrupt entry: self-heal by deleting, report a miss.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        return entry

    def put(self, key: str, value: bytes, tags: Sequence[str]) -> None:
        envelope = json.dumps(
            {
                "format": _FORMAT,
                "key": key,
                "tags": list(tags),
                "crc": checksum(value),
                "payload": value.hex(),
            }
        ).encode()
        try:
            atomic_write_bytes(self._path(key), envelope, durable=False)
        except OSError as exc:
            raise CacheBackendError(f"write {key!r}: {exc}") from exc

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink(missing_ok=True)
        except OSError as exc:
            raise CacheBackendError(f"delete {key!r}: {exc}") from exc

    def purge_tags(self, tags: Iterable[str]) -> int:
        wanted = set(tags)
        purged = 0
        try:
            paths = list(self.root.glob("*.cache"))
        except OSError as exc:
            raise CacheBackendError(f"scan {self.root}: {exc}") from exc
        for path in paths:
            try:
                entry = self._decode(path, path.read_bytes())
            except OSError:
                continue
            if entry is not None and wanted.intersection(entry.get("tags", ())):
                try:
                    path.unlink(missing_ok=True)
                    purged += 1
                except OSError:
                    continue
        return purged

    def entry_count(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.cache"))
        except OSError as exc:
            raise CacheBackendError(f"scan {self.root}: {exc}") from exc


@dataclass(frozen=True, slots=True)
class TierStats:
    """Shared-tier counters for ``/metrics``."""

    backend: str
    breaker_state: str
    gets: int
    hits: int
    puts: int
    purges: int
    errors: int
    skipped: int


class SharedCacheTier:
    """Breaker-guarded JSON cache tier; never fails the request path.

    Every operation degrades on trouble: ``get`` returns a miss,
    ``put``/``purge`` drop silently (counted), and once the breaker
    opens, calls are skipped outright until the recovery probe
    succeeds.  Lost purges are safe because keys embed the generation
    chain token — see the module docstring.
    """

    def __init__(
        self,
        backend: CacheBackend,
        *,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.backend = backend
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, recovery_time=5.0, clock=clock
        )
        self._lock = threading.Lock()
        self._gets = 0
        self._hits = 0
        self._puts = 0
        self._purges = 0
        self._errors = 0
        self._skipped = 0

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def _guarded(self, operation: Callable[[], object]) -> tuple[bool, object]:
        """(ran, result); absorbs backend errors into breaker state."""
        if not self.breaker.allow():
            self._count("_skipped")
            return False, None
        try:
            result = operation()
        except CacheBackendError:
            self._count("_errors")
            self.breaker.record_failure()
            return False, None
        self.breaker.record_success()
        return True, result

    def get(self, key: str) -> dict | None:
        """The cached JSON value for ``key``, or None (miss or outage)."""
        self._count("_gets")
        ran, raw = self._guarded(lambda: self.backend.get(key))
        if not ran or raw is None:
            return None
        try:
            value = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            self._guarded(lambda: self.backend.delete(key))
            return None
        self._count("_hits")
        return value

    def put(self, key: str, value: dict, tags: Sequence[str] = ()) -> bool:
        """Publish ``value``; False when dropped (outage or open breaker)."""
        blob = json.dumps(value, separators=(",", ":")).encode()
        ran, _ = self._guarded(lambda: self.backend.put(key, blob, tags))
        if ran:
            self._count("_puts")
        return ran

    def purge_products(self, product_ids: Iterable[str]) -> int:
        """Evict entries tagged with any of ``product_ids``; -1 on outage."""
        tags = tuple(product_ids)
        if not tags:
            return 0
        ran, purged = self._guarded(lambda: self.backend.purge_tags(tags))
        if not ran:
            return -1
        self._count("_purges")
        return int(purged)

    def stats(self) -> TierStats:
        with self._lock:
            return TierStats(
                backend=self.backend.name,
                breaker_state=self.breaker.state,
                gets=self._gets,
                hits=self._hits,
                puts=self._puts,
                purges=self._purges,
                errors=self._errors,
                skipped=self._skipped,
            )


def tier_key(chain_token: str, *parts: object) -> str:
    """A deterministic cross-process cache key.

    Hashes the generation chain token plus every request-shaping
    parameter; identical requests against identical generation chains —
    in any process, before or after a crash — map to the same key.
    """
    digest = hashlib.sha256()
    digest.update(chain_token.encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return digest.hexdigest()
