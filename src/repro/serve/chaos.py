"""Deterministic chaos harness for the serving layer.

Production claims — "sheds load fast", "degrades instead of timing out",
"drains cleanly" — are only trustworthy if a test can provoke the bad
weather on demand.  This module scripts it, entirely in-process: a real
:class:`~repro.serve.http.ServingHTTPServer` on an ephemeral port, a
barrier-synchronised burst of client threads, fault-injected solver
backends (reusing the PR-1 :class:`~repro.resilience.faults.FaultSpec`
vocabulary), optional mid-flight corpus reloads, and a graceful drain
under load.  Every scenario then checks its SLOs:

* zero uncaught 500s (and zero transport errors);
* every accepted request finishes within its deadline;
* shed requests are answered 429 fast (server-side p99 < 10 ms);
* an injected failing backend trips its circuit breaker, visibly in
  ``/metrics``;
* a mid-flight reload serves every response from exactly one corpus
  generation (old or new, never a hybrid);
* a drain under load completes every in-flight request before closing.

The durability scenarios go further: a real child process killed with
SIGKILL mid-ingest, a WAL torn mid-record, a disk that refuses writes,
and a shared cache backend outage — each asserting the crash-recovery
invariants (zero acknowledged-then-lost deltas, byte-identical
post-recovery generations, zero uncaught 500s).

Scenarios are plain data (:class:`ChaosScenario` /
:class:`DurabilityScenario`), the default suite is :func:`default_suite`
plus :func:`durability_suite`, and ``python -m repro.serve.chaos`` runs
them headlessly for ``make chaos-smoke`` / CI, exiting non-zero on any
SLO violation and printing the violating scenario's seed so the run can
be replayed exactly.  ``--scenario NAME`` filters (substring match),
``--list`` enumerates.
"""

from __future__ import annotations

import argparse
import errno
import json
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.io import save_corpus
from repro.data.models import Review
from repro.data.synthetic import generate_corpus
from repro.resilience.fallback import builtin_stage
from repro.resilience.faults import FaultSpec, InjectedFault
from repro.serve.admission import AdmissionController
from repro.serve.engine import SelectionEngine
from repro.serve.http import make_server
from repro.serve.store import ItemStore
from repro.serve.wal import WriteAheadLog, review_record

#: Statuses the serving layer is allowed to answer under chaos.
_EXPECTED_STATUSES = frozenset({200, 429, 503})


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted bad-weather episode.

    ``burst`` client threads fire one request each, released together by
    a barrier against an engine whose pending queue holds
    ``max_pending`` requests — so ``burst / max_pending`` is the
    capacity multiple.  ``backend_faults`` maps fallback-stage names to
    :class:`FaultSpec` behaviours (crash / slow / hang / flaky) injected
    into the solver chain.
    """

    name: str
    burst: int = 32
    max_pending: int = 8
    workers: int = 2
    endpoint: str = "narrow"  # "narrow" | "select"
    deadline_ms: float = 10_000.0
    backend_faults: Mapping[str, FaultSpec] = field(default_factory=dict)
    expect_shed: bool = True
    reload_midway: bool = False
    drain_midway: bool = False
    shed_p99_budget_ms: float = 10.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.endpoint not in ("narrow", "select"):
            raise ValueError(f"endpoint must be narrow|select, got {self.endpoint}")
        if self.reload_midway and self.drain_midway:
            raise ValueError("pick one mid-flight action per scenario")


@dataclass(frozen=True, slots=True)
class RequestOutcome:
    """What one chaos client observed."""

    status: int  # HTTP status; -1 = transport error
    latency_ms: float
    corpus_version: str | None = None
    error: str | None = None


@dataclass
class ChaosReport:
    """Scenario outcome plus SLO verdicts."""

    scenario: str
    total: int
    ok: int
    shed: int
    unavailable: int
    transport_errors: int
    ok_p99_ms: float
    shed_server_p99_ms: float
    breaker_transitions: int
    versions: tuple[str, ...]
    drained: bool | None
    violations: list[str]
    seed: int = 7

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        line = (
            f"[{verdict}] {self.scenario}: {self.total} offered, "
            f"{self.ok} ok, {self.shed} shed, {self.unavailable} unavailable; "
            f"ok p99 {self.ok_p99_ms:.1f} ms, "
            f"shed p99 {self.shed_server_p99_ms:.2f} ms (server), "
            f"breaker transitions {self.breaker_transitions}"
        )
        if self.drained is not None:
            line += f", drained={self.drained}"
        if not self.passed:
            # The seed is the whole reproduction recipe: corpora, jitter
            # streams, and kill points all derive from it.
            line += f"\n    replay with seed={self.seed}"
        for violation in self.violations:
            line += f"\n    SLO violation: {violation}"
        return line


class _AttemptCounter:
    """In-process attempt counts for flaky backend faults."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def next(self, key: str) -> int:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]


def faulted_stage(name: str, spec: FaultSpec, *, time_limit: float = 60.0,
                  attempts: _AttemptCounter | None = None):
    """A fallback-stage solver misbehaving per ``spec`` before delegating.

    ``crash`` raises :class:`InjectedFault` always; ``flaky`` raises for
    the first ``fail_attempts`` calls; ``slow``/``hang`` sleep
    ``seconds`` first, then solve for real.  The same :class:`FaultSpec`
    vocabulary the PR-1 selector-level injection uses, applied one layer
    down.
    """
    inner = builtin_stage(name, time_limit)
    counter = attempts or _AttemptCounter()

    def solve(weights, k, target, deadline):
        if spec.kind == "crash":
            raise InjectedFault(f"chaos: injected crash in backend {name!r}")
        if spec.kind == "flaky":
            attempt = counter.next(name)
            if attempt <= spec.fail_attempts:
                raise InjectedFault(
                    f"chaos: injected flaky failure in backend {name!r} "
                    f"(attempt {attempt})"
                )
        if spec.kind in ("slow", "hang") and spec.seconds > 0:
            time.sleep(spec.seconds)
        return inner(weights, k, target, deadline)

    return solve


def default_suite() -> tuple[ChaosScenario, ...]:
    """The scenarios ``make chaos-smoke`` and CI run."""
    return (
        ChaosScenario(
            name="1x-steady-within-capacity",
            burst=8,
            max_pending=8,
            expect_shed=False,
        ),
        ChaosScenario(
            name="16x-burst-one-failing-backend",
            burst=128,
            max_pending=8,
            backend_faults={"milp": FaultSpec(kind="crash")},
        ),
        ChaosScenario(
            name="reload-under-load",
            burst=32,
            max_pending=32,
            reload_midway=True,
            expect_shed=False,
        ),
        ChaosScenario(
            name="graceful-shutdown-under-load",
            burst=32,
            max_pending=32,
            drain_midway=True,
            expect_shed=False,
        ),
    )


def _post(base: str, path: str, body: dict, deadline_ms: float | None = None):
    headers = {"Content-Type": "application/json"}
    if deadline_ms is not None:
        headers["X-Deadline-Ms"] = str(deadline_ms)
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(), headers=headers
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _request_body(scenario: ChaosScenario, index: int) -> dict:
    # Distinct per index so neither the result cache nor single-flight
    # absorbs the burst: mu varies the objective without invalidating
    # the store's precomputed artifacts.
    body: dict = {"m": 2, "mu": 0.1 + 0.001 * index}
    if scenario.endpoint == "narrow":
        body["k"] = 3
        body["stages"] = ["milp", "bnb", "greedy"]
    return body


def _client(
    base: str,
    scenario: ChaosScenario,
    index: int,
    barrier: threading.Barrier,
    outcomes: list[RequestOutcome | None],
) -> None:
    body = _request_body(scenario, index)
    path = f"/v1/{scenario.endpoint}"
    barrier.wait()
    begun = time.perf_counter()
    try:
        status, payload = _post(base, path, body, scenario.deadline_ms)
    except urllib.error.HTTPError as error:
        latency = (time.perf_counter() - begun) * 1e3
        error.read()  # drain the body so the connection can be reused
        outcomes[index] = RequestOutcome(status=error.code, latency_ms=latency)
        return
    except Exception as exc:
        latency = (time.perf_counter() - begun) * 1e3
        outcomes[index] = RequestOutcome(
            status=-1, latency_ms=latency, error=f"{type(exc).__name__}: {exc}"
        )
        return
    latency = (time.perf_counter() - begun) * 1e3
    version = payload.get("provenance", {}).get("corpus_version")
    outcomes[index] = RequestOutcome(
        status=status, latency_ms=latency, corpus_version=version
    )


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q / 100 * (len(ordered) - 1)))]


def run_scenario(scenario: ChaosScenario) -> ChaosReport:
    """Execute one scenario against a fresh engine + real HTTP server."""
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    store = ItemStore(corpus)
    initial_version = store.version
    attempts = _AttemptCounter()
    overrides = {
        name: faulted_stage(name, spec, attempts=attempts)
        for name, spec in scenario.backend_faults.items()
    }
    engine = SelectionEngine(
        store,
        workers=scenario.workers,
        cache_size=max(16, scenario.burst),
        admission=AdmissionController(max_pending=scenario.max_pending),
        stage_solvers=overrides,
    )
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()

    outcomes: list[RequestOutcome | None] = [None] * scenario.burst
    # +1 party: the orchestrator releases the burst and then acts.
    barrier = threading.Barrier(scenario.burst + 1)
    clients = [
        threading.Thread(
            target=_client, args=(base, scenario, index, barrier, outcomes)
        )
        for index in range(scenario.burst)
    ]
    drained: bool | None = None
    reload_result: tuple[int, dict] | None = None
    new_version: str | None = None
    metrics: dict = {}
    try:
        for client in clients:
            client.start()
        barrier.wait()
        if scenario.reload_midway:
            time.sleep(0.05)  # let the burst land on the old generation
            fresh = generate_corpus("Toy", scale=0.3, seed=scenario.seed + 1)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "fresh.jsonl"
                save_corpus(fresh, path)
                reload_result = _post(base, "/v1/reload", {"path": str(path)})
            if reload_result[0] == 200:
                new_version = reload_result[1]["version"]
        elif scenario.drain_midway:
            time.sleep(0.05)  # let the burst get in flight first
            drained = engine.drain(timeout=60.0)
        for client in clients:
            client.join(timeout=120.0)
        metrics = engine.metrics.as_dict()
    finally:
        server.shutdown()
        server.server_close()
        engine.close()

    return _evaluate(
        scenario,
        [outcome for outcome in outcomes if outcome is not None],
        hanging=sum(outcome is None for outcome in outcomes),
        metrics=metrics,
        initial_version=initial_version,
        new_version=new_version,
        reload_result=reload_result,
        drained=drained,
        inflight_after=engine.admission.inflight,
    )


def _evaluate(
    scenario: ChaosScenario,
    outcomes: list[RequestOutcome],
    *,
    hanging: int,
    metrics: dict,
    initial_version: str,
    new_version: str | None,
    reload_result: tuple[int, dict] | None,
    drained: bool | None,
    inflight_after: int,
) -> ChaosReport:
    violations: list[str] = []
    ok = [outcome for outcome in outcomes if outcome.status == 200]
    shed = [outcome for outcome in outcomes if outcome.status == 429]
    unavailable = [outcome for outcome in outcomes if outcome.status == 503]
    unexpected = [
        outcome for outcome in outcomes if outcome.status not in _EXPECTED_STATUSES
    ]

    if hanging:
        violations.append(f"{hanging} client(s) never completed")
    for outcome in unexpected:
        violations.append(
            f"unexpected response status {outcome.status}"
            + (f" ({outcome.error})" if outcome.error else "")
        )
    if not ok:
        violations.append("no request was served successfully")
    over_deadline = [
        outcome for outcome in ok if outcome.latency_ms > scenario.deadline_ms
    ]
    if over_deadline:
        worst = max(outcome.latency_ms for outcome in over_deadline)
        violations.append(
            f"{len(over_deadline)} accepted request(s) exceeded their "
            f"{scenario.deadline_ms:.0f} ms deadline (worst {worst:.0f} ms)"
        )
    if scenario.expect_shed and not shed:
        violations.append("expected overload shedding but nothing was shed")
    if not scenario.expect_shed and shed:
        violations.append(f"{len(shed)} request(s) shed within capacity")

    histograms = metrics.get("histograms", {})
    shed_snapshot = histograms.get("repro_shed_latency_seconds", {})
    shed_server_p99_ms = shed_snapshot.get("p99", 0.0) * 1e3
    if shed and shed_server_p99_ms > scenario.shed_p99_budget_ms:
        violations.append(
            f"shed p99 {shed_server_p99_ms:.2f} ms exceeds the "
            f"{scenario.shed_p99_budget_ms:.0f} ms budget"
        )

    breaker_transitions = sum(
        value
        for key, value in metrics.get("counters", {}).items()
        if key.startswith("repro_breaker_transitions_total")
    )
    if scenario.backend_faults:
        faulty = sorted(scenario.backend_faults)
        if breaker_transitions < 1:
            violations.append(
                f"no breaker transition recorded for faulty backend(s) {faulty}"
            )
        gauges = metrics.get("gauges", {})
        visible = any(
            key.startswith("repro_breaker_state") and f'backend="{name}"' in key
            for key in gauges
            for name in faulty
        )
        if not visible:
            violations.append("breaker state gauges missing from /metrics")

    versions = sorted(
        {outcome.corpus_version for outcome in ok if outcome.corpus_version}
    )
    if scenario.reload_midway:
        if reload_result is None or reload_result[0] != 200:
            violations.append(f"mid-flight reload failed: {reload_result}")
        allowed = {initial_version} | ({new_version} if new_version else set())
        hybrids = [version for version in versions if version not in allowed]
        if hybrids:
            violations.append(f"responses from unknown generation(s): {hybrids}")
    if scenario.drain_midway:
        if drained is not True:
            violations.append(f"drain did not complete cleanly (drained={drained})")
        if inflight_after != 0:
            violations.append(
                f"{inflight_after} request(s) still in flight after drain"
            )

    return ChaosReport(
        scenario=scenario.name,
        total=len(outcomes) + hanging,
        ok=len(ok),
        shed=len(shed),
        unavailable=len(unavailable),
        transport_errors=len([o for o in outcomes if o.status == -1]),
        ok_p99_ms=_percentile([outcome.latency_ms for outcome in ok], 99),
        shed_server_p99_ms=shed_server_p99_ms,
        breaker_transitions=int(breaker_transitions),
        versions=tuple(versions),
        drained=drained,
        violations=violations,
        seed=scenario.seed,
    )


def run_suite(
    scenarios: tuple[ChaosScenario, ...] | None = None,
) -> list[ChaosReport]:
    """Run every scenario (fresh engine each) and collect reports."""
    return [run_scenario(scenario) for scenario in (scenarios or default_suite())]


# -- durability / crash-recovery scenarios -----------------------------------


@dataclass(frozen=True, slots=True)
class DurabilityScenario:
    """One crash-recovery episode; ``kind`` picks the fault to inject."""

    name: str
    # "kill9" | "torn-wal" | "disk-full" | "tier-outage" | "shard-kill"
    # | "replica-failover"
    kind: str
    deltas: int = 5
    seed: int = 7


@dataclass
class DurabilityReport:
    """Outcome of one durability scenario (same verdict surface)."""

    scenario: str
    seed: int
    violations: list[str]
    details: dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        facts = ", ".join(f"{k}={v}" for k, v in self.details.items())
        line = f"[{verdict}] {self.scenario}: {facts}"
        if not self.passed:
            line += f"\n    replay with seed={self.seed}"
        for violation in self.violations:
            line += f"\n    invariant violation: {violation}"
        return line


def durability_suite() -> tuple[DurabilityScenario, ...]:
    """The crash-recovery scenarios ``make recovery-smoke`` runs."""
    return (
        DurabilityScenario(name="kill9-mid-ingest", kind="kill9"),
        DurabilityScenario(name="torn-wal-write", kind="torn-wal"),
        DurabilityScenario(name="wal-disk-full", kind="disk-full"),
        DurabilityScenario(name="cache-backend-outage", kind="tier-outage"),
        DurabilityScenario(name="shard-kill-mid-burst", kind="shard-kill"),
        DurabilityScenario(
            name="replica-failover-mid-burst", kind="replica-failover"
        ),
    )


def _delta_review(index: int, product_id: str) -> Review:
    return Review(
        review_id=f"chaos-delta-{index:04d}",
        product_id=product_id,
        reviewer_id=f"chaos-user-{index:04d}",
        rating=4,
        text=f"chaos delta review {index}: solid battery and screen",
        mentions=(),
    )


def _expected_versions(corpus, acked: list[Review], inflight: Review | None):
    """Legal post-recovery versions: all acked, or acked + the in-flight
    delta (which may have reached the fsynced WAL before the kill)."""
    legal = set()
    for tail in ([], [inflight] if inflight is not None else []):
        store = ItemStore(corpus)
        for review in acked + tail:
            store.apply_delta([review])
        legal.add(store.version)
    return legal


def _run_kill9(scenario: DurabilityScenario) -> DurabilityReport:
    """SIGKILL the serving child mid-ingest; recovery must lose nothing.

    Every delta the parent saw acknowledged (HTTP 200 after the WAL
    fsync) must be present after restart; the one delta in flight at the
    kill may legally land or vanish — but nothing else may change, so
    the recovered version must be byte-identical to one of exactly two
    permitted generation fingerprints.
    """
    from repro.serve.supervisor import RestartPolicy, Supervisor

    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    products = [p.product_id for p in corpus.products]
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        supervisor = Supervisor(
            Path(tmp) / "state",
            corpus_path=corpus_path,
            policy=RestartPolicy(base_delay=0.05, max_restarts=3),
            engine_options={"workers": 2, "snapshot_every": 2},
        )
        supervisor.start()
        try:
            ready = supervisor.wait_ready()
            base = f"http://127.0.0.1:{ready['port']}"
            acked: list[Review] = []
            for index in range(scenario.deltas):
                review = _delta_review(index, products[index % len(products)])
                status, _ = _post(
                    base, "/v1/ingest", {"reviews": [review_record(review)]}
                )
                if status != 200:
                    violations.append(f"pre-kill ingest {index} answered {status}")
                acked.append(review)

            # Fire one more ingest concurrently and kill the child while
            # it is (potentially) in flight — the only legal ambiguity.
            inflight = _delta_review(scenario.deltas, products[0])
            inflight_status: list[object] = [None]

            def _racing_ingest() -> None:
                try:
                    inflight_status[0] = _post(
                        base, "/v1/ingest", {"reviews": [review_record(inflight)]}
                    )[0]
                except Exception as exc:
                    inflight_status[0] = f"{type(exc).__name__}"

            racer = threading.Thread(target=_racing_ingest)
            racer.start()
            killed_pid = supervisor.kill()
            racer.join(timeout=30.0)
            details["killed_pid"] = killed_pid
            details["inflight_status"] = inflight_status[0]

            # Wait for the supervisor to bring a recovered child back.
            recovered: dict | None = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        f"{base}/healthz", timeout=5
                    ) as response:
                        payload = json.loads(response.read())
                    if payload.get("recovery", {}).get("restarts", 0) >= 1:
                        recovered = payload
                        break
                except Exception:
                    time.sleep(0.1)
            if recovered is None:
                violations.append("child did not come back after SIGKILL")
            else:
                if inflight_status[0] == 200:
                    # Acked in flight: it MUST have survived; all-acked
                    # including it is the only legal generation.
                    legal = _expected_versions(corpus, acked + [inflight], None)
                else:
                    # Not acked: the record may or may not have reached
                    # the fsynced WAL before the kill — either outcome
                    # is legal, anything else is corruption/loss.
                    legal = _expected_versions(corpus, acked, inflight)
                version = recovered["corpus_version"]
                details["recovered_version"] = version
                details["recovery_mode"] = recovered["recovery"]["mode"]
                details["restarts"] = recovered["recovery"]["restarts"]
                if version not in legal:
                    violations.append(
                        f"recovered generation {version} not in the legal set "
                        f"{sorted(legal)} — an acknowledged delta was lost or "
                        "phantom state appeared"
                    )
                # The recovered child must serve: one select, no 500s.
                status, _ = _post(base, "/v1/select", {"m": 2})
                if status != 200:
                    violations.append(f"post-recovery select answered {status}")
        finally:
            supervisor.stop()
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


def _run_torn_wal(scenario: DurabilityScenario) -> DurabilityReport:
    """Tear the WAL's last record mid-write; recovery must truncate it.

    A torn tail is exactly what a power cut leaves behind: the record
    was never fsync-acknowledged, so dropping it is correct — and the
    recovered store must equal the generation of every *intact* record.
    """
    from repro.serve.snapshot import open_durable_store

    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    products = [p.product_id for p in corpus.products]
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        state = Path(tmp) / "state"
        store, wal, _, _ = open_durable_store(state, corpus_path=corpus_path)
        reviews = [
            _delta_review(i, products[i % len(products)])
            for i in range(scenario.deltas)
        ]
        for review in reviews[:-1]:
            wal.append({"kind": "delta", "reviews": [review_record(review)]})
            store.apply_delta([review])
        intact_version = store.version
        # The last delta is applied in memory but its WAL record is torn
        # mid-write — as if the process died inside write(2).
        wal.append({"kind": "delta", "reviews": [review_record(reviews[-1])]})
        wal.close()
        wal_path = state / "ingest.wal"
        torn = wal_path.read_bytes()[:-17]
        wal_path.write_bytes(torn)

        store2, wal2, _, info = open_durable_store(
            state, corpus_path=corpus_path
        )
        details["mode"] = info.mode
        details["torn_bytes"] = info.wal_torn_tail_bytes
        details["recovered_version"] = store2.version
        if info.wal_torn_tail_bytes <= 0:
            violations.append("torn WAL tail was not detected")
        if store2.version != intact_version:
            violations.append(
                f"recovered {store2.version}, expected the intact-records "
                f"generation {intact_version}"
            )
        # The log must be writable again after truncation.
        try:
            seq = wal2.append(
                {"kind": "delta", "reviews": [review_record(reviews[-1])]}
            )
            details["post_recovery_seq"] = seq
        except Exception as exc:
            violations.append(f"append after torn-tail recovery failed: {exc}")
        wal2.close()
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


def _run_disk_full(scenario: DurabilityScenario) -> DurabilityReport:
    """ENOSPC during the WAL append: 503 (never 500), state unchanged.

    The ack discipline means a delta that cannot be persisted must not
    be applied — the client sees a retryable 503 and the store stays on
    its previous generation; once space returns, ingest resumes.
    """
    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    products = [p.product_id for p in corpus.products]
    disk_full = threading.Event()

    def _maybe_fail(num_bytes: int) -> None:
        if disk_full.is_set():
            raise OSError(errno.ENOSPC, "no space left on device (injected)")

    with tempfile.TemporaryDirectory() as tmp:
        wal = WriteAheadLog(Path(tmp) / "ingest.wal", before_write=_maybe_fail)
        engine = SelectionEngine(ItemStore(corpus), workers=2, wal=wal)
        server = make_server(engine, host="127.0.0.1", port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        try:
            ok_review = _delta_review(0, products[0])
            status, _ = _post(
                base, "/v1/ingest", {"reviews": [review_record(ok_review)]}
            )
            if status != 200:
                violations.append(f"healthy-disk ingest answered {status}")
            version_before = engine.store.version

            disk_full.set()
            blocked = _delta_review(1, products[1 % len(products)])
            try:
                status, _ = _post(
                    base, "/v1/ingest", {"reviews": [review_record(blocked)]}
                )
            except urllib.error.HTTPError as error:
                status = error.code
                payload = json.loads(error.read() or b"{}")
                details["disk_full_reason"] = payload.get("reason")
                details["retry_after"] = payload.get("retry_after")
            details["disk_full_status"] = status
            if status != 503:
                violations.append(
                    f"disk-full ingest answered {status}, expected 503"
                )
            if engine.store.version != version_before:
                violations.append(
                    "a delta that failed to persist was applied anyway"
                )

            disk_full.clear()
            status, ack = _post(
                base, "/v1/ingest", {"reviews": [review_record(blocked)]}
            )
            details["healed_status"] = status
            if status != 200:
                violations.append(f"post-heal ingest answered {status}")
            else:
                details["healed_version"] = ack["version"]
            # The WAL file must still replay cleanly end to end.
            wal_stats = wal.stats()
            details["wal_records"] = wal_stats.records
            if wal_stats.records != 2:
                violations.append(
                    f"WAL holds {wal_stats.records} records, expected 2 "
                    "(the refused append must leave no partial record)"
                )
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


def _run_tier_outage(scenario: DurabilityScenario) -> DurabilityReport:
    """Shared-tier backend outage: serving degrades to local-only, no errors.

    Every request during the outage must still answer 200 (the tier is
    an optimisation, never a dependency), the tier breaker must open so
    the dead backend stops costing latency, and after the backend heals
    the breaker must close and publishing resume.
    """
    from repro.serve.breaker import CircuitBreaker
    from repro.serve.cachetier import InMemoryBackend, SharedCacheTier

    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    backend = InMemoryBackend()
    tier = SharedCacheTier(
        backend,
        breaker=CircuitBreaker(failure_threshold=2, recovery_time=0.2),
    )
    engine = SelectionEngine(ItemStore(corpus), workers=2, tier=tier)
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    try:
        backend.set_down(True)
        statuses = []
        for index in range(scenario.deltas):
            status, _ = _post(base, "/v1/select", {"m": 2, "mu": 0.1 + 0.01 * index})
            statuses.append(status)
        details["outage_statuses"] = sorted(set(statuses))
        if any(status != 200 for status in statuses):
            violations.append(
                f"requests failed during tier outage: {statuses} "
                "(the tier must never take down serving)"
            )
        mid = tier.stats()
        details["outage_errors"] = mid.errors
        details["outage_skipped"] = mid.skipped
        details["breaker_during"] = mid.breaker_state
        if mid.errors < 1:
            violations.append("no tier backend error was recorded")
        if mid.breaker_state != "open" and mid.skipped < 1:
            violations.append(
                "tier breaker neither opened nor skipped calls during outage"
            )

        backend.set_down(False)
        time.sleep(0.25)  # past the breaker's recovery window
        status, _ = _post(base, "/v1/select", {"m": 2, "mu": 0.9})
        if status != 200:
            violations.append(f"post-heal select answered {status}")
        healed = tier.stats()
        details["healed_breaker"] = healed.breaker_state
        details["healed_puts"] = healed.puts
        if healed.puts < 1:
            violations.append(
                "tier never resumed publishing after the backend healed"
            )
    finally:
        server.shutdown()
        server.server_close()
        engine.close()
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


def _run_shard_kill(scenario: DurabilityScenario) -> DurabilityReport:
    """SIGKILL one shard of a live cluster mid-burst; blast radius = one shard.

    The gateway must convert the dead shard into 503 + Retry-After for
    that shard's targets only — zero uncaught 500s, zero transport
    errors — while every other shard keeps answering 200.  The killed
    worker must then come back through its own snapshot+WAL state
    (deltas are ingested first so recovery has a WAL tail to replay)
    and serve again.
    """
    from repro.serve.cluster import ClusterConfig, ServingCluster
    from repro.serve.supervisor import RestartPolicy

    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        config = ClusterConfig(
            corpus_path=corpus_path,
            shards=2,
            state_dir=Path(tmp) / "cluster",
            engine_options={"workers": 2, "snapshot_every": 2},
            restart_policy=RestartPolicy(base_delay=0.05, max_restarts=3),
        )
        with ServingCluster(config) as cluster:
            base = cluster.base_url
            ring = cluster.ring
            assert ring is not None
            by_shard: dict[int, str] = {}
            for product in corpus.products:
                by_shard.setdefault(ring.route(product.product_id), product.product_id)
            victim_shard = min(by_shard)
            victim_target = by_shard[victim_shard]
            other_target = by_shard[max(by_shard)]

            # Ingest deltas first so the victim's restart replays a real
            # snapshot + WAL tail, not just the cold corpus.
            for index in range(scenario.deltas):
                review = _delta_review(index, victim_target)
                status, _ = _post(
                    base, "/v1/ingest", {"reviews": [review_record(review)]}
                )
                if status != 200:
                    violations.append(f"pre-kill ingest {index} answered {status}")

            # Mid-burst kill: clients hammer both shards while the
            # victim dies, and every answer must stay in the taxonomy.
            outcomes: list[tuple[str, int] | tuple[str, str]] = []
            lock = threading.Lock()
            barrier = threading.Barrier(9)  # 8 clients + the killer

            def _burst_client(index: int) -> None:
                target = victim_target if index % 2 == 0 else other_target
                barrier.wait()
                for round_ in range(6):
                    mu = 0.1 + 0.001 * (index * 10 + round_)
                    try:
                        status, _ = _post(
                            base, "/v1/select", {"target": target, "mu": mu}
                        )
                    except urllib.error.HTTPError as error:
                        error.read()
                        status = error.code
                    except Exception as exc:
                        with lock:
                            outcomes.append((target, type(exc).__name__))
                        continue
                    with lock:
                        outcomes.append((target, status))

            clients = [
                threading.Thread(target=_burst_client, args=(index,))
                for index in range(8)
            ]
            for client in clients:
                client.start()
            barrier.wait()
            time.sleep(0.05)  # let the burst land on both shards first
            details["killed_pid"] = cluster.kill_shard(victim_shard)
            for client in clients:
                client.join(timeout=120.0)

            statuses = sorted({o[1] for o in outcomes})
            details["statuses"] = statuses
            transport = [o for o in outcomes if isinstance(o[1], str)]
            if transport:
                violations.append(f"{len(transport)} transport error(s): {transport[:3]}")
            bad = [
                o for o in outcomes
                if isinstance(o[1], int) and o[1] not in _EXPECTED_STATUSES
            ]
            if bad:
                violations.append(
                    f"{len(bad)} response(s) outside {sorted(_EXPECTED_STATUSES)}: "
                    f"{sorted({o[1] for o in bad})}"
                )
            other_ok = [o for o in outcomes if o[0] == other_target and o[1] == 200]
            other_bad = [
                o for o in outcomes
                if o[0] == other_target and o[1] not in (200, 429)
            ]
            details["other_shard_ok"] = len(other_ok)
            if not other_ok:
                violations.append("the surviving shard served nothing during the kill")
            if other_bad:
                violations.append(
                    f"the surviving shard was affected by the kill: {other_bad[:3]}"
                )

            # Recovery: the victim's supervisor restarts it and the
            # gateway reconnects — same port, snapshot+WAL replay.
            recovered_status: int | None = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    recovered_status, _ = _post(
                        base, "/v1/select", {"target": victim_target, "mu": 0.9}
                    )
                except urllib.error.HTTPError as error:
                    error.read()
                    recovered_status = error.code
                except Exception:
                    recovered_status = -1
                if recovered_status == 200:
                    break
                time.sleep(0.2)
            details["post_recovery_status"] = recovered_status
            details["restarts"] = cluster.restarts()[victim_shard]
            if recovered_status != 200:
                violations.append(
                    f"killed shard never served again (last status {recovered_status})"
                )
            if cluster.restarts()[victim_shard] < 1:
                violations.append("supervisor recorded no restart for the victim")
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                health = json.loads(response.read())
            details["cluster_status"] = health["status"]
            recovery = health["shards"].get(str(victim_shard), {}).get("recovery", {})
            details["recovery_mode"] = recovery.get("mode")
            if health["status"] != "ok":
                violations.append(f"cluster health is {health['status']!r} after recovery")
            if recovery.get("restarts", 0) < 1:
                violations.append("recovered shard reports no restart in /healthz")
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


def _run_replica_failover(scenario: DurabilityScenario) -> DurabilityReport:
    """SIGKILL a primary mid-burst at replicas=2: zero 503s, hints drain.

    With every key on two shards, killing the primary of a key range
    must cost latency only: selection reads for the victim's targets
    fail over to the replica (byte-identical partition), so the burst
    observes nothing outside {200, 429}.  An ingest during the outage is
    acknowledged with the delta hinted for the dead shard; once the
    supervisor brings it back, the gateway's drain loop must empty the
    hint queue and the replica-divergence probe must report agreement.
    """
    from repro.serve.cluster import ClusterConfig, ServingCluster
    from repro.serve.supervisor import RestartPolicy

    violations: list[str] = []
    details: dict[str, object] = {}
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = Path(tmp) / "corpus.jsonl"
        save_corpus(corpus, corpus_path)
        config = ClusterConfig(
            corpus_path=corpus_path,
            shards=3,
            replicas=2,
            state_dir=Path(tmp) / "cluster",
            engine_options={"workers": 2, "snapshot_every": 2},
            restart_policy=RestartPolicy(base_delay=0.05, max_restarts=3),
            jitter_seed=scenario.seed,
            hint_drain_interval=0.1,
        )
        with ServingCluster(config) as cluster:
            base = cluster.base_url
            plan = cluster.plan
            assert plan is not None
            victim_shard = plan.preference(corpus.products[0].product_id)[0]
            victim_targets = [
                product.product_id
                for product in corpus.products
                if plan.preference(product.product_id)[0] == victim_shard
            ][:4]
            details["victim_shard"] = victim_shard
            details["victim_targets"] = len(victim_targets)

            # Mid-burst kill: clients hammer the victim's keys while its
            # primary dies; every answer must come from the replica.
            outcomes: list[tuple[str, int] | tuple[str, str]] = []
            lock = threading.Lock()
            barrier = threading.Barrier(7)  # 6 clients + the killer

            def _burst_client(index: int) -> None:
                target = victim_targets[index % len(victim_targets)]
                barrier.wait()
                for round_ in range(5):
                    mu = 0.1 + 0.001 * (index * 10 + round_)
                    try:
                        status, _ = _post(
                            base, "/v1/select", {"target": target, "mu": mu}
                        )
                    except urllib.error.HTTPError as error:
                        error.read()
                        status = error.code
                    except Exception as exc:
                        with lock:
                            outcomes.append((target, type(exc).__name__))
                        continue
                    with lock:
                        outcomes.append((target, status))

            clients = [
                threading.Thread(target=_burst_client, args=(index,))
                for index in range(6)
            ]
            for client in clients:
                client.start()
            barrier.wait()
            time.sleep(0.05)  # let the burst land on the primary first
            details["killed_pid"] = cluster.kill_shard(victim_shard)

            # Ingest against a victim-owned product while its primary is
            # down: the live replica acks, the dead shard gets a hint.
            hint_review = _delta_review(9000, victim_targets[0])
            try:
                ingest_status, ack = _post(
                    base, "/v1/ingest",
                    {"reviews": [review_record(hint_review)]},
                )
            except urllib.error.HTTPError as error:
                ingest_status = error.code
                ack = json.loads(error.read() or b"{}")
            details["outage_ingest_status"] = ingest_status
            details["hinted"] = ack.get("hinted")
            if ingest_status != 200:
                violations.append(
                    f"ingest during the outage answered {ingest_status}, "
                    "expected 200 with a hint for the dead shard"
                )
            elif not ack.get("hinted"):
                # The supervisor may already have the shard back — then
                # no hint was needed and that is legal; only complain if
                # it was provably down and still no hint was queued.
                details["hinted"] = "none (shard already recovered)"

            for client in clients:
                client.join(timeout=120.0)

            transport = [o for o in outcomes if isinstance(o[1], str)]
            if transport:
                violations.append(
                    f"{len(transport)} transport error(s): {transport[:3]}"
                )
            statuses = sorted(
                {o[1] for o in outcomes if isinstance(o[1], int)}
            )
            details["statuses"] = statuses
            bad = [
                o for o in outcomes
                if isinstance(o[1], int) and o[1] not in (200, 429)
            ]
            if bad:
                violations.append(
                    f"{len(bad)} victim-key response(s) outside {{200, 429}} "
                    f"during the kill: {sorted({o[1] for o in bad})} — "
                    "failover must hide a dead primary"
                )

            # Recovery: the hint queue must drain to the restarted shard.
            deadline = time.monotonic() + 60.0
            depths = cluster.hint_depths()
            while time.monotonic() < deadline:
                depths = cluster.hint_depths()
                if not depths and cluster.restarts()[victim_shard] >= 1:
                    break
                time.sleep(0.2)
            details["hint_depths_after"] = dict(depths)
            details["restarts"] = cluster.restarts()[victim_shard]
            if depths:
                violations.append(
                    f"hint queue never drained after recovery: {depths}"
                )
            if cluster.restarts()[victim_shard] < 1:
                violations.append("supervisor recorded no restart for the victim")

            # Convergence: the replica group must agree on the hinted
            # product (the divergence counter the tests pin at zero).
            probe = cluster.check_replicas(victim_targets[0])
            details["diverged"] = probe["diverged"]
            if probe["diverged"]:
                violations.append(
                    f"replicas diverged after drain: {probe['replicas']}"
                )
            replica_states = [
                ids for ids in probe["replicas"].values() if ids is not None
            ]
            if len(replica_states) < 2:
                violations.append(
                    "fewer than 2 replicas answered the divergence probe"
                )
            elif ingest_status == 200 and not any(
                hint_review.review_id in ids for ids in replica_states
            ):
                violations.append(
                    "the acknowledged outage delta is missing from every replica"
                )
    return DurabilityReport(
        scenario=scenario.name, seed=scenario.seed,
        violations=violations, details=details,
    )


_DURABILITY_RUNNERS = {
    "kill9": _run_kill9,
    "torn-wal": _run_torn_wal,
    "disk-full": _run_disk_full,
    "tier-outage": _run_tier_outage,
    "shard-kill": _run_shard_kill,
    "replica-failover": _run_replica_failover,
}


def run_durability_scenario(scenario: DurabilityScenario) -> DurabilityReport:
    """Execute one crash-recovery scenario in isolation."""
    runner = _DURABILITY_RUNNERS.get(scenario.kind)
    if runner is None:
        raise ValueError(
            f"unknown durability scenario kind {scenario.kind!r}; "
            f"one of {sorted(_DURABILITY_RUNNERS)}"
        )
    return runner(scenario)


def run_durability_suite(
    scenarios: tuple[DurabilityScenario, ...] | None = None,
) -> list[DurabilityReport]:
    """Run every durability scenario and collect reports."""
    return [
        run_durability_scenario(scenario)
        for scenario in (scenarios or durability_suite())
    ]


def all_scenarios() -> list[ChaosScenario | DurabilityScenario]:
    """Every scenario both suites know, for ``--list`` and filtering."""
    return list(default_suite()) + list(durability_suite())


def main(argv: list[str] | None = None) -> int:
    """Headless entry point for ``make chaos-smoke`` / ``make recovery-smoke``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.chaos",
        description="Run the serving chaos + crash-recovery suites.",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run only scenarios whose name contains NAME (repeatable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenario names and exit"
    )
    parser.add_argument(
        "--suite",
        choices=("all", "load", "durability"),
        default="all",
        help="which suite to draw scenarios from (default: all)",
    )
    args = parser.parse_args(argv)

    if args.suite == "load":
        scenarios: list = list(default_suite())
    elif args.suite == "durability":
        scenarios = list(durability_suite())
    else:
        scenarios = all_scenarios()
    if args.scenario:
        wanted = [needle.lower() for needle in args.scenario]
        scenarios = [
            scenario
            for scenario in scenarios
            if any(needle in scenario.name.lower() for needle in wanted)
        ]
        if not scenarios:
            print(f"no scenario matches {args.scenario}", flush=True)
            return 2
    if args.list:
        for scenario in scenarios:
            kind = "durability" if isinstance(scenario, DurabilityScenario) else "load"
            print(f"{scenario.name}  [{kind}, seed={scenario.seed}]")
        return 0

    reports: list[ChaosReport | DurabilityReport] = []
    for scenario in scenarios:
        if isinstance(scenario, DurabilityScenario):
            report: ChaosReport | DurabilityReport = run_durability_scenario(
                scenario
            )
        else:
            report = run_scenario(scenario)
        print(report.summary(), flush=True)
        reports.append(report)
    failed = [report for report in reports if not report.passed]
    print(
        f"chaos: {len(reports) - len(failed)}/{len(reports)} scenarios passed",
        flush=True,
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by make chaos-smoke
    raise SystemExit(main())
