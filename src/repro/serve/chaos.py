"""Deterministic chaos harness for the serving layer.

Production claims — "sheds load fast", "degrades instead of timing out",
"drains cleanly" — are only trustworthy if a test can provoke the bad
weather on demand.  This module scripts it, entirely in-process: a real
:class:`~repro.serve.http.ServingHTTPServer` on an ephemeral port, a
barrier-synchronised burst of client threads, fault-injected solver
backends (reusing the PR-1 :class:`~repro.resilience.faults.FaultSpec`
vocabulary), optional mid-flight corpus reloads, and a graceful drain
under load.  Every scenario then checks its SLOs:

* zero uncaught 500s (and zero transport errors);
* every accepted request finishes within its deadline;
* shed requests are answered 429 fast (server-side p99 < 10 ms);
* an injected failing backend trips its circuit breaker, visibly in
  ``/metrics``;
* a mid-flight reload serves every response from exactly one corpus
  generation (old or new, never a hybrid);
* a drain under load completes every in-flight request before closing.

Scenarios are plain data (:class:`ChaosScenario`), the default suite is
:func:`default_suite`, and ``python -m repro.serve.chaos`` runs it
headlessly for ``make chaos-smoke`` / CI, exiting non-zero on any SLO
violation.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.data.io import save_corpus
from repro.data.synthetic import generate_corpus
from repro.resilience.fallback import builtin_stage
from repro.resilience.faults import FaultSpec, InjectedFault
from repro.serve.admission import AdmissionController
from repro.serve.engine import SelectionEngine
from repro.serve.http import make_server
from repro.serve.store import ItemStore

#: Statuses the serving layer is allowed to answer under chaos.
_EXPECTED_STATUSES = frozenset({200, 429, 503})


@dataclass(frozen=True)
class ChaosScenario:
    """One scripted bad-weather episode.

    ``burst`` client threads fire one request each, released together by
    a barrier against an engine whose pending queue holds
    ``max_pending`` requests — so ``burst / max_pending`` is the
    capacity multiple.  ``backend_faults`` maps fallback-stage names to
    :class:`FaultSpec` behaviours (crash / slow / hang / flaky) injected
    into the solver chain.
    """

    name: str
    burst: int = 32
    max_pending: int = 8
    workers: int = 2
    endpoint: str = "narrow"  # "narrow" | "select"
    deadline_ms: float = 10_000.0
    backend_faults: Mapping[str, FaultSpec] = field(default_factory=dict)
    expect_shed: bool = True
    reload_midway: bool = False
    drain_midway: bool = False
    shed_p99_budget_ms: float = 10.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.endpoint not in ("narrow", "select"):
            raise ValueError(f"endpoint must be narrow|select, got {self.endpoint}")
        if self.reload_midway and self.drain_midway:
            raise ValueError("pick one mid-flight action per scenario")


@dataclass(frozen=True, slots=True)
class RequestOutcome:
    """What one chaos client observed."""

    status: int  # HTTP status; -1 = transport error
    latency_ms: float
    corpus_version: str | None = None
    error: str | None = None


@dataclass
class ChaosReport:
    """Scenario outcome plus SLO verdicts."""

    scenario: str
    total: int
    ok: int
    shed: int
    unavailable: int
    transport_errors: int
    ok_p99_ms: float
    shed_server_p99_ms: float
    breaker_transitions: int
    versions: tuple[str, ...]
    drained: bool | None
    violations: list[str]

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        line = (
            f"[{verdict}] {self.scenario}: {self.total} offered, "
            f"{self.ok} ok, {self.shed} shed, {self.unavailable} unavailable; "
            f"ok p99 {self.ok_p99_ms:.1f} ms, "
            f"shed p99 {self.shed_server_p99_ms:.2f} ms (server), "
            f"breaker transitions {self.breaker_transitions}"
        )
        if self.drained is not None:
            line += f", drained={self.drained}"
        for violation in self.violations:
            line += f"\n    SLO violation: {violation}"
        return line


class _AttemptCounter:
    """In-process attempt counts for flaky backend faults."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def next(self, key: str) -> int:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]


def faulted_stage(name: str, spec: FaultSpec, *, time_limit: float = 60.0,
                  attempts: _AttemptCounter | None = None):
    """A fallback-stage solver misbehaving per ``spec`` before delegating.

    ``crash`` raises :class:`InjectedFault` always; ``flaky`` raises for
    the first ``fail_attempts`` calls; ``slow``/``hang`` sleep
    ``seconds`` first, then solve for real.  The same :class:`FaultSpec`
    vocabulary the PR-1 selector-level injection uses, applied one layer
    down.
    """
    inner = builtin_stage(name, time_limit)
    counter = attempts or _AttemptCounter()

    def solve(weights, k, target, deadline):
        if spec.kind == "crash":
            raise InjectedFault(f"chaos: injected crash in backend {name!r}")
        if spec.kind == "flaky":
            attempt = counter.next(name)
            if attempt <= spec.fail_attempts:
                raise InjectedFault(
                    f"chaos: injected flaky failure in backend {name!r} "
                    f"(attempt {attempt})"
                )
        if spec.kind in ("slow", "hang") and spec.seconds > 0:
            time.sleep(spec.seconds)
        return inner(weights, k, target, deadline)

    return solve


def default_suite() -> tuple[ChaosScenario, ...]:
    """The scenarios ``make chaos-smoke`` and CI run."""
    return (
        ChaosScenario(
            name="1x-steady-within-capacity",
            burst=8,
            max_pending=8,
            expect_shed=False,
        ),
        ChaosScenario(
            name="16x-burst-one-failing-backend",
            burst=128,
            max_pending=8,
            backend_faults={"milp": FaultSpec(kind="crash")},
        ),
        ChaosScenario(
            name="reload-under-load",
            burst=32,
            max_pending=32,
            reload_midway=True,
            expect_shed=False,
        ),
        ChaosScenario(
            name="graceful-shutdown-under-load",
            burst=32,
            max_pending=32,
            drain_midway=True,
            expect_shed=False,
        ),
    )


def _post(base: str, path: str, body: dict, deadline_ms: float | None = None):
    headers = {"Content-Type": "application/json"}
    if deadline_ms is not None:
        headers["X-Deadline-Ms"] = str(deadline_ms)
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(body).encode(), headers=headers
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _request_body(scenario: ChaosScenario, index: int) -> dict:
    # Distinct per index so neither the result cache nor single-flight
    # absorbs the burst: mu varies the objective without invalidating
    # the store's precomputed artifacts.
    body: dict = {"m": 2, "mu": 0.1 + 0.001 * index}
    if scenario.endpoint == "narrow":
        body["k"] = 3
        body["stages"] = ["milp", "bnb", "greedy"]
    return body


def _client(
    base: str,
    scenario: ChaosScenario,
    index: int,
    barrier: threading.Barrier,
    outcomes: list[RequestOutcome | None],
) -> None:
    body = _request_body(scenario, index)
    path = f"/v1/{scenario.endpoint}"
    barrier.wait()
    begun = time.perf_counter()
    try:
        status, payload = _post(base, path, body, scenario.deadline_ms)
    except urllib.error.HTTPError as error:
        latency = (time.perf_counter() - begun) * 1e3
        error.read()  # drain the body so the connection can be reused
        outcomes[index] = RequestOutcome(status=error.code, latency_ms=latency)
        return
    except Exception as exc:
        latency = (time.perf_counter() - begun) * 1e3
        outcomes[index] = RequestOutcome(
            status=-1, latency_ms=latency, error=f"{type(exc).__name__}: {exc}"
        )
        return
    latency = (time.perf_counter() - begun) * 1e3
    version = payload.get("provenance", {}).get("corpus_version")
    outcomes[index] = RequestOutcome(
        status=status, latency_ms=latency, corpus_version=version
    )


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q / 100 * (len(ordered) - 1)))]


def run_scenario(scenario: ChaosScenario) -> ChaosReport:
    """Execute one scenario against a fresh engine + real HTTP server."""
    corpus = generate_corpus("Toy", scale=0.3, seed=scenario.seed)
    store = ItemStore(corpus)
    initial_version = store.version
    attempts = _AttemptCounter()
    overrides = {
        name: faulted_stage(name, spec, attempts=attempts)
        for name, spec in scenario.backend_faults.items()
    }
    engine = SelectionEngine(
        store,
        workers=scenario.workers,
        cache_size=max(16, scenario.burst),
        admission=AdmissionController(max_pending=scenario.max_pending),
        stage_solvers=overrides,
    )
    server = make_server(engine, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()

    outcomes: list[RequestOutcome | None] = [None] * scenario.burst
    # +1 party: the orchestrator releases the burst and then acts.
    barrier = threading.Barrier(scenario.burst + 1)
    clients = [
        threading.Thread(
            target=_client, args=(base, scenario, index, barrier, outcomes)
        )
        for index in range(scenario.burst)
    ]
    drained: bool | None = None
    reload_result: tuple[int, dict] | None = None
    new_version: str | None = None
    metrics: dict = {}
    try:
        for client in clients:
            client.start()
        barrier.wait()
        if scenario.reload_midway:
            time.sleep(0.05)  # let the burst land on the old generation
            fresh = generate_corpus("Toy", scale=0.3, seed=scenario.seed + 1)
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "fresh.jsonl"
                save_corpus(fresh, path)
                reload_result = _post(base, "/v1/reload", {"path": str(path)})
            if reload_result[0] == 200:
                new_version = reload_result[1]["version"]
        elif scenario.drain_midway:
            time.sleep(0.05)  # let the burst get in flight first
            drained = engine.drain(timeout=60.0)
        for client in clients:
            client.join(timeout=120.0)
        metrics = engine.metrics.as_dict()
    finally:
        server.shutdown()
        server.server_close()
        engine.close()

    return _evaluate(
        scenario,
        [outcome for outcome in outcomes if outcome is not None],
        hanging=sum(outcome is None for outcome in outcomes),
        metrics=metrics,
        initial_version=initial_version,
        new_version=new_version,
        reload_result=reload_result,
        drained=drained,
        inflight_after=engine.admission.inflight,
    )


def _evaluate(
    scenario: ChaosScenario,
    outcomes: list[RequestOutcome],
    *,
    hanging: int,
    metrics: dict,
    initial_version: str,
    new_version: str | None,
    reload_result: tuple[int, dict] | None,
    drained: bool | None,
    inflight_after: int,
) -> ChaosReport:
    violations: list[str] = []
    ok = [outcome for outcome in outcomes if outcome.status == 200]
    shed = [outcome for outcome in outcomes if outcome.status == 429]
    unavailable = [outcome for outcome in outcomes if outcome.status == 503]
    unexpected = [
        outcome for outcome in outcomes if outcome.status not in _EXPECTED_STATUSES
    ]

    if hanging:
        violations.append(f"{hanging} client(s) never completed")
    for outcome in unexpected:
        violations.append(
            f"unexpected response status {outcome.status}"
            + (f" ({outcome.error})" if outcome.error else "")
        )
    if not ok:
        violations.append("no request was served successfully")
    over_deadline = [
        outcome for outcome in ok if outcome.latency_ms > scenario.deadline_ms
    ]
    if over_deadline:
        worst = max(outcome.latency_ms for outcome in over_deadline)
        violations.append(
            f"{len(over_deadline)} accepted request(s) exceeded their "
            f"{scenario.deadline_ms:.0f} ms deadline (worst {worst:.0f} ms)"
        )
    if scenario.expect_shed and not shed:
        violations.append("expected overload shedding but nothing was shed")
    if not scenario.expect_shed and shed:
        violations.append(f"{len(shed)} request(s) shed within capacity")

    histograms = metrics.get("histograms", {})
    shed_snapshot = histograms.get("repro_shed_latency_seconds", {})
    shed_server_p99_ms = shed_snapshot.get("p99", 0.0) * 1e3
    if shed and shed_server_p99_ms > scenario.shed_p99_budget_ms:
        violations.append(
            f"shed p99 {shed_server_p99_ms:.2f} ms exceeds the "
            f"{scenario.shed_p99_budget_ms:.0f} ms budget"
        )

    breaker_transitions = sum(
        value
        for key, value in metrics.get("counters", {}).items()
        if key.startswith("repro_breaker_transitions_total")
    )
    if scenario.backend_faults:
        faulty = sorted(scenario.backend_faults)
        if breaker_transitions < 1:
            violations.append(
                f"no breaker transition recorded for faulty backend(s) {faulty}"
            )
        gauges = metrics.get("gauges", {})
        visible = any(
            key.startswith("repro_breaker_state") and f'backend="{name}"' in key
            for key in gauges
            for name in faulty
        )
        if not visible:
            violations.append("breaker state gauges missing from /metrics")

    versions = sorted(
        {outcome.corpus_version for outcome in ok if outcome.corpus_version}
    )
    if scenario.reload_midway:
        if reload_result is None or reload_result[0] != 200:
            violations.append(f"mid-flight reload failed: {reload_result}")
        allowed = {initial_version} | ({new_version} if new_version else set())
        hybrids = [version for version in versions if version not in allowed]
        if hybrids:
            violations.append(f"responses from unknown generation(s): {hybrids}")
    if scenario.drain_midway:
        if drained is not True:
            violations.append(f"drain did not complete cleanly (drained={drained})")
        if inflight_after != 0:
            violations.append(
                f"{inflight_after} request(s) still in flight after drain"
            )

    return ChaosReport(
        scenario=scenario.name,
        total=len(outcomes) + hanging,
        ok=len(ok),
        shed=len(shed),
        unavailable=len(unavailable),
        transport_errors=len([o for o in outcomes if o.status == -1]),
        ok_p99_ms=_percentile([outcome.latency_ms for outcome in ok], 99),
        shed_server_p99_ms=shed_server_p99_ms,
        breaker_transitions=int(breaker_transitions),
        versions=tuple(versions),
        drained=drained,
        violations=violations,
    )


def run_suite(
    scenarios: tuple[ChaosScenario, ...] | None = None,
) -> list[ChaosReport]:
    """Run every scenario (fresh engine each) and collect reports."""
    return [run_scenario(scenario) for scenario in (scenarios or default_suite())]


def main() -> int:
    """Headless entry point for ``make chaos-smoke`` / CI."""
    reports = []
    for scenario in default_suite():
        report = run_scenario(scenario)
        print(report.summary(), flush=True)
        reports.append(report)
    failed = [report for report in reports if not report.passed]
    print(
        f"chaos-smoke: {len(reports) - len(failed)}/{len(reports)} scenarios passed",
        flush=True,
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by make chaos-smoke
    raise SystemExit(main())
