"""Sharded serving: consistent-hash routing, shard workers, asyncio gateway.

The cluster layer scales :mod:`repro.serve` horizontally without
changing its contract: a :class:`HashRing` assigns every target item to
a ``replicas``-long preference list of shards, each shard runs the full
single-process engine (durable state, admission, breakers, caches) over
its partition behind a framed local socket, and an asyncio
:class:`ClusterGateway` fronts them with the same HTTP endpoints,
global admission, ingest fan-out, aggregated health/metrics, read
failover down the preference list, and durable hinted handoff
(:class:`HintQueue`) for holders that are down mid-ingest.
``repro serve --shards N --replicas R`` boots the whole thing via
:class:`ServingCluster`, which can also :meth:`~ServingCluster.resize`
the ring live under a gateway generation token.
"""

from repro.serve.cluster.controller import (
    ClusterConfig,
    ClusterError,
    ServingCluster,
    start_cluster,
)
from repro.serve.cluster.gateway import (
    ClusterGateway,
    ShardClient,
    ShardUnavailable,
    Topology,
)
from repro.serve.cluster.hints import HintOverflow, HintQueue
from repro.serve.cluster.proto import (
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)
from repro.serve.cluster.ring import HashRing, PartitionPlan, partition_corpus
from repro.serve.cluster.worker import (
    AppliedDeltaSeqs,
    ShardServer,
    classify_error,
    handle_message,
    shard_child_main,
)

__all__ = [
    "AppliedDeltaSeqs",
    "ClusterConfig",
    "ClusterError",
    "ClusterGateway",
    "FrameError",
    "HashRing",
    "HintOverflow",
    "HintQueue",
    "MAX_FRAME_BYTES",
    "PartitionPlan",
    "ServingCluster",
    "ShardClient",
    "ShardServer",
    "ShardUnavailable",
    "Topology",
    "classify_error",
    "encode_frame",
    "handle_message",
    "partition_corpus",
    "read_frame_async",
    "recv_frame",
    "send_frame",
    "shard_child_main",
    "start_cluster",
    "write_frame_async",
]
