"""Sharded serving: consistent-hash routing, shard workers, asyncio gateway.

The cluster layer scales :mod:`repro.serve` horizontally without
changing its contract: a :class:`HashRing` assigns every target item to
one shard, each shard runs the full single-process engine (durable
state, admission, breakers, caches) over its partition behind a framed
local socket, and an asyncio :class:`ClusterGateway` fronts them with
the same HTTP endpoints, global admission, ingest fan-out, aggregated
health/metrics, and 503 + ``Retry-After`` while a crashed shard
restarts.  ``repro serve --shards N`` boots the whole thing via
:class:`ServingCluster`.
"""

from repro.serve.cluster.controller import (
    ClusterConfig,
    ClusterError,
    ServingCluster,
    start_cluster,
)
from repro.serve.cluster.gateway import (
    ClusterGateway,
    ShardClient,
    ShardUnavailable,
)
from repro.serve.cluster.proto import (
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)
from repro.serve.cluster.ring import HashRing, PartitionPlan, partition_corpus
from repro.serve.cluster.worker import (
    ShardServer,
    classify_error,
    handle_message,
    shard_child_main,
)

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterGateway",
    "FrameError",
    "HashRing",
    "MAX_FRAME_BYTES",
    "PartitionPlan",
    "ServingCluster",
    "ShardClient",
    "ShardServer",
    "ShardUnavailable",
    "classify_error",
    "encode_frame",
    "handle_message",
    "partition_corpus",
    "read_frame_async",
    "recv_frame",
    "send_frame",
    "shard_child_main",
    "start_cluster",
    "write_frame_async",
]
