"""Cluster lifecycle: partition, spawn supervised shards, run the gateway.

:class:`ServingCluster` is the one piece that knows the whole topology.
Given a corpus path, a shard count, and a replication factor it:

1. builds the :class:`~repro.serve.cluster.ring.HashRing` and partitions
   the corpus with ``replicas`` copies of every key range (deterministic
   for a fixed ``(shards, vnodes, seed, replicas)``, so a restart over
   the same state dir re-derives the same partition and every shard's
   snapshots/WAL still match its sub-corpus);
2. writes each shard's sub-corpus to ``<state_dir>/shard-{i}/corpus.jsonl``
   and starts one :class:`~repro.serve.supervisor.Supervisor` per shard
   with the framed-socket child entry point
   (:func:`~repro.serve.cluster.worker.shard_child_main`) — crash
   restarts, backoff, and same-port rebinds all come from PR 6's
   machinery unchanged;
3. runs a :class:`~repro.serve.cluster.gateway.ClusterGateway` on a
   dedicated asyncio event-loop thread, wired with a durable
   :class:`~repro.serve.cluster.hints.HintQueue`, an ingest journal
   (the WAL every acknowledged delta lands in — the replay stream for
   live resizes), and a ``shard_alive`` probe over the supervisors so
   hint drain targets only recovered shards.

The controller is also the chaos harness's handle on the cluster:
:meth:`kill_shard` SIGKILLs one worker mid-traffic and the supervisor
brings it back through snapshot+WAL recovery; with ``replicas >= 2``
the gateway meanwhile serves the victim's keys from replicas and queues
ingest hints, so the blast radius is latency, not availability.

:meth:`resize` changes the shard count **live**: fresh workers are
partitioned from ``HashRing.resized``, bulk-fed from the journal while
traffic keeps flowing, caught up under a brief ingest stall (503 +
``Retry-After`` — reads never pause; in-flight ingests are drained
first so every acknowledged delta is in the journal the catch-up pass
reads), and the gateway's topology is
flipped atomically under a generation token before the workers that
lost their ownership are drained and stopped.  Only key ranges that
moved are streamed: the preference-list's stability under growth means
a surviving shard never *gains* keys when the ring grows, so growth
streams data solely to the new shards; on shrink, survivors that do
gain ranges are replaced by new-generation workers built the same way.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import mkdtemp

from repro.data.corpus import Corpus
from repro.data.io import load_corpus, save_corpus
from repro.serve.admission import AdmissionController
from repro.serve.cluster.gateway import ClusterGateway, ShardClient
from repro.serve.cluster.hints import HintQueue
from repro.serve.cluster.ring import HashRing, PartitionPlan, partition_corpus
from repro.serve.cluster.worker import shard_child_main
from repro.serve.jitter import RetryJitter
from repro.serve.supervisor import RestartPolicy, Supervisor
from repro.serve.wal import WriteAheadLog


@dataclass
class ClusterConfig:
    """Everything needed to boot one cluster.

    ``state_dir=None`` uses a throwaway temp directory — durability
    still works within the process lifetime (crash restarts recover),
    it just does not survive the controller itself.  ``engine_options``
    are per-shard :class:`SelectionEngine` kwargs plus the admission
    knobs (``max_pending``/``rate_limit``/``rate_burst``) the worker
    resolves itself.  ``replicas`` is the preference-list length: every
    key lives on that many shards, reads fail over along the list, and
    ingest hints are queued (up to ``hint_limit`` per shard) for
    unreachable members.  ``resize_grace`` is how long old workers stay
    up after a topology flip so in-flight requests that captured the
    previous epoch can finish.
    """

    corpus_path: str | Path
    shards: int = 2
    host: str = "127.0.0.1"
    gateway_port: int = 0
    state_dir: str | Path | None = None
    vnodes: int = 64
    ring_seed: int = 7
    engine_options: dict = field(default_factory=dict)
    max_pending: int = 256
    rate_limit: float | None = None
    rate_burst: float | None = None
    restart_policy: RestartPolicy | None = None
    ready_timeout: float = 60.0
    pool_size: int = 8
    jitter_seed: int | None = None
    replicas: int = 1
    hint_limit: int = 512
    hint_drain_interval: float = 0.25
    resize_grace: float = 0.5


class ClusterError(RuntimeError):
    """The cluster could not be assembled, started, or resized."""


class ServingCluster:
    """A running gateway + shard fleet; use as a context manager.

    ``start()`` is synchronous and returns once every shard reported
    ready and the gateway is bound; the asyncio loop keeps running on a
    daemon thread until :meth:`stop`.
    """

    def __init__(self, config: ClusterConfig) -> None:
        if config.shards < 1:
            raise ClusterError(f"shards must be >= 1, got {config.shards}")
        if not 1 <= config.replicas <= config.shards:
            raise ClusterError(
                f"replicas must be in [1, {config.shards}], "
                f"got {config.replicas}"
            )
        self.config = config
        self.corpus: Corpus | None = None
        self.ring: HashRing | None = None
        self.plan: PartitionPlan | None = None
        self.supervisors: list[Supervisor] = []
        self.gateway: ClusterGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._bound: tuple[str, int] | None = None
        self._state_dir: Path | None = None
        self._hints: HintQueue | None = None
        self._journal: WriteAheadLog | None = None
        self._jitter: RetryJitter | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingCluster":
        config = self.config
        self.corpus = load_corpus(config.corpus_path)
        self.ring = HashRing(
            config.shards, vnodes=config.vnodes, seed=config.ring_seed
        )
        self.plan = partition_corpus(self.corpus, self.ring, config.replicas)
        self._state_dir = Path(
            config.state_dir
            if config.state_dir is not None
            else mkdtemp(prefix="repro-cluster-")
        )
        self._state_dir.mkdir(parents=True, exist_ok=True)
        try:
            self._start_shards()
            self._start_gateway()
        except Exception:
            self.stop()
            raise
        return self

    def _spawn_shard(self, shard: int, plan: PartitionPlan, shard_dir: Path) -> Supervisor:
        """Write a shard's sub-corpus and start its supervised worker."""
        shard_dir.mkdir(parents=True, exist_ok=True)
        corpus_file = shard_dir / "corpus.jsonl"
        # Deterministic partition: rewriting on every boot is
        # idempotent for an unchanged corpus + ring, and a changed
        # one *should* replace the file (the WAL/snapshots carry the
        # shard's own delta history on top).
        save_corpus(plan.corpora[shard], corpus_file)
        supervisor = Supervisor(
            shard_dir,
            corpus_path=corpus_file,
            host=self.config.host,
            port=0,
            policy=self.config.restart_policy or RestartPolicy(),
            ready_timeout=self.config.ready_timeout,
            engine_options=dict(self.config.engine_options),
            child_main=shard_child_main,
        )
        supervisor.start()
        return supervisor

    def _start_shards(self) -> None:
        assert self.plan is not None
        for shard in range(self.config.shards):
            self.supervisors.append(
                self._spawn_shard(
                    shard, self.plan, self._state_dir / f"shard-{shard}"
                )
            )
        for shard, supervisor in enumerate(self.supervisors):
            try:
                supervisor.wait_ready(self.config.ready_timeout)
            except Exception as exc:
                raise ClusterError(f"shard {shard} failed to start: {exc}") from exc

    def _start_gateway(self) -> None:
        assert self.corpus is not None and self.plan is not None
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._loop_thread = threading.Thread(
            target=loop.run_forever, name="repro-gateway-loop", daemon=True
        )
        self._loop_thread.start()

        jitter = (
            RetryJitter(seed=self.config.jitter_seed)
            if self.config.jitter_seed is not None
            else None
        )
        self._jitter = jitter
        admission = AdmissionController(
            max_pending=self.config.max_pending,
            rate=self.config.rate_limit,
            burst=self.config.rate_burst,
            jitter=jitter,
        )
        gateway_dir = self._state_dir / "gateway"
        gateway_dir.mkdir(parents=True, exist_ok=True)
        # Both survive a controller restart over the same state dir:
        # undelivered hints resume draining and the journal keeps its
        # full acked-delta history for future resizes.
        self._hints = HintQueue(
            gateway_dir, max_per_shard=self.config.hint_limit
        )
        self._journal = WriteAheadLog(gateway_dir / "journal.wal")
        supervisors = self.supervisors

        def _build() -> ClusterGateway:
            clients = [
                ShardClient(
                    shard,
                    self.config.host,
                    # Read the port through the supervisor on every dial:
                    # it is stable across restarts (same-port rebind) but
                    # only known once the first child reports ready.
                    (lambda s=supervisors[shard]: s.port),
                    pool_size=self.config.pool_size,
                    jitter=jitter,
                )
                for shard in range(self.config.shards)
            ]
            return ClusterGateway(
                self.corpus,
                self.plan,
                self.ring,
                clients,
                admission=admission,
                jitter=jitter,
                restart_total=lambda: sum(s.restarts for s in supervisors),
                hints=self._hints,
                journal=self._journal,
                # The list object is shared and mutated in place by
                # resize(), so this probe always sees the live fleet.
                shard_alive=(
                    lambda shard: 0 <= shard < len(supervisors)
                    and supervisors[shard].is_alive()
                ),
                hint_drain_interval=self.config.hint_drain_interval,
            )

        async def _boot() -> tuple[ClusterGateway, asyncio.base_events.Server]:
            gateway = _build()
            server = await gateway.start(
                self.config.host, self.config.gateway_port
            )
            return gateway, server

        future = asyncio.run_coroutine_threadsafe(_boot(), loop)
        self.gateway, self._server = future.result(timeout=30.0)
        sock = self._server.sockets[0]
        self._bound = sock.getsockname()[:2]

    def stop(self) -> None:
        """Stop the gateway, then terminate every shard (idempotent)."""
        loop = self._loop
        if loop is not None and self._server is not None:
            server = self._server
            gateway = self.gateway

            async def _shutdown() -> None:
                server.close()
                await server.wait_closed()
                if gateway is not None:
                    await gateway.aclose()

            try:
                asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(10.0)
            except Exception:
                pass
            self._server = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(10.0)
            loop.close()
            self._loop = None
            self._loop_thread = None
        for supervisor in self.supervisors:
            supervisor.stop()
        self.supervisors = []
        if self._hints is not None:
            self._hints.close()
            self._hints = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- live resize ---------------------------------------------------------

    def _on_loop(self, coro, timeout: float = 30.0):
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def resize(self, n_shards: int) -> dict:
        """Resize the live cluster to ``n_shards`` without stopping it.

        Sequence: spawn fresh workers from the resized ring's partition
        → bulk-replay the ingest journal into them (traffic untouched)
        → stall ingest (503 + ``Retry-After``; reads keep flowing) and
        drain the ingests already in flight so their journal appends
        land → catch-up replay → atomic topology flip under a new
        generation → resume ingest → grace period → stop workers that
        lost their ownership.  Requests observe only {200, 429,
        503+Retry-After} throughout, and never a wrong-shard answer:
        every request routes against one immutable topology snapshot.

        Returns ``{"generation", "fresh", "dropped", "replayed_upto"}``.
        On failure the old topology stays in force and fresh workers are
        torn down.
        """
        config = self.config
        if (
            self.corpus is None
            or self.plan is None
            or self.ring is None
            or self.gateway is None
            or self._loop is None
        ):
            raise ClusterError("cluster is not started")
        if n_shards < 1:
            raise ClusterError(f"shards must be >= 1, got {n_shards}")
        if config.replicas > n_shards:
            raise ClusterError(
                f"cannot resize to {n_shards} shards with "
                f"replicas={config.replicas}"
            )
        old_n = self.plan.shards
        if n_shards == old_n:
            return {
                "generation": self.gateway.generation,
                "fresh": [],
                "dropped": [],
                "replayed_upto": 0,
            }
        gateway = self.gateway
        new_ring = self.ring.resized(n_shards)
        new_plan = partition_corpus(self.corpus, new_ring, config.replicas)
        epoch = gateway.generation + 1

        # Fresh workers: brand-new shard ids, plus (on shrink) surviving
        # shards whose held-set *grew* — preference-list stability under
        # growth guarantees the latter never happens when growing, which
        # is why growth streams data only to the new shards.
        fresh = [
            shard
            for shard in range(n_shards)
            if shard >= old_n
            or not new_plan.held(shard) <= self.plan.held(shard)
        ]
        dropped = list(range(n_shards, old_n))

        new_supervisors: dict[int, Supervisor] = {}
        try:
            for shard in fresh:
                # Generation-suffixed dirs: a fresh worker must not
                # inherit a previous epoch's WAL/snapshots.
                new_supervisors[shard] = self._spawn_shard(
                    shard, new_plan, self._state_dir / f"shard-{shard}-g{epoch}"
                )
            for shard, supervisor in new_supervisors.items():
                supervisor.wait_ready(config.ready_timeout)

            async def _make_clients() -> dict[int, ShardClient]:
                return {
                    shard: ShardClient(
                        shard,
                        config.host,
                        (lambda s=new_supervisors[shard]: s.port),
                        pool_size=config.pool_size,
                        jitter=self._jitter,
                    )
                    for shard in fresh
                }

            fresh_clients = self._on_loop(_make_clients())
            targets = set(fresh)
            # Bulk replay with traffic flowing; only deltas acked after
            # this pass remain for the stalled catch-up below.
            replayed = self._on_loop(
                gateway.replay_journal(new_plan, fresh_clients, targets),
                timeout=600.0,
            )
        except Exception as exc:
            for supervisor in new_supervisors.values():
                supervisor.stop()
            raise ClusterError(f"resize to {n_shards} failed: {exc}") from exc

        async def _unstall() -> None:
            gateway.set_ingest_stall(False)

        old_clients = list(gateway.clients)
        try:
            # Stall *and drain*: an ingest that beat the stall check may
            # still be awaiting shard acks, and it journals only after
            # they return — the catch-up replay below must see that
            # append, or an acknowledged delta never reaches the fresh
            # workers.
            self._on_loop(gateway.stall_ingest_and_drain(), timeout=180.0)
            try:
                replayed = self._on_loop(
                    gateway.replay_journal(
                        new_plan, fresh_clients, targets, after_seq=replayed
                    ),
                    timeout=600.0,
                )

                async def _flip() -> int:
                    clients = [
                        fresh_clients[shard]
                        if shard in fresh_clients
                        else old_clients[shard]
                        for shard in range(n_shards)
                    ]
                    return gateway.swap_topology(new_ring, new_plan, clients)

                generation = self._on_loop(_flip())
            finally:
                self._on_loop(_unstall())
        except Exception as exc:
            for supervisor in new_supervisors.values():
                supervisor.stop()
            raise ClusterError(f"resize to {n_shards} failed: {exc}") from exc

        # The flip is done; let requests that captured the old topology
        # finish against the old workers before stopping them.
        time.sleep(config.resize_grace)
        retiring = [
            old_clients[shard]
            for shard in set(fresh_clients) | set(dropped)
            if shard < old_n
        ]

        async def _close_retiring() -> None:
            for client in retiring:
                await client.aclose()

        self._on_loop(_close_retiring())
        retired = [self.supervisors[shard] for shard in dropped] + [
            self.supervisors[shard] for shard in fresh if shard < old_n
        ]
        for supervisor in retired:
            supervisor.stop()
        if self._hints is not None:
            for shard in dropped:
                self._hints.drop_shard(shard)

        # In-place so the gateway's restart_total / shard_alive lambdas
        # (which captured this list object) keep seeing the live fleet.
        self.supervisors[:] = [
            new_supervisors[shard]
            if shard in new_supervisors
            else self.supervisors[shard]
            for shard in range(n_shards)
        ]
        self.ring = new_ring
        self.plan = new_plan
        return {
            "generation": generation,
            "fresh": fresh,
            "dropped": dropped,
            "replayed_upto": replayed,
        }

    # -- introspection & chaos ----------------------------------------------

    @property
    def base_url(self) -> str:
        if self._bound is None:
            raise ClusterError("cluster is not started")
        host, port = self._bound
        return f"http://{host}:{port}"

    @property
    def gateway_address(self) -> tuple[str, int]:
        if self._bound is None:
            raise ClusterError("cluster is not started")
        return self._bound

    def shard_port(self, shard: int) -> int | None:
        return self.supervisors[shard].port

    def kill_shard(self, shard: int) -> int:
        """SIGKILL one shard worker (chaos); the supervisor restarts it."""
        return self.supervisors[shard].kill()

    def restarts(self) -> list[int]:
        return [supervisor.restarts for supervisor in self.supervisors]

    def drain_hints(self) -> dict[int, int]:
        """One synchronous hint-drain pass; ``{shard: delivered}``."""
        if self.gateway is None or self._loop is None:
            raise ClusterError("cluster is not started")
        return self._on_loop(self.gateway.drain_hints())

    def check_replicas(self, product_id: str) -> dict:
        """Probe a product's replica group for divergence (read repair)."""
        if self.gateway is None or self._loop is None:
            raise ClusterError("cluster is not started")
        return self._on_loop(self.gateway.check_replicas(product_id))

    def hint_depths(self) -> dict[int, int]:
        """Pending hinted deltas per shard (empty when all caught up)."""
        if self._hints is None:
            return {}
        return {
            shard: self._hints.depth(shard)
            for shard in self._hints.shards_with_hints()
        }

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster(config: ClusterConfig) -> ServingCluster:
    """Build and start a cluster in one call."""
    return ServingCluster(config).start()
