"""Cluster lifecycle: partition, spawn supervised shards, run the gateway.

:class:`ServingCluster` is the one piece that knows the whole topology.
Given a corpus path and a shard count it:

1. builds the :class:`~repro.serve.cluster.ring.HashRing` and partitions
   the corpus (deterministic for a fixed ``(shards, vnodes, seed)``, so
   a restart over the same state dir re-derives the same partition and
   every shard's snapshots/WAL still match its sub-corpus);
2. writes each shard's sub-corpus to ``<state_dir>/shard-{i}/corpus.jsonl``
   and starts one :class:`~repro.serve.supervisor.Supervisor` per shard
   with the framed-socket child entry point
   (:func:`~repro.serve.cluster.worker.shard_child_main`) — crash
   restarts, backoff, and same-port rebinds all come from PR 6's
   machinery unchanged;
3. runs a :class:`~repro.serve.cluster.gateway.ClusterGateway` on a
   dedicated asyncio event-loop thread and exposes its bound address.

The controller is also the chaos harness's handle on the cluster:
:meth:`kill_shard` SIGKILLs one worker mid-traffic and the supervisor
brings it back through snapshot+WAL recovery while the gateway returns
503 for that shard's targets only.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import mkdtemp

from repro.data.corpus import Corpus
from repro.data.io import load_corpus, save_corpus
from repro.serve.admission import AdmissionController
from repro.serve.cluster.gateway import ClusterGateway, ShardClient
from repro.serve.cluster.ring import HashRing, PartitionPlan, partition_corpus
from repro.serve.cluster.worker import shard_child_main
from repro.serve.jitter import RetryJitter
from repro.serve.supervisor import RestartPolicy, Supervisor


@dataclass
class ClusterConfig:
    """Everything needed to boot one cluster.

    ``state_dir=None`` uses a throwaway temp directory — durability
    still works within the process lifetime (crash restarts recover),
    it just does not survive the controller itself.  ``engine_options``
    are per-shard :class:`SelectionEngine` kwargs plus the admission
    knobs (``max_pending``/``rate_limit``/``rate_burst``) the worker
    resolves itself.
    """

    corpus_path: str | Path
    shards: int = 2
    host: str = "127.0.0.1"
    gateway_port: int = 0
    state_dir: str | Path | None = None
    vnodes: int = 64
    ring_seed: int = 7
    engine_options: dict = field(default_factory=dict)
    max_pending: int = 256
    rate_limit: float | None = None
    rate_burst: float | None = None
    restart_policy: RestartPolicy | None = None
    ready_timeout: float = 60.0
    pool_size: int = 8
    jitter_seed: int | None = None


class ClusterError(RuntimeError):
    """The cluster could not be assembled or started."""


class ServingCluster:
    """A running gateway + shard fleet; use as a context manager.

    ``start()`` is synchronous and returns once every shard reported
    ready and the gateway is bound; the asyncio loop keeps running on a
    daemon thread until :meth:`stop`.
    """

    def __init__(self, config: ClusterConfig) -> None:
        if config.shards < 1:
            raise ClusterError(f"shards must be >= 1, got {config.shards}")
        self.config = config
        self.corpus: Corpus | None = None
        self.ring: HashRing | None = None
        self.plan: PartitionPlan | None = None
        self.supervisors: list[Supervisor] = []
        self.gateway: ClusterGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._bound: tuple[str, int] | None = None
        self._state_dir: Path | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingCluster":
        config = self.config
        self.corpus = load_corpus(config.corpus_path)
        self.ring = HashRing(
            config.shards, vnodes=config.vnodes, seed=config.ring_seed
        )
        self.plan = partition_corpus(self.corpus, self.ring)
        self._state_dir = Path(
            config.state_dir
            if config.state_dir is not None
            else mkdtemp(prefix="repro-cluster-")
        )
        self._state_dir.mkdir(parents=True, exist_ok=True)
        try:
            self._start_shards()
            self._start_gateway()
        except Exception:
            self.stop()
            raise
        return self

    def _start_shards(self) -> None:
        assert self.plan is not None
        policy = self.config.restart_policy or RestartPolicy()
        for shard in range(self.config.shards):
            shard_dir = self._state_dir / f"shard-{shard}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            corpus_file = shard_dir / "corpus.jsonl"
            # Deterministic partition: rewriting on every boot is
            # idempotent for an unchanged corpus + ring, and a changed
            # one *should* replace the file (the WAL/snapshots carry the
            # shard's own delta history on top).
            save_corpus(self.plan.corpora[shard], corpus_file)
            supervisor = Supervisor(
                shard_dir,
                corpus_path=corpus_file,
                host=self.config.host,
                port=0,
                policy=policy,
                ready_timeout=self.config.ready_timeout,
                engine_options=dict(self.config.engine_options),
                child_main=shard_child_main,
            )
            supervisor.start()
            self.supervisors.append(supervisor)
        for shard, supervisor in enumerate(self.supervisors):
            try:
                supervisor.wait_ready(self.config.ready_timeout)
            except Exception as exc:
                raise ClusterError(f"shard {shard} failed to start: {exc}") from exc

    def _start_gateway(self) -> None:
        assert self.corpus is not None and self.plan is not None
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._loop_thread = threading.Thread(
            target=loop.run_forever, name="repro-gateway-loop", daemon=True
        )
        self._loop_thread.start()

        jitter = (
            RetryJitter(seed=self.config.jitter_seed)
            if self.config.jitter_seed is not None
            else None
        )
        admission = AdmissionController(
            max_pending=self.config.max_pending,
            rate=self.config.rate_limit,
            burst=self.config.rate_burst,
            jitter=jitter,
        )
        supervisors = self.supervisors

        def _build() -> ClusterGateway:
            clients = [
                ShardClient(
                    shard,
                    self.config.host,
                    # Read the port through the supervisor on every dial:
                    # it is stable across restarts (same-port rebind) but
                    # only known once the first child reports ready.
                    (lambda s=supervisors[shard]: s.port),
                    pool_size=self.config.pool_size,
                )
                for shard in range(self.config.shards)
            ]
            return ClusterGateway(
                self.corpus,
                self.plan,
                self.ring,
                clients,
                admission=admission,
                jitter=jitter,
                restart_total=lambda: sum(s.restarts for s in supervisors),
            )

        async def _boot() -> tuple[ClusterGateway, asyncio.base_events.Server]:
            gateway = _build()
            server = await gateway.start(
                self.config.host, self.config.gateway_port
            )
            return gateway, server

        future = asyncio.run_coroutine_threadsafe(_boot(), loop)
        self.gateway, self._server = future.result(timeout=30.0)
        sock = self._server.sockets[0]
        self._bound = sock.getsockname()[:2]

    def stop(self) -> None:
        """Stop the gateway, then terminate every shard (idempotent)."""
        loop = self._loop
        if loop is not None and self._server is not None:
            server = self._server
            gateway = self.gateway

            async def _shutdown() -> None:
                server.close()
                await server.wait_closed()
                if gateway is not None:
                    await gateway.aclose()

            try:
                asyncio.run_coroutine_threadsafe(_shutdown(), loop).result(10.0)
            except Exception:
                pass
            self._server = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(10.0)
            loop.close()
            self._loop = None
            self._loop_thread = None
        for supervisor in self.supervisors:
            supervisor.stop()
        self.supervisors = []

    # -- introspection & chaos ----------------------------------------------

    @property
    def base_url(self) -> str:
        if self._bound is None:
            raise ClusterError("cluster is not started")
        host, port = self._bound
        return f"http://{host}:{port}"

    @property
    def gateway_address(self) -> tuple[str, int]:
        if self._bound is None:
            raise ClusterError("cluster is not started")
        return self._bound

    def shard_port(self, shard: int) -> int | None:
        return self.supervisors[shard].port

    def kill_shard(self, shard: int) -> int:
        """SIGKILL one shard worker (chaos); the supervisor restarts it."""
        return self.supervisors[shard].kill()

    def restarts(self) -> list[int]:
        return [supervisor.restarts for supervisor in self.supervisors]

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster(config: ClusterConfig) -> ServingCluster:
    """Build and start a cluster in one call."""
    return ServingCluster(config).start()
