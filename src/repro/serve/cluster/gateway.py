"""Asyncio gateway: one public HTTP front door over many shard workers.

The gateway is the cluster's only HTTP surface.  It is a thin,
stdlib-only ``asyncio.start_server`` loop speaking just enough HTTP/1.1
(request line, headers, ``Content-Length`` bodies, keep-alive) to be a
drop-in for the single-process server's endpoints, and it does four
things per request:

1. **admission** — a *global* :class:`AdmissionController` sheds excess
   load with 429 + ``Retry-After`` before any shard is touched, using
   the same cost model as the single-process engine;
2. **routing** — ``/v1/select`` and ``/v1/narrow`` go to the shard that
   owns the target item (``target: null`` is resolved here, against the
   full corpus, to the exact product the single-process store would
   pick, then pinned into the forwarded body);
3. **fan-out** — ``/v1/ingest`` deltas go to *every* shard holding an
   affected product (owner + comparative holders), ``/v1/snapshot`` and
   the ``healthz``/``metrics`` aggregations go to all shards;
4. **failure conversion** — a dead or restarting shard becomes 503 +
   ``Retry-After`` (reason ``shard_unavailable``), never an uncaught
   500, while requests routed to live shards keep succeeding.

Success and error replies are relayed from the shard verbatim (the
worker already emits the single-process server's exact payloads), which
is what makes ``--shards N`` responses byte-identical to ``--shards 1``
modulo provenance.  ``/v1/reload`` is the one deliberate gap: swapping
corpora would change the partition itself, so cluster mode answers 501
and operators restart with the new corpus instead.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from http.client import responses as _HTTP_REASONS
from urllib.parse import parse_qs, urlparse

from repro.data.corpus import Corpus
from repro.data.instances import build_instance
from repro.serve.admission import AdmissionController, Overloaded, request_cost
from repro.serve.cluster.proto import (
    FrameError,
    read_frame_async,
    write_frame_async,
)
from repro.serve.cluster.ring import HashRing, PartitionPlan
from repro.serve.engine import InvalidRequest
from repro.serve.http import BadRequest, encode_json, parse_request
from repro.serve.metrics import MetricsRegistry
from repro.serve.store import UnviableTargetError
from repro.serve.wal import review_from_record
from repro.serve.jitter import NO_JITTER, RetryJitter

#: Upper bound on a forwarded request's wait for its shard when the
#: client sent no deadline; with a deadline the wait is deadline + margin.
DEFAULT_SHARD_TIMEOUT = 120.0
_SHARD_TIMEOUT_MARGIN = 5.0

_MAX_HEADER_LINES = 100
_MAX_BODY_BYTES = 64 * 1024 * 1024


class ShardUnavailable(RuntimeError):
    """The owning shard cannot be reached (crashed, restarting, hung)."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(
            f"shard {shard} is unavailable ({detail}); retry shortly"
        )
        self.shard = shard


class _HTTPError(Exception):
    """Short-circuit to an error response while parsing/dispatching."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.extra = extra


class ShardClient:
    """A pooled framed-protocol client for one shard.

    At most ``pool_size`` requests are in flight to the shard at once;
    excess requests queue on the pool (they are already inside the
    global admission window, so the queue is bounded).  Connections are
    opened lazily and re-opened on demand, which is what lets a
    supervisor-restarted shard — same port, new process — come back
    without any gateway reconfiguration: the first request after the
    restart just dials again.
    """

    def __init__(
        self,
        shard: int,
        host: str,
        port_fn,
        *,
        pool_size: int = 8,
        connect_timeout: float = 2.0,
    ) -> None:
        self.shard = shard
        self.host = host
        self._port_fn = port_fn
        self.connect_timeout = connect_timeout
        self._slots: asyncio.Queue = asyncio.Queue()
        for _ in range(pool_size):
            self._slots.put_nowait(None)

    async def request(self, message: dict, timeout: float | None = None) -> dict:
        """One framed round-trip; raises :class:`ShardUnavailable` on failure.

        A failed connection is never returned to the pool (a torn or
        timed-out exchange leaves the stream desynchronised); its slot
        goes back empty so the next request dials fresh.
        """
        conn = await self._slots.get()
        try:
            if conn is None:
                port = self._port_fn()
                if port is None:
                    raise ShardUnavailable(self.shard, "not yet bound")
                conn = await asyncio.wait_for(
                    asyncio.open_connection(self.host, port),
                    self.connect_timeout,
                )
            reader, writer = conn
            await write_frame_async(writer, message)
            reply = await asyncio.wait_for(
                read_frame_async(reader),
                timeout if timeout is not None else DEFAULT_SHARD_TIMEOUT,
            )
        except ShardUnavailable:
            self._slots.put_nowait(None)
            raise
        except (OSError, FrameError, asyncio.TimeoutError, EOFError) as exc:
            if conn is not None:
                conn[1].close()
            self._slots.put_nowait(None)
            detail = type(exc).__name__ if not str(exc) else str(exc)
            raise ShardUnavailable(self.shard, detail) from exc
        else:
            self._slots.put_nowait(conn)
            return reply

    async def aclose(self) -> None:
        """Close every pooled connection (drains the pool non-blockingly)."""
        while True:
            try:
                conn = self._slots.get_nowait()
            except asyncio.QueueEmpty:
                return
            if conn is not None:
                conn[1].close()


class ClusterGateway:
    """Routing, admission, fan-out, and aggregation over shard clients.

    Pure asyncio — no threads of its own; the cluster controller decides
    which event loop it runs on.  ``restart_total`` is a zero-arg
    callable summing supervisor restarts (exposed as the
    ``repro_shard_restart_total`` gauge).
    """

    def __init__(
        self,
        corpus: Corpus,
        plan: PartitionPlan,
        ring: HashRing,
        clients: list[ShardClient],
        *,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        jitter: RetryJitter | None = None,
        restart_total=None,
    ) -> None:
        if len(clients) != plan.shards:
            raise ValueError(
                f"plan has {plan.shards} shards but {len(clients)} clients given"
            )
        self.corpus = corpus
        self.plan = plan
        self.ring = ring
        self.clients = clients
        self.jitter = jitter or NO_JITTER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_pending=256, jitter=self.jitter)
        )
        self.started_at = time.monotonic()
        self._reviews = len(corpus.reviews)
        # target=None resolution is memoised per (max_comparisons,
        # min_reviews): the answer only changes with the corpus, and the
        # cluster's corpus is fixed for the process lifetime.
        self._default_targets: dict[tuple[int | None, int], str] = {}
        self.metrics.gauge(
            "repro_gateway_queue_depth",
            lambda: self.admission.inflight,
            "requests currently admitted into the gateway",
        )
        self.metrics.gauge(
            "repro_shard_restart_total",
            restart_total if restart_total is not None else (lambda: 0),
            "supervisor restarts summed across shard workers",
        )
        self.metrics.gauge(
            "repro_cluster_shards",
            lambda: self.plan.shards,
            "shard workers behind this gateway",
        )

    # -- routing helpers -----------------------------------------------------

    def _default_target(self, max_comparisons: int | None, min_reviews: int) -> str:
        """The id :meth:`ItemStore.default_target` would pick.

        Re-implemented over the *full* corpus (no shard sees the whole
        catalogue) with identical semantics: first product in corpus
        order that forms a viable instance.
        """
        key = (max_comparisons, min_reviews)
        cached = self._default_targets.get(key)
        if cached is not None:
            return cached
        for product in self.corpus.products:
            instance = build_instance(
                self.corpus,
                product.product_id,
                max_comparisons=max_comparisons,
                min_reviews=min_reviews,
            )
            if instance is not None:
                self._default_targets[key] = product.product_id
                return product.product_id
        raise UnviableTargetError("no viable target item in the corpus")

    def _shard_timeout(self, deadline_ms: float | None) -> float:
        if deadline_ms is None:
            return DEFAULT_SHARD_TIMEOUT
        return deadline_ms / 1e3 + _SHARD_TIMEOUT_MARGIN

    async def _call_shard(
        self, shard: int, message: dict, timeout: float | None = None
    ) -> dict:
        self.metrics.counter(
            "repro_shard_requests_total",
            "requests dispatched to shard workers",
            labels={"shard": str(shard)},
        ).inc()
        try:
            return await self.clients[shard].request(message, timeout)
        except ShardUnavailable:
            self.metrics.counter(
                "repro_shard_unavailable_total",
                "dispatches that found the shard unreachable",
                labels={"shard": str(shard)},
            ).inc()
            raise

    def _relay(self, reply: dict) -> tuple[int, object, dict[str, str] | None]:
        """Turn a shard reply frame into (status, payload, extra headers)."""
        status = reply.get("status")
        if not isinstance(status, int):
            raise ShardUnavailable(-1, "malformed shard reply")
        if status == 200:
            return 200, reply.get("payload"), None
        return self._error_response(
            status,
            str(reply.get("error", "shard error")),
            retry_after=reply.get("retry_after"),
            extra=reply.get("extra"),
        )

    def _error_response(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> tuple[int, object, dict[str, str] | None]:
        """The single-process server's error body/headers, byte for byte."""
        self.metrics.counter(
            "repro_http_errors_total", "error responses by status",
            labels={"status": str(status)},
        ).inc()
        payload: dict[str, object] = {"error": message, "status": status}
        headers = None
        if retry_after is not None:
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
            payload["retry_after"] = round(retry_after, 3)
        if extra:
            payload.update(extra)
        return status, payload, headers

    # -- endpoint handlers ---------------------------------------------------

    async def _handle_query(
        self, endpoint: str, body: dict, deadline_ms: float | None
    ) -> tuple[int, object, dict[str, str] | None]:
        narrow = endpoint == "narrow"
        try:
            request = parse_request(body, narrow)
        except (BadRequest, TypeError) as exc:
            return self._error_response(400, str(exc))
        cost = request_cost(
            endpoint,
            request.m,
            k=getattr(request, "k", 0),
            stages=len(getattr(request, "stages", ())),
            reviews=self._reviews,
        )
        try:
            slot = self.admission.admit(cost)
        except Overloaded as exc:
            self.metrics.counter(
                "repro_shed_total", "requests refused by admission control",
                labels={"reason": exc.reason},
            ).inc()
            return self._error_response(
                429, str(exc), retry_after=exc.retry_after,
                extra={"reason": exc.reason},
            )
        with slot:
            target = request.target
            try:
                if target is None:
                    target = self._default_target(
                        request.max_comparisons, request.min_reviews
                    )
                    body = {**body, "target": target}
                if target not in self.plan.placement:
                    return self._error_response(
                        422, f"target {target!r} is not in the corpus"
                    )
            except (InvalidRequest, UnviableTargetError) as exc:
                return self._error_response(422, str(exc))
            shard = self.plan.owner(target)
            message = {"op": "narrow" if narrow else "select", "body": body}
            if deadline_ms is not None:
                message["deadline_ms"] = deadline_ms
            try:
                reply = await self._call_shard(
                    shard, message, self._shard_timeout(deadline_ms)
                )
            except ShardUnavailable as exc:
                return self._error_response(
                    503, str(exc), retry_after=self.jitter.apply(1.0),
                    extra={"reason": "shard_unavailable", "shard": shard},
                )
            return self._relay(reply)

    async def _handle_ingest(
        self, body: dict
    ) -> tuple[int, object, dict[str, str] | None]:
        unknown = sorted(set(body) - {"reviews"})
        if unknown:
            return self._error_response(400, f"unknown fields: {unknown}")
        reviews = body.get("reviews")
        if not isinstance(reviews, list) or not reviews:
            return self._error_response(
                400,
                "field 'reviews' (a non-empty list of review objects) "
                "is required",
            )
        if not all(isinstance(entry, dict) for entry in reviews):
            return self._error_response(
                400, "every entry in 'reviews' must be an object"
            )
        # Mirror the store's validation order — parse every record, then
        # reject unknown products and in-batch duplicates on the first
        # offender — so the gateway 400s/409s read exactly like the
        # single-process server's.  Existing-id conflicts can only be
        # seen by the shards; their 409 is relayed below.
        try:
            parsed = [review_from_record(record) for record in reviews]
        except ValueError as exc:
            return self._error_response(400, str(exc))
        groups: dict[int, list[dict]] = {}
        seen: set[str] = set()
        for review, record in zip(parsed, reviews):
            if review.product_id not in self.plan.placement:
                return self._error_response(
                    400,
                    f"review {review.review_id!r} references unknown "
                    f"product {review.product_id!r}",
                )
            if review.review_id in seen:
                return self._error_response(
                    409, f"duplicate review id {review.review_id!r}"
                )
            seen.add(review.review_id)
            for shard in self.plan.holders(review.product_id):
                groups.setdefault(shard, []).append(record)

        async def _one(shard: int, records: list[dict]):
            try:
                return shard, await self._call_shard(
                    shard, {"op": "ingest", "reviews": records}
                )
            except ShardUnavailable as exc:
                return shard, {
                    "status": 503,
                    "error": str(exc),
                    "retry_after": self.jitter.apply(1.0),
                    "extra": {"reason": "shard_unavailable", "shard": shard},
                }

        results = await asyncio.gather(
            *(_one(shard, records) for shard, records in sorted(groups.items()))
        )
        failures = [
            (shard, reply) for shard, reply in results if reply.get("status") != 200
        ]
        if failures:
            # Relay the most retryable failure: 5xx (client should retry
            # the whole batch; shard-level dedup makes the retry safe)
            # over 409 over 400.  Partial application is possible and
            # surfaced per shard so operators can reconcile.
            shard, reply = max(failures, key=lambda item: item[1].get("status", 0))
            status, payload, headers = self._error_response(
                reply.get("status", 503),
                str(reply.get("error", "shard error")),
                retry_after=reply.get("retry_after"),
                extra=reply.get("extra"),
            )
            if isinstance(payload, dict):
                payload["shards"] = {
                    str(s): r.get("status") for s, r in results
                }
            return status, payload, headers
        affected: set[str] = set()
        acks: dict[str, object] = {}
        for shard, reply in results:
            ack = reply.get("payload") or {}
            acks[str(shard)] = ack
            affected.update(ack.get("affected", ()))
        return (
            200,
            {
                "added": len(parsed),
                "affected": sorted(affected),
                "shards": acks,
            },
            None,
        )

    async def _handle_snapshot(self) -> tuple[int, object, dict[str, str] | None]:
        async def _one(shard: int):
            try:
                return shard, await self._call_shard(shard, {"op": "snapshot"})
            except ShardUnavailable as exc:
                return shard, {"status": 503, "error": str(exc)}

        results = await asyncio.gather(
            *(_one(shard) for shard in range(self.plan.shards))
        )
        failures = [(s, r) for s, r in results if r.get("status") != 200]
        if failures:
            shard, reply = failures[0]
            return self._error_response(
                reply.get("status", 503),
                str(reply.get("error", "shard error")),
                extra={"shard": shard},
            )
        return (
            200,
            {"shards": {str(s): r.get("payload") for s, r in results}},
            None,
        )

    async def _handle_healthz(self) -> tuple[int, object, dict[str, str] | None]:
        async def _one(shard: int):
            try:
                reply = await self._call_shard(
                    shard, {"op": "healthz"}, timeout=5.0
                )
            except ShardUnavailable as exc:
                return shard, {"status": "down", "error": str(exc)}
            payload = reply.get("payload") or {}
            if reply.get("status") != 200 and "status" not in payload:
                payload = {"status": "down", "error": reply.get("error")}
            return shard, payload

        results = await asyncio.gather(
            *(_one(shard) for shard in range(self.plan.shards))
        )
        shards = {str(shard): view for shard, view in results}
        all_ok = all(view.get("status") == "ok" for view in shards.values())
        payload = {
            # The gateway is alive either way; "degraded" names the state
            # where at least one shard is down/draining and its targets
            # answer 503 while the rest keep serving.
            "status": "ok" if all_ok else "degraded",
            "ring": self.ring.describe(),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "inflight": self.admission.inflight,
            "shards": shards,
        }
        return 200, payload, None

    async def _handle_metrics(
        self, prometheus: bool
    ) -> tuple[int, object, dict[str, str] | None]:
        async def _one(shard: int):
            try:
                reply = await self._call_shard(
                    shard, {"op": "metrics"}, timeout=5.0
                )
            except ShardUnavailable as exc:
                return shard, {"status": 503, "error": str(exc)}
            return shard, reply

        results = await asyncio.gather(
            *(_one(shard) for shard in range(self.plan.shards))
        )
        if prometheus:
            blocks = [self.metrics.render_prometheus()]
            for shard, reply in results:
                if reply.get("status") == 200:
                    text = (reply.get("payload") or {}).get("prometheus", "")
                    blocks.append(f"# ---- shard {shard} ----\n{text}")
                else:
                    blocks.append(f"# ---- shard {shard} unavailable ----\n")
            return 200, "".join(blocks).encode(), None
        shard_views: dict[str, object] = {}
        for shard, reply in results:
            if reply.get("status") == 200:
                shard_views[str(shard)] = (reply.get("payload") or {}).get("json")
            else:
                shard_views[str(shard)] = {"error": reply.get("error")}
        return 200, {"gateway": self.metrics.as_dict(), "shards": shard_views}, None

    # -- HTTP plumbing -------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body_bytes: bytes
    ) -> tuple[int, object, dict[str, str] | None, str]:
        """Returns (status, payload, extra headers, content type)."""
        url = urlparse(path)
        if method == "GET":
            if url.path == "/healthz":
                status, payload, extra = await self._handle_healthz()
                return status, payload, extra, "application/json"
            if url.path == "/metrics":
                query = parse_qs(url.query)
                wants_text = (
                    query.get("format", [""])[0] == "prometheus"
                    or "text/plain" in headers.get("accept", "")
                )
                status, payload, extra = await self._handle_metrics(wants_text)
                content = (
                    "text/plain; version=0.0.4" if wants_text
                    else "application/json"
                )
                return status, payload, extra, content
            if url.path in (
                "/v1/select", "/v1/narrow", "/v1/reload", "/v1/ingest",
                "/v1/snapshot",
            ):
                status, payload, extra = self._error_response(
                    405, f"{url.path} requires POST"
                )
                return status, payload, extra, "application/json"
            status, payload, extra = self._error_response(
                404, f"unknown endpoint {url.path!r}"
            )
            return status, payload, extra, "application/json"
        if method != "POST":
            status, payload, extra = self._error_response(
                405, f"method {method} is not supported"
            )
            return status, payload, extra, "application/json"
        if url.path in ("/healthz", "/metrics"):
            status, payload, extra = self._error_response(
                405, f"{url.path} requires GET"
            )
            return status, payload, extra, "application/json"
        if url.path == "/v1/reload":
            status, payload, extra = self._error_response(
                501,
                "corpus reload is not supported in cluster mode; restart "
                "the cluster with the new corpus (the partition depends "
                "on it)",
            )
            return status, payload, extra, "application/json"
        if url.path not in ("/v1/select", "/v1/narrow", "/v1/ingest", "/v1/snapshot"):
            status, payload, extra = self._error_response(
                404, f"unknown endpoint {url.path!r}"
            )
            return status, payload, extra, "application/json"
        try:
            deadline_ms = _parse_deadline(headers)
            body = _parse_body(body_bytes)
        except _HTTPError as exc:
            status, payload, extra = self._error_response(
                exc.status, str(exc), retry_after=exc.retry_after, extra=exc.extra
            )
            return status, payload, extra, "application/json"
        if url.path == "/v1/ingest":
            status, payload, extra = await self._handle_ingest(body)
        elif url.path == "/v1/snapshot":
            status, payload, extra = await self._handle_snapshot()
        else:
            endpoint = "narrow" if url.path == "/v1/narrow" else "select"
            status, payload, extra = await self._handle_query(
                endpoint, body, deadline_ms
            )
        return status, payload, extra, "application/json"

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: HTTP/1.1 with keep-alive."""
        try:
            while True:
                parsed = await _read_http_request(reader)
                if parsed is None:
                    break
                method, path, headers, body_bytes, close = parsed
                try:
                    status, payload, extra, content = await self._dispatch(
                        method, path, headers, body_bytes
                    )
                except Exception as exc:  # pragma: no cover - backstop
                    status, payload, extra = self._error_response(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                    content = "application/json"
                body = payload if isinstance(payload, bytes) else encode_json(payload)
                reason = _HTTP_REASONS.get(status, "Unknown")
                head = [
                    f"HTTP/1.1 {status} {reason}",
                    f"Content-Type: {content}",
                    f"Content-Length: {len(body)}",
                    f"Connection: {'close' if close else 'keep-alive'}",
                ]
                for name, value in (extra or {}).items():
                    head.append(f"{name}: {value}")
                writer.write(
                    ("\r\n".join(head) + "\r\n\r\n").encode() + body
                )
                await writer.drain()
                if close:
                    break
        except (_HTTPError, ConnectionError, asyncio.IncompleteReadError):
            pass  # malformed or torn connection: just drop it
        except OSError:
            pass
        finally:
            writer.close()

    async def start(self, host: str, port: int) -> asyncio.base_events.Server:
        """Bind and start serving; read the bound port off the result."""
        return await asyncio.start_server(self.handle_connection, host, port)

    async def aclose(self) -> None:
        for client in self.clients:
            await client.aclose()


def _parse_deadline(headers: dict[str, str]) -> float | None:
    raw = headers.get("x-deadline-ms")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise _HTTPError(
            400, f"X-Deadline-Ms must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise _HTTPError(400, f"X-Deadline-Ms must be positive, got {raw!r}")
    return value


def _parse_body(body_bytes: bytes) -> dict:
    try:
        body = json.loads(body_bytes or b"{}")
    except json.JSONDecodeError as exc:
        raise _HTTPError(400, f"invalid JSON body: {exc}") from None
    if not isinstance(body, dict):
        raise _HTTPError(400, "request body must be a JSON object")
    return body


async def _read_http_request(
    reader: asyncio.StreamReader,
):
    """Parse one request; ``None`` on a clean EOF before a request line.

    Returns ``(method, path, lowercase headers, body bytes, close)``.
    Raises on malformed framing — the caller drops the connection, which
    is the only safe answer when the byte stream cannot be trusted.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise _HTTPError(400, f"malformed request line: {line!r}")
    method, path, version = parts
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HTTPError(431, "too many header lines")
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise _HTTPError(400, f"invalid Content-Length: {length_raw!r}") from None
    if not 0 <= length <= _MAX_BODY_BYTES:
        raise _HTTPError(413, f"body of {length} bytes is not acceptable")
    body = await reader.readexactly(length) if length else b""
    close = (
        headers.get("connection", "").lower() == "close"
        or version.upper() == "HTTP/1.0"
    )
    return method, path, headers, body, close
