"""Asyncio gateway: one public HTTP front door over many shard workers.

The gateway is the cluster's only HTTP surface.  It is a thin,
stdlib-only ``asyncio.start_server`` loop speaking just enough HTTP/1.1
(request line, headers, ``Content-Length`` bodies, keep-alive) to be a
drop-in for the single-process server's endpoints, and it does four
things per request:

1. **admission** — a *global* :class:`AdmissionController` sheds excess
   load with 429 + ``Retry-After`` before any shard is touched, using
   the same cost model as the single-process engine;
2. **routing** — ``/v1/select`` and ``/v1/narrow`` go to the shard that
   owns the target item (``target: null`` is resolved here, against the
   full corpus, to the exact product the single-process store would
   pick, then pinned into the forwarded body); with ``replicas > 1``
   the read *fails over* down the key's preference list when a shard is
   unreachable, so a crashed primary costs latency, not availability —
   the replica's answer is byte-identical because partitioning is, and
   provenance gains ``served_by``/``failover: true`` so operators can
   see it happened;
3. **fan-out** — ``/v1/ingest`` deltas go to *every* shard holding an
   affected product (owner + replicas + comparative holders); when a
   holder is unreachable the delta is *hinted* — durably queued in a
   :class:`~repro.serve.cluster.hints.HintQueue` (atomically across
   every down holder) and replayed once the shard recovers (the
   worker's ``delta_seq`` idempotence makes replay a no-op if the
   delta also arrived live).  Same-product deltas are serialised under
   striped per-product locks held through the journal append, so every
   replica and the journal replay stream apply them in ``delta_seq``
   order, and a holder with an undrained hint backlog takes new deltas
   through the queue, behind what it is owed.  ``/v1/snapshot`` and
   the ``healthz``/``metrics`` aggregations go to all shards;
4. **failure conversion** — a dead or restarting shard becomes 503 +
   ``Retry-After`` (reason ``shard_unavailable``) only once every
   replica in the preference list has been tried, never an uncaught
   500, while requests routed to live shards keep succeeding.

Routing state lives in an immutable :class:`Topology` snapshot (ring +
plan + shard clients under a monotonic *generation* token).  Every
request captures the snapshot once and uses it throughout, and a live
resize swaps the gateway's reference atomically on the event loop — a
request observes exactly one epoch, which is what makes "never a
wrong-shard answer" hold while the ring is being resized underneath.

Success and error replies are relayed from the shard verbatim (the
worker already emits the single-process server's exact payloads), which
is what makes ``--shards N`` responses byte-identical to ``--shards 1``
modulo provenance.  ``/v1/reload`` is the one deliberate gap: swapping
corpora would change the partition itself, so cluster mode answers 501
and operators restart with the new corpus instead.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from http.client import responses as _HTTP_REASONS
from urllib.parse import parse_qs, urlparse

from repro.data.corpus import Corpus
from repro.data.instances import build_instance
from repro.serve.admission import AdmissionController, Overloaded, request_cost
from repro.serve.cluster.hints import HintOverflow, HintQueue
from repro.serve.cluster.proto import (
    FrameError,
    read_frame_async,
    write_frame_async,
)
from repro.serve.cluster.ring import HashRing, PartitionPlan
from repro.serve.engine import InvalidRequest
from repro.serve.http import BadRequest, encode_json, parse_request
from repro.serve.metrics import MetricsRegistry
from repro.serve.store import UnviableTargetError
from repro.serve.wal import WriteAheadLog, review_from_record
from repro.serve.jitter import NO_JITTER, RetryJitter

#: Upper bound on a forwarded request's wait for its shard when the
#: client sent no deadline; with a deadline the wait is deadline + margin.
DEFAULT_SHARD_TIMEOUT = 120.0
_SHARD_TIMEOUT_MARGIN = 5.0

_MAX_HEADER_LINES = 100
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Stripe count for the per-product ingest ordering locks.  Two
#: products hashing to the same stripe serialise their deltas — a
#: concurrency cost only, never a correctness one.
_INGEST_STRIPES = 32

_DIVERGENCE_HELP = (
    "replica groups observed (or at risk of) holding different review "
    "sets for a product"
)


class ShardUnavailable(RuntimeError):
    """The owning shard cannot be reached (crashed, restarting, hung)."""

    def __init__(self, shard: int, detail: str) -> None:
        super().__init__(
            f"shard {shard} is unavailable ({detail}); retry shortly"
        )
        self.shard = shard


class _HTTPError(Exception):
    """Short-circuit to an error response while parsing/dispatching."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.extra = extra


class ShardClient:
    """A pooled framed-protocol client for one shard.

    At most ``pool_size`` requests are in flight to the shard at once;
    excess requests queue on the pool (they are already inside the
    global admission window, so the queue is bounded).  Connections are
    opened lazily and re-opened on demand, which is what lets a
    supervisor-restarted shard — same port, new process — come back
    without any gateway reconfiguration: the first request after the
    restart just dials again, with seeded :class:`RetryJitter` backoff
    between dial attempts so a reconnect herd after a restart spreads
    out (deterministically under a fixed seed).
    """

    def __init__(
        self,
        shard: int,
        host: str,
        port_fn,
        *,
        pool_size: int = 8,
        connect_timeout: float = 2.0,
        jitter: RetryJitter | None = None,
        connect_retries: int = 2,
        reconnect_base: float = 0.05,
    ) -> None:
        self.shard = shard
        self.host = host
        self._port_fn = port_fn
        self.connect_timeout = connect_timeout
        self.jitter = jitter or NO_JITTER
        self.connect_retries = connect_retries
        self.reconnect_base = reconnect_base
        self._slots: asyncio.Queue = asyncio.Queue()
        for _ in range(pool_size):
            self._slots.put_nowait(None)

    async def _dial(self):
        """Open a connection, retrying with jittered exponential backoff.

        Only connection *establishment* is retried.  A request that
        failed mid-exchange is never resent from here — ingest is not
        idempotent at this layer, and the preference-list failover above
        owns read retries.
        """
        last: Exception | None = None
        for attempt in range(self.connect_retries + 1):
            if attempt:
                await asyncio.sleep(
                    self.jitter.apply(
                        self.reconnect_base * (2 ** (attempt - 1))
                    )
                )
            port = self._port_fn()
            if port is None:
                last = ShardUnavailable(self.shard, "not yet bound")
                continue
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(self.host, port),
                    self.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                last = exc
        if isinstance(last, ShardUnavailable):
            raise last
        detail = type(last).__name__ if not str(last) else str(last)
        raise ShardUnavailable(self.shard, detail) from last

    async def request(self, message: dict, timeout: float | None = None) -> dict:
        """One framed round-trip; raises :class:`ShardUnavailable` on failure.

        A failed connection is never returned to the pool (a torn or
        timed-out exchange leaves the stream desynchronised); its slot
        goes back empty so the next request dials fresh.
        """
        conn = await self._slots.get()
        try:
            if conn is None:
                conn = await self._dial()
            reader, writer = conn
            await write_frame_async(writer, message)
            reply = await asyncio.wait_for(
                read_frame_async(reader),
                timeout if timeout is not None else DEFAULT_SHARD_TIMEOUT,
            )
        except ShardUnavailable:
            self._slots.put_nowait(None)
            raise
        except (OSError, FrameError, asyncio.TimeoutError, EOFError) as exc:
            if conn is not None:
                conn[1].close()
            self._slots.put_nowait(None)
            detail = type(exc).__name__ if not str(exc) else str(exc)
            raise ShardUnavailable(self.shard, detail) from exc
        else:
            self._slots.put_nowait(conn)
            return reply

    async def aclose(self) -> None:
        """Close every pooled connection (drains the pool non-blockingly)."""
        while True:
            try:
                conn = self._slots.get_nowait()
            except asyncio.QueueEmpty:
                return
            if conn is not None:
                conn[1].close()


@dataclass(frozen=True)
class Topology:
    """One immutable routing epoch: generation token + ring/plan/clients.

    Every request captures the current topology exactly once and routes
    against that snapshot for its whole lifetime, so a concurrent resize
    can never hand one request two epochs.  The no-wrong-shard-answer
    guarantee during a live resize is this immutability plus the fact
    that :meth:`ClusterGateway.swap_topology` runs on the gateway's
    event loop — a single reference assignment between requests.
    """

    generation: int
    ring: HashRing
    plan: PartitionPlan
    clients: tuple[ShardClient, ...]


def _annotate_failover(reply: dict, shard: int) -> dict:
    """Stamp failover provenance into a 200 reply served by a replica.

    The result block is untouched (byte-identity holds); only the
    provenance — already process-specific — records which replica
    answered and that it was not the primary.
    """
    if reply.get("status") != 200:
        return reply
    payload = reply.get("payload")
    if not isinstance(payload, dict):
        return reply
    provenance = payload.get("provenance")
    if not isinstance(provenance, dict):
        provenance = {}
    payload = {
        **payload,
        "provenance": {
            **provenance,
            "served_by": f"shard-{shard}",
            "failover": True,
        },
    }
    return {**reply, "payload": payload}


class ClusterGateway:
    """Routing, admission, fan-out, and aggregation over shard clients.

    Pure asyncio — no threads of its own; the cluster controller decides
    which event loop it runs on.  ``restart_total`` is a zero-arg
    callable summing supervisor restarts (exposed as the
    ``repro_shard_restart_total`` gauge).

    Replication plumbing is optional so the gateway still runs bare in
    unit tests: with ``hints``/``journal`` left ``None`` an unreachable
    holder fails the ingest with 503 exactly as before, and no delta
    journal is kept (which also means the cluster cannot live-resize).
    ``hints`` does require ``journal``, though: a hint carries the
    journal's ``delta_seq`` for idempotent replay, so queueing hints
    without journalling would strip that and lose resize replay.
    ``shard_alive`` is a ``shard -> bool`` callable (the controller
    wires it to the supervisors) gating hint drain to recovered shards.
    """

    def __init__(
        self,
        corpus: Corpus,
        plan: PartitionPlan,
        ring: HashRing,
        clients: list[ShardClient],
        *,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        jitter: RetryJitter | None = None,
        restart_total=None,
        hints: HintQueue | None = None,
        journal: WriteAheadLog | None = None,
        shard_alive=None,
        hint_drain_interval: float = 0.25,
    ) -> None:
        if len(clients) != plan.shards:
            raise ValueError(
                f"plan has {plan.shards} shards but {len(clients)} clients given"
            )
        if hints is not None and journal is None:
            raise ValueError(
                "hints require a journal: every hinted delta carries the "
                "journal's delta_seq so replay stays idempotent and "
                "resizes can re-stream it"
            )
        self.corpus = corpus
        self._topology = Topology(1, ring, plan, tuple(clients))
        self.hints = hints
        self.journal = journal
        self.shard_alive = shard_alive
        self.hint_drain_interval = hint_drain_interval
        self._drain_task: asyncio.Task | None = None
        self._ingest_stalled = False
        self._stall_reason = "resizing"
        # In-flight ingest accounting: stall_ingest_and_drain() waits on
        # the idle event so a resize's catch-up replay never races an
        # admitted ingest's journal append.
        self._ingest_inflight = 0
        self._ingest_idle = asyncio.Event()
        self._ingest_idle.set()
        # Per-product ordering locks (striped): held across sequence
        # assignment, fan-out, hinting, and the journal append so every
        # replica — and the journal — sees same-product deltas in one
        # order.
        self._ingest_stripes = tuple(
            asyncio.Lock() for _ in range(_INGEST_STRIPES)
        )
        # The delta-sequence counter resumes past everything already
        # journalled or hinted, so a gateway restart can never reissue a
        # sequence number (idempotence on the workers depends on that).
        seq = 0
        if journal is not None:
            for _, record in journal.replay(0):
                raw = record.get("delta_seq", 0)
                if isinstance(raw, int):
                    seq = max(seq, raw)
        if hints is not None:
            seq = max(seq, hints.max_delta_seq())
        self._delta_seq = seq
        self.jitter = jitter or NO_JITTER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_pending=256, jitter=self.jitter)
        )
        self.started_at = time.monotonic()
        self._reviews = len(corpus.reviews)
        # target=None resolution is memoised per (max_comparisons,
        # min_reviews): the answer only changes with the corpus, and the
        # cluster's corpus is fixed for the process lifetime (a resize
        # repartitions the same corpus, so the memo stays valid).
        self._default_targets: dict[tuple[int | None, int], str] = {}
        self.metrics.gauge(
            "repro_gateway_queue_depth",
            lambda: self.admission.inflight,
            "requests currently admitted into the gateway",
        )
        self.metrics.gauge(
            "repro_shard_restart_total",
            restart_total if restart_total is not None else (lambda: 0),
            "supervisor restarts summed across shard workers",
        )
        self.metrics.gauge(
            "repro_cluster_shards",
            lambda: self._topology.plan.shards,
            "shard workers behind this gateway",
        )
        self.metrics.gauge(
            "repro_cluster_replicas",
            lambda: self._topology.plan.replicas,
            "replication factor of the current partition plan",
        )
        self.metrics.gauge(
            "repro_ring_generation",
            lambda: self._topology.generation,
            "monotonic topology epoch; bumps on every live resize",
        )
        self.metrics.gauge(
            "repro_hint_queue_depth",
            lambda: self.hints.total() if self.hints is not None else 0,
            "ingest deltas queued for unreachable shards",
        )

    # -- topology ------------------------------------------------------------

    @property
    def plan(self) -> PartitionPlan:
        return self._topology.plan

    @property
    def ring(self) -> HashRing:
        return self._topology.ring

    @property
    def clients(self) -> tuple[ShardClient, ...]:
        return self._topology.clients

    @property
    def generation(self) -> int:
        return self._topology.generation

    def swap_topology(
        self,
        ring: HashRing,
        plan: PartitionPlan,
        clients: list[ShardClient] | tuple[ShardClient, ...],
    ) -> int:
        """Atomically flip to a new routing epoch; returns its generation.

        Must run on the gateway's event loop (the controller uses
        ``run_coroutine_threadsafe``) so the swap is serialised with
        request dispatch.  Requests already in flight keep the snapshot
        they captured; the controller keeps the old workers alive for a
        grace period for exactly that reason.
        """
        if len(clients) != plan.shards:
            raise ValueError(
                f"plan has {plan.shards} shards but {len(clients)} clients given"
            )
        self._topology = Topology(
            self._topology.generation + 1, ring, plan, tuple(clients)
        )
        return self._topology.generation

    def set_ingest_stall(self, stalled: bool, *, reason: str = "resizing") -> None:
        """Pause (or resume) ingest during the resize catch-up window.

        Stalled ingests answer 503 + ``Retry-After`` — one of the
        statuses the resize contract allows — while reads keep flowing;
        the window only needs to cover the final journal catch-up replay
        and the topology flip.
        """
        self._ingest_stalled = stalled
        self._stall_reason = reason

    async def stall_ingest_and_drain(
        self, *, reason: str = "resizing", timeout: float = 150.0
    ) -> None:
        """Stall ingest, then wait until no ingest handler is in flight.

        The stall flag only stops *new* ingests.  A request that passed
        the stall check may still be awaiting its shard acks, and it
        appends to the journal only once the fan-out completes — which
        can be after a bare catch-up replay has finished reading.  The
        client would hold a 200 for a delta the fresh workers never
        see.  So a resize calls this instead of a bare
        :meth:`set_ingest_stall` and only runs its catch-up replay once
        the in-flight count has drained to zero.  Raises
        ``asyncio.TimeoutError`` (aborting the resize) if in-flight
        ingests do not finish within ``timeout``.
        """
        self.set_ingest_stall(True, reason=reason)
        await asyncio.wait_for(self._ingest_idle.wait(), timeout)

    # -- routing helpers -----------------------------------------------------

    def _default_target(self, max_comparisons: int | None, min_reviews: int) -> str:
        """The id :meth:`ItemStore.default_target` would pick.

        Re-implemented over the *full* corpus (no shard sees the whole
        catalogue) with identical semantics: first product in corpus
        order that forms a viable instance.
        """
        key = (max_comparisons, min_reviews)
        cached = self._default_targets.get(key)
        if cached is not None:
            return cached
        for product in self.corpus.products:
            instance = build_instance(
                self.corpus,
                product.product_id,
                max_comparisons=max_comparisons,
                min_reviews=min_reviews,
            )
            if instance is not None:
                self._default_targets[key] = product.product_id
                return product.product_id
        raise UnviableTargetError("no viable target item in the corpus")

    def _shard_timeout(self, deadline_ms: float | None) -> float:
        if deadline_ms is None:
            return DEFAULT_SHARD_TIMEOUT
        return deadline_ms / 1e3 + _SHARD_TIMEOUT_MARGIN

    async def _call_shard(
        self,
        topo: Topology,
        shard: int,
        message: dict,
        timeout: float | None = None,
    ) -> dict:
        self.metrics.counter(
            "repro_shard_requests_total",
            "requests dispatched to shard workers",
            labels={"shard": str(shard)},
        ).inc()
        try:
            return await topo.clients[shard].request(message, timeout)
        except ShardUnavailable:
            self.metrics.counter(
                "repro_shard_unavailable_total",
                "dispatches that found the shard unreachable",
                labels={"shard": str(shard)},
            ).inc()
            raise

    def _relay(self, reply: dict) -> tuple[int, object, dict[str, str] | None]:
        """Turn a shard reply frame into (status, payload, extra headers)."""
        status = reply.get("status")
        if not isinstance(status, int):
            raise ShardUnavailable(-1, "malformed shard reply")
        if status == 200:
            return 200, reply.get("payload"), None
        return self._error_response(
            status,
            str(reply.get("error", "shard error")),
            retry_after=reply.get("retry_after"),
            extra=reply.get("extra"),
        )

    def _error_response(
        self,
        status: int,
        message: str,
        *,
        retry_after: float | None = None,
        extra: dict | None = None,
    ) -> tuple[int, object, dict[str, str] | None]:
        """The single-process server's error body/headers, byte for byte."""
        self.metrics.counter(
            "repro_http_errors_total", "error responses by status",
            labels={"status": str(status)},
        ).inc()
        payload: dict[str, object] = {"error": message, "status": status}
        headers = None
        if retry_after is not None:
            headers = {"Retry-After": str(max(1, math.ceil(retry_after)))}
            payload["retry_after"] = round(retry_after, 3)
        if extra:
            payload.update(extra)
        return status, payload, headers

    # -- endpoint handlers ---------------------------------------------------

    async def _handle_query(
        self, endpoint: str, body: dict, deadline_ms: float | None
    ) -> tuple[int, object, dict[str, str] | None]:
        narrow = endpoint == "narrow"
        try:
            request = parse_request(body, narrow)
        except (BadRequest, TypeError) as exc:
            return self._error_response(400, str(exc))
        cost = request_cost(
            endpoint,
            request.m,
            k=getattr(request, "k", 0),
            stages=len(getattr(request, "stages", ())),
            reviews=self._reviews,
        )
        try:
            slot = self.admission.admit(cost)
        except Overloaded as exc:
            self.metrics.counter(
                "repro_shed_total", "requests refused by admission control",
                labels={"reason": exc.reason},
            ).inc()
            return self._error_response(
                429, str(exc), retry_after=exc.retry_after,
                extra={"reason": exc.reason},
            )
        with slot:
            topo = self._topology
            target = request.target
            try:
                if target is None:
                    target = self._default_target(
                        request.max_comparisons, request.min_reviews
                    )
                    body = {**body, "target": target}
                if target not in topo.plan.placement:
                    return self._error_response(
                        422, f"target {target!r} is not in the corpus"
                    )
            except (InvalidRequest, UnviableTargetError) as exc:
                return self._error_response(422, str(exc))
            preference = topo.plan.preference(target)
            message = {"op": "narrow" if narrow else "select", "body": body}
            if deadline_ms is not None:
                message["deadline_ms"] = deadline_ms
            # Primary first, then failover down the preference list.
            # Every listed shard holds a byte-identical instance closure
            # for the target, so a replica's answer IS the primary's.
            last_detail = "no replicas tried"
            for position, shard in enumerate(preference):
                try:
                    reply = await self._call_shard(
                        topo, shard, message, self._shard_timeout(deadline_ms)
                    )
                except ShardUnavailable as exc:
                    last_detail = str(exc)
                    continue
                if (
                    reply.get("status") == 503
                    and position + 1 < len(preference)
                ):
                    # The shard answered but cannot serve (draining or
                    # mid-recovery): same failover as an unreachable one.
                    last_detail = str(reply.get("error", "shard answered 503"))
                    continue
                if position:
                    self.metrics.counter(
                        "repro_failover_total",
                        "reads served by a non-primary replica",
                        labels={
                            "primary": str(preference[0]),
                            "served_by": str(shard),
                        },
                    ).inc()
                    reply = _annotate_failover(reply, shard)
                return self._relay(reply)
            return self._error_response(
                503, last_detail, retry_after=self.jitter.apply(1.0),
                extra={
                    "reason": "shard_unavailable",
                    "shard": preference[0],
                    "replicas_tried": len(preference),
                },
            )

    def _relay_ingest_failure(
        self,
        results: list[tuple[int, dict]],
        failures: list[tuple[int, dict]],
    ) -> tuple[int, object, dict[str, str] | None]:
        """Today's partial-failure relay: the most retryable failure wins.

        5xx (client should retry the whole batch; shard-level dedup
        makes the retry safe) over 409 over 400.  Partial application is
        possible and surfaced per shard so operators can reconcile.
        """
        shard, reply = max(failures, key=lambda item: item[1].get("status", 0))
        status, payload, headers = self._error_response(
            reply.get("status", 503),
            str(reply.get("error", "shard error")),
            retry_after=reply.get("retry_after"),
            extra=reply.get("extra"),
        )
        if isinstance(payload, dict):
            payload["shards"] = {str(s): r.get("status") for s, r in results}
        return status, payload, headers

    async def _handle_ingest(
        self, body: dict
    ) -> tuple[int, object, dict[str, str] | None]:
        if self._ingest_stalled:
            return self._error_response(
                503,
                "ingest is paused while the ring resizes; retry shortly",
                retry_after=self.jitter.apply(0.5),
                extra={"reason": self._stall_reason},
            )
        # Counted before the first await: stall_ingest_and_drain() waits
        # for this to reach zero, so every ingest that beat the stall
        # check finishes its journal append before the resize's catch-up
        # replay reads the journal.
        self._ingest_inflight += 1
        self._ingest_idle.clear()
        try:
            return await self._ingest_admitted(body)
        finally:
            self._ingest_inflight -= 1
            if not self._ingest_inflight:
                self._ingest_idle.set()

    async def _ingest_admitted(
        self, body: dict
    ) -> tuple[int, object, dict[str, str] | None]:
        unknown = sorted(set(body) - {"reviews"})
        if unknown:
            return self._error_response(400, f"unknown fields: {unknown}")
        reviews = body.get("reviews")
        if not isinstance(reviews, list) or not reviews:
            return self._error_response(
                400,
                "field 'reviews' (a non-empty list of review objects) "
                "is required",
            )
        if not all(isinstance(entry, dict) for entry in reviews):
            return self._error_response(
                400, "every entry in 'reviews' must be an object"
            )
        # Mirror the store's validation order — parse every record, then
        # reject unknown products and in-batch duplicates on the first
        # offender — so the gateway 400s/409s read exactly like the
        # single-process server's.  Existing-id conflicts can only be
        # seen by the shards; their 409 is relayed below.
        try:
            parsed = [review_from_record(record) for record in reviews]
        except ValueError as exc:
            return self._error_response(400, str(exc))
        topo = self._topology
        groups: dict[int, list[dict]] = {}
        seen: set[str] = set()
        for review, record in zip(parsed, reviews):
            if review.product_id not in topo.plan.placement:
                return self._error_response(
                    400,
                    f"review {review.review_id!r} references unknown "
                    f"product {review.product_id!r}",
                )
            if review.review_id in seen:
                return self._error_response(
                    409, f"duplicate review id {review.review_id!r}"
                )
            seen.add(review.review_id)
            for shard in topo.plan.holders(review.product_id):
                groups.setdefault(shard, []).append(record)

        # Review order is order-sensitive for instance construction, so
        # two replicas applying the same pair of same-product deltas in
        # opposite orders diverge byte-wise with no data lost.  The
        # product's stripe lock is held across sequence assignment,
        # fan-out, hinting, and the journal append, so every replica —
        # and the journal's replay stream — observes same-product deltas
        # in ``delta_seq`` order.  Stripes are acquired in index order,
        # so overlapping deltas cannot deadlock.
        stripes = sorted(
            {
                hash(review.product_id) % len(self._ingest_stripes)
                for review in parsed
            }
        )
        held: list[asyncio.Lock] = []
        try:
            for index in stripes:
                lock = self._ingest_stripes[index]
                await lock.acquire()
                held.append(lock)
            return await self._ingest_fanout(topo, parsed, reviews, groups)
        finally:
            for lock in reversed(held):
                lock.release()

    async def _ingest_fanout(
        self,
        topo: Topology,
        parsed: list,
        reviews: list[dict],
        groups: dict[int, list[dict]],
    ) -> tuple[int, object, dict[str, str] | None]:
        delta_seq: int | None = None
        if self.journal is not None:
            self._delta_seq += 1
            delta_seq = self._delta_seq

        # A shard with undelivered hints must not take this delta live:
        # the queued deltas precede it, and applying the new one first
        # would reorder that replica alone.  Queueing behind the backlog
        # preserves per-shard apply order (the drain delivers in queue
        # order, and the worker's seq ledger no-ops any overlap).
        backlogged: set[int] = set()
        if self.hints is not None:
            backlogged = {
                shard for shard in groups if self.hints.depth(shard)
            }

        async def _one(shard: int, records: list[dict]):
            if shard in backlogged:
                return shard, {
                    "status": 503,
                    "error": (
                        f"shard {shard} has undelivered hints queued "
                        "ahead of this delta"
                    ),
                    "retry_after": self.jitter.apply(1.0),
                    "extra": {"reason": "hint_backlog", "shard": shard},
                    "unreachable": True,
                }
            message: dict[str, object] = {"op": "ingest", "reviews": records}
            if delta_seq is not None:
                message["delta_seq"] = delta_seq
            try:
                return shard, await self._call_shard(topo, shard, message)
            except ShardUnavailable as exc:
                return shard, {
                    "status": 503,
                    "error": str(exc),
                    "retry_after": self.jitter.apply(1.0),
                    "extra": {"reason": "shard_unavailable", "shard": shard},
                    "unreachable": True,
                }

        results = await asyncio.gather(
            *(_one(shard, records) for shard, records in sorted(groups.items()))
        )
        acked = {s for s, r in results if r.get("status") == 200}
        hard = [
            (s, r)
            for s, r in results
            if r.get("status") != 200 and not r.get("unreachable")
        ]
        down = [(s, r) for s, r in results if r.get("unreachable")]
        if hard or (down and self.hints is None):
            # A shard-level rejection (400/409/...) or an unreachable
            # holder with no hint queue configured: relay exactly as the
            # unreplicated gateway did.
            return self._relay_ingest_failure(results, hard + down)
        hinted: list[int] = []
        if down:
            # Durability rule: every product must have reached at least
            # one *preference* replica live — a hint plus the journal
            # make the delta durable, but a product none of whose
            # authoritative replicas applied it would be unreadable
            # until a drain, so the client should retry instead.
            for review in parsed:
                if not set(topo.plan.preference(review.product_id)) & acked:
                    return self._relay_ingest_failure(results, down)
            assert delta_seq is not None  # hints imply a journal
            try:
                # All-or-nothing across the down shards: a delta only
                # partially queued before an overflow would later drain
                # to some replicas although the client saw the write
                # fail — guaranteed divergence.
                self.hints.add_all(
                    {shard: groups[shard] for shard, _reply in down},
                    delta_seq,
                )
            except HintOverflow as exc:
                return self._error_response(
                    503, str(exc), retry_after=self.jitter.apply(2.0),
                    extra={"reason": "hint_overflow", "shard": exc.shard},
                )
            for shard, _reply in down:
                self.metrics.counter(
                    "repro_hints_queued_total",
                    "ingest deltas queued as hints for unreachable shards",
                    labels={"shard": str(shard)},
                ).inc()
                hinted.append(shard)
        if self.journal is not None:
            # Journal-then-ack: the journal is the resize replay stream,
            # so only deltas the client saw acknowledged may appear in
            # it — and every acknowledged delta must.
            self.journal.append(
                {"kind": "delta", "reviews": list(reviews),
                 "delta_seq": delta_seq}
            )
        affected: set[str] = set()
        acks: dict[str, object] = {}
        for shard, reply in results:
            if reply.get("unreachable"):
                acks[str(shard)] = {"hinted": True}
                continue
            ack = reply.get("payload") or {}
            acks[str(shard)] = ack
            affected.update(ack.get("affected", ()))
        payload: dict[str, object] = {
            "added": len(parsed),
            "affected": sorted(affected),
            "shards": acks,
        }
        if delta_seq is not None:
            payload["delta_seq"] = delta_seq
        if hinted:
            payload["hinted"] = sorted(hinted)
        return 200, payload, None

    # -- hinted handoff ------------------------------------------------------

    async def drain_hints(self) -> dict[int, int]:
        """One drain pass: replay pending hints to recovered shards.

        Returns ``{shard: hints delivered}``.  A 200 (applied, or the
        worker's idempotent no-op) and a 409 (the review landed through
        another path — the batch-atomic conflict backstop) both count as
        delivered; a retryable refusal (429/503/unreachable) leaves the
        queue intact for the next pass; anything else drops the hint and
        counts ``repro_replica_divergence_total``, because that replica
        can no longer converge through this queue.
        """
        if self.hints is None:
            return {}
        topo = self._topology
        drained: dict[int, int] = {}
        for shard in self.hints.shards_with_hints():
            if shard >= len(topo.clients):
                continue  # left the ring; the controller drops its queue
            if self.shard_alive is not None and not self.shard_alive(shard):
                continue
            delivered = 0
            upto = 0
            for seq, payload in self.hints.pending(shard):
                message: dict[str, object] = {
                    "op": "ingest",
                    "reviews": payload.get("reviews", []),
                    "hinted": True,
                }
                if isinstance(payload.get("delta_seq"), int):
                    message["delta_seq"] = payload["delta_seq"]
                try:
                    reply = await self._call_shard(topo, shard, message)
                except ShardUnavailable:
                    break
                status = reply.get("status")
                if status in (200, 409):
                    upto = seq
                    delivered += 1
                elif status in (429, 503):
                    break
                else:
                    upto = seq
                    self.metrics.counter(
                        "repro_replica_divergence_total", _DIVERGENCE_HELP
                    ).inc()
            if upto:
                self.hints.mark_delivered(shard, upto)
            if delivered:
                drained[shard] = delivered
                self.metrics.counter(
                    "repro_hints_replayed_total",
                    "hinted deltas delivered to recovered shards",
                    labels={"shard": str(shard)},
                ).inc(delivered)
        return drained

    async def replay_journal(
        self,
        plan: PartitionPlan,
        clients,
        targets: set[int],
        after_seq: int = 0,
    ) -> int:
        """Stream journalled deltas into the ``targets`` shards of a new epoch.

        This is the resize's "WAL tail": a fresh worker boots from the
        new plan's sub-corpus (the snapshot) and this replay applies, in
        original ack order, every delta the cluster acknowledged since —
        routed with the *new* ``plan`` and sent only to ``targets`` (the
        shards being built; live shards already hold everything).
        Frames are marked ``hinted`` with their original ``delta_seq``
        so a re-run or an overlap with a hint drain is a no-op.  Returns
        the last journal sequence replayed; a second call with that as
        ``after_seq`` is the catch-up pass under the ingest stall.
        Raises :class:`ShardUnavailable` or ``RuntimeError`` if a target
        cannot apply a delta — the caller aborts the resize and keeps
        the old topology.
        """
        if self.journal is None:
            return after_seq
        last = after_seq
        for seq, record in self.journal.replay(after_seq):
            last = seq
            reviews = record.get("reviews") or []
            delta_seq = record.get("delta_seq")
            groups: dict[int, list[dict]] = {}
            for entry in reviews:
                pid = entry.get("product_id")
                for shard in plan.placement.get(pid, ()):
                    if shard in targets:
                        groups.setdefault(shard, []).append(entry)
            for shard, records in sorted(groups.items()):
                message: dict[str, object] = {
                    "op": "ingest", "reviews": records, "hinted": True,
                }
                if isinstance(delta_seq, int):
                    message["delta_seq"] = delta_seq
                reply = await clients[shard].request(message)
                if reply.get("status") not in (200, 409):
                    raise RuntimeError(
                        f"journal replay of delta_seq={delta_seq} to shard "
                        f"{shard} failed: {reply.get('error', reply)}"
                    )
        return last

    async def _drain_hints_forever(self) -> None:
        while True:
            await asyncio.sleep(self.hint_drain_interval)
            try:
                await self.drain_hints()
            except Exception:  # pragma: no cover - backstop
                pass  # the drain loop must outlive any one bad pass

    async def check_replicas(self, product_id: str) -> dict:
        """Read-repair-style probe: do the replicas agree on a product?

        Asks every shard in the product's preference list for its
        review-id list and compares.  Divergence among the *reachable*
        replicas increments ``repro_replica_divergence_total`` — the
        counter the convergence tests assert stays at zero after a
        kill/drain cycle.
        """
        topo = self._topology
        preference = topo.plan.preference(product_id)
        states: dict[str, object] = {}
        live: list[tuple] = []
        for shard in preference:
            try:
                reply = await self._call_shard(
                    topo,
                    shard,
                    {"op": "product_state", "product_id": product_id},
                    timeout=5.0,
                )
            except ShardUnavailable:
                states[str(shard)] = None
                continue
            if reply.get("status") != 200:
                states[str(shard)] = None
                continue
            ids = (reply.get("payload") or {}).get("review_ids") or []
            states[str(shard)] = ids
            live.append(tuple(ids))
        diverged = len(set(live)) > 1
        if diverged:
            self.metrics.counter(
                "repro_replica_divergence_total", _DIVERGENCE_HELP
            ).inc()
        return {
            "product_id": product_id,
            "replicas": states,
            "diverged": diverged,
        }

    # -- aggregations --------------------------------------------------------

    async def _handle_snapshot(self) -> tuple[int, object, dict[str, str] | None]:
        topo = self._topology

        async def _one(shard: int):
            try:
                return shard, await self._call_shard(
                    topo, shard, {"op": "snapshot"}
                )
            except ShardUnavailable as exc:
                return shard, {"status": 503, "error": str(exc)}

        results = await asyncio.gather(
            *(_one(shard) for shard in range(topo.plan.shards))
        )
        failures = [(s, r) for s, r in results if r.get("status") != 200]
        if failures:
            shard, reply = failures[0]
            return self._error_response(
                reply.get("status", 503),
                str(reply.get("error", "shard error")),
                extra={"shard": shard},
            )
        return (
            200,
            {"shards": {str(s): r.get("payload") for s, r in results}},
            None,
        )

    async def _handle_healthz(self) -> tuple[int, object, dict[str, str] | None]:
        topo = self._topology

        async def _one(shard: int):
            try:
                reply = await self._call_shard(
                    topo, shard, {"op": "healthz"}, timeout=5.0
                )
            except ShardUnavailable as exc:
                return shard, {"status": "down", "error": str(exc)}
            payload = reply.get("payload") or {}
            if reply.get("status") != 200 and "status" not in payload:
                payload = {"status": "down", "error": reply.get("error")}
            return shard, payload

        results = await asyncio.gather(
            *(_one(shard) for shard in range(topo.plan.shards))
        )
        shards = {str(shard): view for shard, view in results}
        all_ok = all(view.get("status") == "ok" for view in shards.values())
        payload = {
            # The gateway is alive either way; "degraded" names the state
            # where at least one shard is down/draining and its targets
            # answer from replicas (or 503 at replicas=1) while the rest
            # keep serving.
            "status": "ok" if all_ok else "degraded",
            "ring": topo.ring.describe(),
            "generation": topo.generation,
            "replicas": topo.plan.replicas,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "inflight": self.admission.inflight,
            "shards": shards,
        }
        if self.hints is not None:
            payload["hints"] = {
                str(shard): self.hints.depth(shard)
                for shard in self.hints.shards_with_hints()
            }
        return 200, payload, None

    async def _handle_metrics(
        self, prometheus: bool
    ) -> tuple[int, object, dict[str, str] | None]:
        topo = self._topology

        async def _one(shard: int):
            try:
                reply = await self._call_shard(
                    topo, shard, {"op": "metrics"}, timeout=5.0
                )
            except ShardUnavailable as exc:
                return shard, {"status": 503, "error": str(exc)}
            return shard, reply

        results = await asyncio.gather(
            *(_one(shard) for shard in range(topo.plan.shards))
        )
        if prometheus:
            blocks = [self.metrics.render_prometheus()]
            for shard, reply in results:
                if reply.get("status") == 200:
                    text = (reply.get("payload") or {}).get("prometheus", "")
                    blocks.append(f"# ---- shard {shard} ----\n{text}")
                else:
                    blocks.append(f"# ---- shard {shard} unavailable ----\n")
            return 200, "".join(blocks).encode(), None
        shard_views: dict[str, object] = {}
        for shard, reply in results:
            if reply.get("status") == 200:
                shard_views[str(shard)] = (reply.get("payload") or {}).get("json")
            else:
                shard_views[str(shard)] = {"error": reply.get("error")}
        return 200, {"gateway": self.metrics.as_dict(), "shards": shard_views}, None

    # -- HTTP plumbing -------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body_bytes: bytes
    ) -> tuple[int, object, dict[str, str] | None, str]:
        """Returns (status, payload, extra headers, content type)."""
        url = urlparse(path)
        if method == "GET":
            if url.path == "/healthz":
                status, payload, extra = await self._handle_healthz()
                return status, payload, extra, "application/json"
            if url.path == "/metrics":
                query = parse_qs(url.query)
                wants_text = (
                    query.get("format", [""])[0] == "prometheus"
                    or "text/plain" in headers.get("accept", "")
                )
                status, payload, extra = await self._handle_metrics(wants_text)
                content = (
                    "text/plain; version=0.0.4" if wants_text
                    else "application/json"
                )
                return status, payload, extra, content
            if url.path in (
                "/v1/select", "/v1/narrow", "/v1/reload", "/v1/ingest",
                "/v1/snapshot",
            ):
                status, payload, extra = self._error_response(
                    405, f"{url.path} requires POST"
                )
                return status, payload, extra, "application/json"
            status, payload, extra = self._error_response(
                404, f"unknown endpoint {url.path!r}"
            )
            return status, payload, extra, "application/json"
        if method != "POST":
            status, payload, extra = self._error_response(
                405, f"method {method} is not supported"
            )
            return status, payload, extra, "application/json"
        if url.path in ("/healthz", "/metrics"):
            status, payload, extra = self._error_response(
                405, f"{url.path} requires GET"
            )
            return status, payload, extra, "application/json"
        if url.path == "/v1/reload":
            status, payload, extra = self._error_response(
                501,
                "corpus reload is not supported in cluster mode; restart "
                "the cluster with the new corpus (the partition depends "
                "on it)",
            )
            return status, payload, extra, "application/json"
        if url.path not in ("/v1/select", "/v1/narrow", "/v1/ingest", "/v1/snapshot"):
            status, payload, extra = self._error_response(
                404, f"unknown endpoint {url.path!r}"
            )
            return status, payload, extra, "application/json"
        try:
            deadline_ms = _parse_deadline(headers)
            body = _parse_body(body_bytes)
        except _HTTPError as exc:
            status, payload, extra = self._error_response(
                exc.status, str(exc), retry_after=exc.retry_after, extra=exc.extra
            )
            return status, payload, extra, "application/json"
        if url.path == "/v1/ingest":
            status, payload, extra = await self._handle_ingest(body)
        elif url.path == "/v1/snapshot":
            status, payload, extra = await self._handle_snapshot()
        else:
            endpoint = "narrow" if url.path == "/v1/narrow" else "select"
            status, payload, extra = await self._handle_query(
                endpoint, body, deadline_ms
            )
        return status, payload, extra, "application/json"

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: HTTP/1.1 with keep-alive."""
        try:
            while True:
                parsed = await _read_http_request(reader)
                if parsed is None:
                    break
                method, path, headers, body_bytes, close = parsed
                try:
                    status, payload, extra, content = await self._dispatch(
                        method, path, headers, body_bytes
                    )
                except Exception as exc:  # pragma: no cover - backstop
                    status, payload, extra = self._error_response(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                    content = "application/json"
                body = payload if isinstance(payload, bytes) else encode_json(payload)
                reason = _HTTP_REASONS.get(status, "Unknown")
                head = [
                    f"HTTP/1.1 {status} {reason}",
                    f"Content-Type: {content}",
                    f"Content-Length: {len(body)}",
                    f"Connection: {'close' if close else 'keep-alive'}",
                ]
                for name, value in (extra or {}).items():
                    head.append(f"{name}: {value}")
                writer.write(
                    ("\r\n".join(head) + "\r\n\r\n").encode() + body
                )
                await writer.drain()
                if close:
                    break
        except (_HTTPError, ConnectionError, asyncio.IncompleteReadError):
            pass  # malformed or torn connection: just drop it
        except OSError:
            pass
        finally:
            writer.close()

    async def start(self, host: str, port: int) -> asyncio.base_events.Server:
        """Bind and start serving; read the bound port off the result."""
        server = await asyncio.start_server(self.handle_connection, host, port)
        if self.hints is not None and self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain_hints_forever()
            )
        return server

    async def aclose(self) -> None:
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        for client in self._topology.clients:
            await client.aclose()


def _parse_deadline(headers: dict[str, str]) -> float | None:
    raw = headers.get("x-deadline-ms")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise _HTTPError(
            400, f"X-Deadline-Ms must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise _HTTPError(400, f"X-Deadline-Ms must be positive, got {raw!r}")
    return value


def _parse_body(body_bytes: bytes) -> dict:
    try:
        body = json.loads(body_bytes or b"{}")
    except json.JSONDecodeError as exc:
        raise _HTTPError(400, f"invalid JSON body: {exc}") from None
    if not isinstance(body, dict):
        raise _HTTPError(400, "request body must be a JSON object")
    return body


async def _read_http_request(
    reader: asyncio.StreamReader,
):
    """Parse one request; ``None`` on a clean EOF before a request line.

    Returns ``(method, path, lowercase headers, body bytes, close)``.
    Raises on malformed framing — the caller drops the connection, which
    is the only safe answer when the byte stream cannot be trusted.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise _HTTPError(400, f"malformed request line: {line!r}")
    method, path, version = parts
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _HTTPError(431, "too many header lines")
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise _HTTPError(400, f"invalid Content-Length: {length_raw!r}") from None
    if not 0 <= length <= _MAX_BODY_BYTES:
        raise _HTTPError(413, f"body of {length} bytes is not acceptable")
    body = await reader.readexactly(length) if length else b""
    close = (
        headers.get("connection", "").lower() == "close"
        or version.upper() == "HTTP/1.0"
    )
    return method, path, headers, body, close
