"""Hinted handoff: a bounded, WAL-persisted hint queue per dead shard.

When the gateway fans a review delta to a replica group and one member
is unreachable, failing the whole write would make every shard crash an
ingest outage — the opposite of what replication buys.  Instead the
gateway *hints*: the missed delta is appended to a per-shard durable
queue (fsync-before-ack, the same discipline as the shards' own WALs)
and replayed once the supervisor brings the shard back.  The shard-side
``delta_seq`` idempotence check (see :mod:`repro.serve.cluster.worker`)
makes replay safe even when the delta also reached the shard through a
live write or an earlier partial drain.

Design points:

* **one :class:`~repro.serve.wal.WriteAheadLog` per shard** under
  ``<root>/hints-shard-{i}.wal`` — reusing the PR-6 log gives torn-tail
  healing and atomic compaction for free, and a gateway restart
  recovers every undelivered hint from disk;
* **bounded** — at most ``max_per_shard`` pending hints per shard;
  beyond that :class:`HintOverflow` is raised and the gateway converts
  it to a retryable 503, because an unbounded queue for a shard that
  never comes back is a disk-filling liability, not durability;
* **delivery is compaction** — :meth:`mark_delivered` drops everything
  at or below the acknowledged sequence, so the queue's disk footprint
  tracks the undelivered backlog only.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path

from repro.serve.wal import WriteAheadLog

_HINT_FILE = re.compile(r"hints-shard-(\d+)\.wal$")


class HintOverflow(RuntimeError):
    """The per-shard hint queue is full; the delta cannot be guaranteed."""

    def __init__(self, shard: int, limit: int) -> None:
        super().__init__(
            f"hint queue for shard {shard} is full ({limit} pending); "
            "retry once the shard recovers or the backlog drains"
        )
        self.shard = shard


class HintQueue:
    """Per-shard durable queues of deltas owed to unreachable shards."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_per_shard: int = 512,
        fsync: bool = True,
    ) -> None:
        if max_per_shard < 1:
            raise ValueError(
                f"max_per_shard must be >= 1, got {max_per_shard}"
            )
        self.root = Path(root)
        self.max_per_shard = max_per_shard
        self.fsync = fsync
        self._lock = threading.Lock()
        self._logs: dict[int, WriteAheadLog] = {}
        self._recover()

    def _recover(self) -> None:
        """Reopen every hint log left behind by a previous gateway."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.iterdir()):
            match = _HINT_FILE.search(path.name)
            if match:
                shard = int(match.group(1))
                self._logs[shard] = WriteAheadLog(path, fsync=self.fsync)

    def _log(self, shard: int) -> WriteAheadLog:
        log = self._logs.get(shard)
        if log is None:
            log = WriteAheadLog(
                self.root / f"hints-shard-{shard}.wal", fsync=self.fsync
            )
            self._logs[shard] = log
        return log

    # -- write path ----------------------------------------------------------

    def add(self, shard: int, records: list[dict], delta_seq: int) -> int:
        """Durably queue one missed delta for ``shard``.

        The hint is fsynced before this returns — that is what lets the
        gateway acknowledge the client's write with the replica still
        down.  Returns the hint's queue sequence number.  Raises
        :class:`HintOverflow` at the bound *before* writing anything.
        """
        return self.add_all({shard: records}, delta_seq)[shard]

    def add_all(
        self, deltas: dict[int, list[dict]], delta_seq: int
    ) -> dict[int, int]:
        """Queue one delta's hints for several shards, all or nothing.

        A single client-visible delta can miss more than one replica at
        once, and its hints must land atomically: a delta queued for
        some of its down shards before :class:`HintOverflow` fired for
        another would later drain to those replicas even though the
        client was told the write failed — and, absent from the
        journal, it would never reach resize-built workers, so the
        replica groups would diverge permanently.  Capacity is checked
        for every shard *before* anything is written, so an overflow
        leaves every queue untouched.  Returns ``{shard: queue seq}``.
        """
        with self._lock:
            logs: dict[int, WriteAheadLog] = {}
            for shard in sorted(deltas):
                log = self._log(shard)
                if len(log) >= self.max_per_shard:
                    raise HintOverflow(shard, self.max_per_shard)
                logs[shard] = log
            return {
                shard: log.append(
                    {
                        "kind": "hint",
                        "reviews": deltas[shard],
                        "delta_seq": delta_seq,
                    }
                )
                for shard, log in logs.items()
            }

    # -- read / drain path ---------------------------------------------------

    def pending(self, shard: int) -> list[tuple[int, dict]]:
        """Undelivered hints for ``shard``, oldest first."""
        with self._lock:
            log = self._logs.get(shard)
            if log is None:
                return []
            return list(log.replay(0))

    def depth(self, shard: int) -> int:
        with self._lock:
            log = self._logs.get(shard)
            return len(log) if log is not None else 0

    def total(self) -> int:
        """Pending hints across every shard (the queue-depth gauge)."""
        with self._lock:
            return sum(len(log) for log in self._logs.values())

    def shards_with_hints(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(
                sorted(s for s, log in self._logs.items() if len(log))
            )

    def mark_delivered(self, shard: int, upto_seq: int) -> int:
        """Drop hints with ``seq <= upto_seq`` (now applied by the shard)."""
        with self._lock:
            log = self._logs.get(shard)
            if log is None:
                return 0
            return log.compact(upto_seq)

    def drop_shard(self, shard: int) -> int:
        """Discard a shard's queue entirely (the shard left the ring)."""
        with self._lock:
            log = self._logs.pop(shard, None)
            if log is None:
                return 0
            dropped = len(log)
            log.close()
            path = self.root / f"hints-shard-{shard}.wal"
            try:
                path.unlink()
            except OSError:
                pass
            return dropped

    def max_delta_seq(self) -> int:
        """The highest ``delta_seq`` any pending hint carries.

        The gateway seeds its delta-sequence counter past this (and the
        journal's) on startup so replayed hints and fresh writes can
        never collide on a sequence number.
        """
        with self._lock:
            best = 0
            for log in self._logs.values():
                for _seq, payload in log.replay(0):
                    raw = payload.get("delta_seq")
                    if isinstance(raw, int) and not isinstance(raw, bool):
                        best = max(best, raw)
            return best

    def close(self) -> None:
        with self._lock:
            for log in self._logs.values():
                log.close()
