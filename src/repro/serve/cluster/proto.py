"""Length-prefixed JSON framing between the gateway and shard workers.

The cluster's internal hop is deliberately simpler than HTTP: one frame
is a 4-byte big-endian length followed by that many bytes of compact
JSON (sorted keys — the same canonical encoding as
:func:`repro.serve.http.encode_json`, so what a shard returns is what
the gateway relays).  Requests and replies alternate one-for-one on a
connection, which makes the client a trivial state machine: write one
frame, read one frame.  Anything that breaks that rhythm — a torn
frame, an oversized length, junk bytes — raises :class:`FrameError` and
the connection is discarded, never resynchronised.

Both sides of the hop live here: blocking helpers
(:func:`send_frame`/:func:`recv_frame`) for the thread-per-connection
shard worker, and coroutine helpers
(:func:`read_frame_async`/:func:`write_frame_async`) for the asyncio
gateway.  They share :func:`encode_frame`/:func:`decode_payload` so the
wire format cannot drift between them.

Replication rides on three optional ``ingest`` frame fields rather than
new ops: ``delta_seq`` (the gateway's global sequence number for the
batch — the worker records it in its WAL and no-ops re-deliveries),
``hinted`` (marks hint-drain and resize-replay traffic so a review-id
conflict is answered as an idempotent no-op instead of a 409), and the
read path adds one op, ``product_state`` (``{"op": "product_state",
"product_id": ...}`` -> the product's review ids, for the gateway's
replica-divergence probe).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

_LENGTH = struct.Struct(">I")

#: Refuse frames above this size (64 MiB): a corrupt or hostile length
#: prefix must fail loudly instead of stalling a shard on a bogus read.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(RuntimeError):
    """The peer sent bytes that are not a well-formed frame."""


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + canonical compact JSON."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """The JSON object inside a frame body; anything else is a FrameError."""
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError("frame body must be a JSON object")
    return payload


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return length


# -- blocking side (shard worker) ---------------------------------------------


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; ``None`` on EOF at a frame boundary.

    EOF *inside* a frame is a torn frame and raises — the distinction
    lets a worker treat a client that hangs up between requests as a
    normal disconnect.
    """
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == size:
                return None
            raise FrameError(
                f"connection closed mid-frame ({size - remaining}/{size} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """The next frame on ``sock``; ``None`` when the peer hung up cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    length = _check_length(_LENGTH.unpack(header)[0])
    body = _recv_exact(sock, length) if length else b""
    if body is None:  # EOF right after a length prefix is still torn
        raise FrameError("connection closed between length prefix and body")
    return decode_payload(body)


# -- asyncio side (gateway) ---------------------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> dict:
    """The next frame from ``reader``.

    Unlike the blocking side, EOF is always an error here: the gateway
    only reads when it is owed a reply, so any hangup means the shard
    died mid-request.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
        length = _check_length(_LENGTH.unpack(header)[0])
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_payload(body)


async def write_frame_async(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()
