"""Consistent-hash routing and corpus partitioning for the shard cluster.

Every request the cluster serves names one *target item* (``/v1/select``
and ``/v1/narrow`` both do), so the natural unit of placement is the
product id: :class:`HashRing` maps each id to exactly one owning shard.
The ring is the classic construction — each shard contributes ``vnodes``
pseudo-random points on a 64-bit circle, a key is owned by the first
shard point at or clockwise of the key's own hash — with two properties
the tests pin down:

* **deterministic, seedable placement**: the points are SHA-256 digests
  of ``(seed, shard, vnode)``, so the same ``(shards, vnodes, seed)``
  triple always yields the same routing on every host and every run
  (the gateway and the partitioner never have to exchange a table);
* **bounded movement on resize**: growing ``N -> N+1`` shards only adds
  points, so a key either keeps its owner or moves *to the new shard* —
  never between old shards — and the expected moved fraction is
  ``1/(N+1)``.

:func:`partition_corpus` turns the routing into per-shard sub-corpora.
A shard must be able to rebuild the *exact* instance the single-process
store would build for its targets, and instance construction is a 1-hop
neighbourhood: target ``T`` plus the in-corpus products on ``T``'s
``also_bought`` list (see :func:`repro.data.instances.build_instance`).
So shard ``i`` holds its owned products **plus** their candidate
comparatives, with every included product's full review set, in corpus
order — which is what makes cluster responses byte-identical to the
single-process ones.  The returned :class:`PartitionPlan` also records
``placement`` (product id -> every shard holding it), which the gateway
uses to fan review deltas to all affected shards.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.data.corpus import Corpus

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def _hash64(token: str) -> int:
    """The ring position of ``token``: the first 8 bytes of its SHA-256."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over ``shards`` shard ids.

    ``route(key)`` returns the owning shard index in ``[0, shards)``.
    Construction cost is ``O(shards * vnodes log(shards * vnodes))``;
    routing is one hash plus a binary search.
    """

    def __init__(self, shards: int, *, vnodes: int = 64, seed: int = 7) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append(
                    (_hash64(f"{seed}|vnode|{shard}|{vnode}"), shard)
                )
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def route(self, key: str) -> int:
        """The shard owning ``key`` (any string; product ids in practice)."""
        position = _hash64(f"{self.seed}|key|{key}")
        index = bisect_left(self._points, position)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def preference_list(self, key: str, n: int = 1) -> tuple[int, ...]:
        """The first ``n`` *distinct* shards clockwise of ``key``'s hash.

        This is the replica placement rule: entry 0 is the primary
        (exactly :meth:`route`'s answer, so ``n=1`` is byte-identical to
        today's routing) and entries 1..n-1 are the failover order.  The
        walk visits ring points in clockwise order and keeps the first
        point of each shard not yet seen, which gives two properties the
        replication layer leans on:

        * **determinism** — a pure function of ``(shards, vnodes, seed,
          key, n)``, so every gateway and partitioner derives the same
          replica sets without exchanging state;
        * **stability under growth** — growing the ring only *inserts*
          points into the walk, so an existing shard can be pushed out
          of the top ``n`` by a new shard but never pulled in, which is
          why old shards never need data streamed to them on resize.
        """
        if not 1 <= n <= self.shards:
            raise ValueError(
                f"preference list size must be in [1, {self.shards}], got {n}"
            )
        position = _hash64(f"{self.seed}|key|{key}")
        index = bisect_left(self._points, position)
        total = len(self._owners)
        found: list[int] = []
        seen: set[int] = set()
        for step in range(total):
            owner = self._owners[(index + step) % total]
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) == n:
                    break
        return tuple(found)

    def resized(self, shards: int) -> "HashRing":
        """A ring over ``shards`` shards with the same vnodes and seed.

        Because points are keyed by ``(seed, shard, vnode)``, growing the
        count only *adds* points: keys either keep their owner or move to
        one of the new shards, which is the bounded-movement guarantee.
        """
        return HashRing(shards, vnodes=self.vnodes, seed=self.seed)

    def describe(self) -> dict[str, int]:
        """Introspection for logs and ``/healthz``."""
        return {"shards": self.shards, "vnodes": self.vnodes, "seed": self.seed}


@dataclass(frozen=True)
class PartitionPlan:
    """How one corpus is split across shards.

    ``owned[i]`` are the product ids shard ``i`` answers target queries
    for (primary ownership only — replicas answer them too, but only on
    failover); ``placement[pid]`` is every shard holding ``pid``: its
    full ``replicas``-long preference list first, then each shard that
    needs it as a comparative candidate — the fan set for a review delta
    to ``pid``.  ``corpora[i]`` is shard ``i``'s sub-corpus: owned plus
    replicated products + their in-corpus also-bought candidates, full
    review sets, corpus order preserved.
    """

    shards: int
    owned: tuple[tuple[str, ...], ...]
    placement: Mapping[str, tuple[int, ...]]
    corpora: tuple[Corpus, ...]
    replicas: int = 1

    def holders(self, product_id: str) -> tuple[int, ...]:
        """Every shard whose partition contains ``product_id``.

        Raises ``KeyError`` for products outside the corpus — the
        gateway maps that to the same 400 the single-process ingest
        path produces for an unknown product.
        """
        return self.placement[product_id]

    def owner(self, product_id: str) -> int:
        """The shard that answers target queries for ``product_id``."""
        return self.placement[product_id][0]

    def preference(self, product_id: str) -> tuple[int, ...]:
        """The read path for ``product_id``: primary, then failovers.

        Exactly ``HashRing.preference_list(product_id, replicas)`` —
        every listed shard holds a byte-identical instance closure for
        the product, so the gateway may serve the read from any of them.
        """
        return self.placement[product_id][: self.replicas]

    def held(self, shard: int) -> frozenset[str]:
        """Every product id shard ``shard``'s sub-corpus contains."""
        return frozenset(p.product_id for p in self.corpora[shard].products)


def partition_corpus(
    corpus: Corpus, ring: HashRing, replicas: int = 1
) -> PartitionPlan:
    """Split ``corpus`` into per-shard sub-corpora along ``ring``.

    Each shard's include-set is the 1-hop closure of the products it
    appears in the preference list for: placement is decided by the ring
    alone, and every in-corpus ``also_bought`` candidate of a placed
    product rides along so the shard can build byte-identical comparison
    instances — a replica answers a failover read with the *same bytes*
    the primary would have.  Products and reviews keep full-corpus order
    inside each sub-corpus — instance construction is order-sensitive
    (candidate truncation, review tuples), and preserving order is what
    keeps a 1-shard partition literally equal to the input corpus.
    ``replicas=1`` reproduces the unreplicated partition exactly.
    """
    if not 1 <= replicas <= ring.shards:
        raise ValueError(
            f"replicas must be in [1, {ring.shards}], got {replicas}"
        )
    include: list[set[str]] = [set() for _ in range(ring.shards)]
    owned: list[list[str]] = [[] for _ in range(ring.shards)]
    preference: dict[str, tuple[int, ...]] = {}
    for product in corpus.products:
        pid = product.product_id
        prefs = ring.preference_list(pid, replicas)
        preference[pid] = prefs
        owned[prefs[0]].append(pid)
        for shard in prefs:
            include[shard].add(pid)
            for candidate in product.also_bought:
                if corpus.has_product(candidate):
                    include[shard].add(candidate)

    placement: dict[str, tuple[int, ...]] = {}
    for product in corpus.products:
        pid = product.product_id
        prefs = preference[pid]
        holder_set = [
            shard for shard in range(ring.shards) if pid in include[shard]
        ]
        # The preference list leads so PartitionPlan.owner() is a plain
        # [0] index and .preference() a plain prefix slice.
        ordered = list(prefs) + [s for s in holder_set if s not in prefs]
        placement[pid] = tuple(ordered)

    corpora = tuple(
        _sub_corpus(corpus, include[shard]) for shard in range(ring.shards)
    )
    return PartitionPlan(
        shards=ring.shards,
        owned=tuple(tuple(ids) for ids in owned),
        placement=placement,
        corpora=corpora,
        replicas=replicas,
    )


def _sub_corpus(corpus: Corpus, include: Iterable[str]) -> Corpus:
    """The sub-corpus of ``include`` products, full-corpus order preserved."""
    wanted = set(include)
    return Corpus(
        corpus.name,
        tuple(p for p in corpus.products if p.product_id in wanted),
        tuple(r for r in corpus.reviews if r.product_id in wanted),
    )
