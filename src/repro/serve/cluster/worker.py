"""Shard worker: one :class:`SelectionEngine` over one corpus partition.

A shard is the single-process serving stack, minus HTTP: a durable
engine (its own ``shard-{i}/`` state dir with WAL + snapshots, so PR-6
crash recovery applies per shard) behind a thread-per-connection TCP
server speaking the :mod:`repro.serve.cluster.proto` framing.  The
gateway owns the public HTTP surface; the worker's job is to produce
*exactly* the status code and payload the single-process server would
have produced, which it does by reusing the HTTP layer's request
parsing (:func:`repro.serve.http.parse_request`) and mirroring its
exception taxonomy in :func:`classify_error`.

Request frames are ``{"op": ..., ...}``; replies are either
``{"status": 200, "payload": ...}`` or ``{"status": <4xx/5xx>,
"error": ..., "retry_after"?: ..., "extra"?: {...}}`` — precisely the
pieces :meth:`ServeHandler._send_error_json` would have assembled, so
the gateway relays them without reinterpretation.

:func:`shard_child_main` matches the :class:`~repro.serve.supervisor.
Supervisor` child-entry contract (readiness over a pipe, SIGTERM drain,
same-port rebind on restart), so shard crash-restarts ride the existing
``RestartPolicy`` machinery unchanged.
"""

from __future__ import annotations

import signal
import socketserver
import threading
import time

from repro.resilience.deadline import DeadlineExceeded, deadline_scope
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.breaker import CircuitOpen
from repro.serve.cluster.proto import FrameError, recv_frame, send_frame
from repro.serve.engine import (
    EngineClosed,
    EngineDraining,
    InvalidRequest,
    SelectionEngine,
    build_durable_engine,
)
from repro.serve.health import DRAINING
from repro.serve.http import BadRequest, parse_request
from repro.serve.store import (
    DeltaValidationError,
    UnknownTargetError,
    UnviableTargetError,
)

#: Engine-option keys the shard resolves itself rather than forwarding
#: to ``SelectionEngine`` — admission is *injected* per shard (the
#: ROADMAP's unlock), built from plain numbers so the options dict stays
#: picklable across any multiprocessing start method.
_ADMISSION_KEYS = ("max_pending", "rate_limit", "rate_burst")


class AppliedDeltaSeqs:
    """A bounded set of gateway delta sequence numbers already applied.

    The replication layer's idempotence ledger: every cluster ingest
    frame carries a gateway-assigned ``delta_seq``, and a delta that was
    both written live *and* queued as a hint (or re-driven by a resize
    catch-up replay) arrives at the same shard more than once.  The fast
    path is this in-memory set; the durable path is the ``delta_seq``
    stamped into each WAL record, from which :class:`ShardServer`
    rebuilds the set after a crash restart — so a replayed delta is a
    no-op on both sides of a SIGKILL.

    Bounded FIFO (``capacity`` most recent seqs): sequences old enough
    to be evicted are, by the same age, covered by a snapshot, where the
    review-id conflict check provides the backstop dedup for hinted
    re-deliveries.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._seen: set[int] = set()
        self._order: list[int] = []
        self._lock = threading.Lock()

    def __contains__(self, seq: int) -> bool:
        with self._lock:
            return seq in self._seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def add(self, seq: int) -> None:
        with self._lock:
            if seq in self._seen:
                return
            self._seen.add(seq)
            self._order.append(seq)
            if len(self._order) > self.capacity:
                self._seen.discard(self._order.pop(0))


def classify_error(
    exc: Exception, engine: SelectionEngine, *, ingest: bool
) -> dict:
    """Map an engine exception to the single-process HTTP error reply.

    The order mirrors the ``except`` chains in ``ServeHandler.do_POST``
    and ``_do_ingest`` — same statuses, same retry hints, same ``extra``
    fields — so clients cannot tell a shard's error from the
    single-process server's.
    """
    if isinstance(exc, BadRequest):
        return {"status": 400, "error": str(exc)}
    if isinstance(exc, DeltaValidationError):
        return {"status": 409 if exc.conflict else 400, "error": str(exc)}
    if not ingest and isinstance(exc, TypeError):
        return {"status": 400, "error": str(exc)}
    if isinstance(exc, (InvalidRequest, UnknownTargetError, UnviableTargetError)):
        return {"status": 422, "error": str(exc)}
    if isinstance(exc, Overloaded):
        return {
            "status": 429,
            "error": str(exc),
            "retry_after": exc.retry_after,
            "extra": {"reason": exc.reason},
        }
    if isinstance(exc, EngineDraining):
        return {
            "status": 503,
            "error": str(exc),
            "retry_after": engine.jitter.apply(1.0),
        }
    if isinstance(exc, CircuitOpen):
        return {
            "status": 503,
            "error": str(exc),
            "retry_after": engine.jitter.apply(5.0),
            "extra": {"reason": "circuit_open"},
        }
    if isinstance(exc, (DeadlineExceeded, EngineClosed)):
        return {"status": 503, "error": str(exc)}
    if ingest and isinstance(exc, OSError):
        return {
            "status": 503,
            "error": f"cannot persist delta: {exc}",
            "retry_after": engine.jitter.apply(2.0),
            "extra": {"reason": "wal_unavailable"},
        }
    return {"status": 500, "error": f"{type(exc).__name__}: {exc}"}


def _handle_query(engine: SelectionEngine, message: dict, narrow: bool) -> dict:
    body = message.get("body")
    if not isinstance(body, dict):
        raise BadRequest("shard query frame must carry a 'body' object")
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or deadline_ms <= 0
    ):
        raise BadRequest(f"deadline_ms must be a positive number, got {deadline_ms!r}")
    request = parse_request(body, narrow)
    with deadline_scope(None if deadline_ms is None else deadline_ms / 1e3):
        response = engine.narrow(request) if narrow else engine.select(request)
    return response.as_dict()


def _noop_ingest_ack(engine: SelectionEngine) -> dict:
    """The ack for a delta this shard has already applied (same shape as
    a real ingest ack, so the gateway aggregates it unchanged)."""
    return {
        "version": engine.store.version,
        "added": 0,
        "affected": [],
        "wal_seq": engine.wal.last_seq if engine.wal is not None else 0,
        "cache_evicted": 0,
        "tier_purged": 0,
        "idempotent": True,
    }


def _handle_ingest(
    engine: SelectionEngine,
    message: dict,
    applied: AppliedDeltaSeqs | None = None,
) -> dict:
    reviews = message.get("reviews")
    if not isinstance(reviews, list) or not reviews:
        raise BadRequest(
            "field 'reviews' (a non-empty list of review objects) is required"
        )
    if not all(isinstance(entry, dict) for entry in reviews):
        raise BadRequest("every entry in 'reviews' must be an object")
    delta_seq = message.get("delta_seq")
    if delta_seq is not None and (
        isinstance(delta_seq, bool) or not isinstance(delta_seq, int)
    ):
        raise BadRequest(f"delta_seq must be an integer, got {delta_seq!r}")
    # Seq-based idempotence: a delta this shard already applied — live
    # write followed by its own hint replay, or a resize catch-up
    # re-delivery — acks as a no-op instead of a 409.
    if delta_seq is not None and applied is not None and delta_seq in applied:
        return _noop_ingest_ack(engine)
    try:
        ack = engine.ingest_reviews(reviews, delta_seq=delta_seq)
    except DeltaValidationError as exc:
        if exc.conflict and message.get("hinted"):
            # Durable backstop for replays that outlive the in-memory
            # seq set (restart + WAL compaction): the batch is atomic
            # (one WAL append), so a review-id conflict on a *hinted*
            # re-delivery proves the whole delta already landed.
            return _noop_ingest_ack(engine)
        raise
    if delta_seq is not None and applied is not None:
        applied.add(delta_seq)
    return ack


def _handle_healthz(engine: SelectionEngine, started_at: float) -> dict:
    health = engine.health.view()
    state = health["state"]
    payload: dict = {
        "status": "ok" if state == "healthy" else state,
        "corpus_version": engine.store.version,
        "uptime_seconds": round(time.monotonic() - started_at, 3),
        "inflight": engine.admission.inflight,
    }
    if "reasons" in health:
        payload["reasons"] = health["reasons"]
    if engine.recovery is not None:
        payload["recovery"] = engine.recovery.as_dict()
    # Same split as the HTTP layer: draining answers 503 so the gateway
    # stops routing here; everything else (including recovering) is 200.
    return {"status": 503 if state == DRAINING else 200, "payload": payload}


def _handle_product_state(engine: SelectionEngine, message: dict) -> dict:
    """The replica-divergence probe: a product's review ids, in order.

    The gateway compares this list across a product's preference
    replicas; byte-identical partitioning plus idempotent delta replay
    should keep them equal, and ``repro_replica_divergence_total``
    counts every observation where they are not.
    """
    product_id = message.get("product_id")
    if not isinstance(product_id, str) or not product_id:
        return {
            "status": 400,
            "error": "field 'product_id' (a non-empty string) is required",
        }
    corpus = engine.store.corpus
    if not corpus.has_product(product_id):
        return {
            "status": 404,
            "error": f"product {product_id!r} is not held by this shard",
        }
    review_ids = [
        review.review_id
        for review in corpus.reviews
        if review.product_id == product_id
    ]
    return {
        "status": 200,
        "payload": {
            "product_id": product_id,
            "review_ids": review_ids,
            "version": engine.store.version,
        },
    }


def handle_message(
    engine: SelectionEngine,
    message: dict,
    *,
    started_at: float = 0.0,
    applied_seqs: AppliedDeltaSeqs | None = None,
) -> dict:
    """One request frame in, one reply frame out (never raises)."""
    op = message.get("op")
    try:
        if op in ("select", "narrow"):
            return {
                "status": 200,
                "payload": _handle_query(engine, message, op == "narrow"),
            }
        if op == "ingest":
            return {
                "status": 200,
                "payload": _handle_ingest(engine, message, applied_seqs),
            }
        if op == "healthz":
            return _handle_healthz(engine, started_at)
        if op == "metrics":
            return {
                "status": 200,
                "payload": {
                    "json": engine.metrics.as_dict(),
                    "prometheus": engine.metrics.render_prometheus(),
                },
            }
        if op == "snapshot":
            try:
                info = engine.snapshot()
            except RuntimeError as exc:
                return {"status": 409, "error": str(exc)}
            return {
                "status": 200,
                "payload": {
                    "path": str(info.path),
                    "version": info.version,
                    "wal_seq": info.wal_seq,
                    "artifacts": info.artifacts,
                },
            }
        if op == "product_state":
            return _handle_product_state(engine, message)
        if op == "ping":
            return {"status": 200, "payload": {"version": engine.store.version}}
        return {"status": 400, "error": f"unknown op {op!r}"}
    except Exception as exc:
        return classify_error(exc, engine, ingest=op == "ingest")


class ShardServer(socketserver.ThreadingTCPServer):
    """Framed-protocol TCP server around one shard engine.

    ``allow_reuse_address`` matters operationally: after a SIGKILL the
    supervisor respawns the shard on the *same* port (so the gateway's
    address table never changes), and lingering TIME_WAIT connections
    from the dead process must not block the rebind.
    """

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 256

    def __init__(self, address: tuple[str, int], engine: SelectionEngine) -> None:
        super().__init__(address, _ShardConnection)
        self.engine = engine
        self.started_at = time.monotonic()
        # Rebuild the idempotence ledger from the WAL tail so hinted
        # re-deliveries stay no-ops across a crash restart (deltas the
        # compaction already folded into a snapshot fall back to the
        # review-id conflict check in _handle_ingest).
        self.applied_seqs = AppliedDeltaSeqs()
        if engine.wal is not None:
            for _seq, payload in engine.wal.replay(0):
                delta_seq = payload.get("delta_seq")
                if isinstance(delta_seq, int):
                    self.applied_seqs.add(delta_seq)


class _ShardConnection(socketserver.BaseRequestHandler):
    """One gateway connection: a loop of request frame -> reply frame."""

    server: ShardServer

    def handle(self) -> None:
        sock = self.request
        while True:
            try:
                message = recv_frame(sock)
            except (FrameError, OSError):
                return  # garbage or torn frame: drop the connection
            if message is None:
                return  # clean hangup between frames
            reply = handle_message(
                self.server.engine,
                message,
                started_at=self.server.started_at,
                applied_seqs=self.server.applied_seqs,
            )
            try:
                send_frame(sock, reply)
            except OSError:
                return


def shard_child_main(
    state_dir: str,
    corpus_path: str | None,
    host: str,
    port: int,
    restarts: int,
    options: dict,
    conn,
) -> None:
    """Supervisor child entry point for one shard worker.

    The mirror of :func:`repro.serve.supervisor._child_main` with the
    HTTP server swapped for :class:`ShardServer`: recover the shard's
    durable state, report ``{"port", "version", "recovery"}`` over the
    pipe, serve frames until SIGTERM (drain, then exit).
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        engine = _build_shard_engine(
            state_dir, corpus_path=corpus_path, restarts=restarts, options=options
        )
        server = ShardServer((host, port), engine)
    except Exception as exc:
        try:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
        finally:
            conn.close()
        raise
    recovery = engine.recovery.as_dict() if engine.recovery else None
    conn.send(
        {
            "port": server.server_address[1],
            "version": engine.store.version,
            "recovery": recovery,
        }
    )
    conn.close()

    def _terminate(signum, frame) -> None:
        threading.Thread(
            target=lambda: (engine.drain(10.0), server.shutdown()),
            name="repro-shard-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    finally:
        server.server_close()


def _build_shard_engine(
    state_dir: str,
    *,
    corpus_path: str | None,
    restarts: int,
    options: dict,
) -> SelectionEngine:
    """A durable engine with the shard's own injected admission control.

    The gateway does the *global* shedding; the per-shard controller is
    a deep backstop sized from the same knobs, so a single hot shard
    degrades to 429s instead of an unbounded thread pile-up.
    """
    options = dict(options)
    admission_options = {
        key: options.pop(key) for key in _ADMISSION_KEYS if key in options
    }
    admission = None
    if admission_options:
        admission = AdmissionController(
            max_pending=admission_options.get("max_pending") or 64,
            rate=admission_options.get("rate_limit"),
            burst=admission_options.get("rate_burst"),
        )
    return build_durable_engine(
        state_dir,
        corpus_path=corpus_path,
        restarts=restarts,
        admission=admission,
        **options,
    )
