"""The in-process selection engine behind the HTTP API.

:class:`SelectionEngine` answers three request shapes against an
:class:`~repro.serve.store.ItemStore`:

* ``select`` — Problem 1/2 review-set selection by any registered
  algorithm;
* ``select_plus`` — convenience alias pinning CompaReSetS+;
* ``narrow`` — select, build the §3.1 item graph, and narrow to the
  k-item core list through the PR-1
  :class:`~repro.resilience.fallback.FallbackChain`.

Every answer carries :class:`Provenance`: how the cache behaved ("hit",
"miss", or "coalesced" behind another request's solve), which backend
produced it, whether it is proven optimal, and the wall time.  Cache
misses execute on a bounded worker pool; the caller blocks under the
ambient :class:`~repro.resilience.deadline.Deadline` (or an explicit
one), so an expired deadline surfaces as
:class:`~repro.resilience.deadline.DeadlineExceeded` — the HTTP layer's
503 — rather than an unbounded wait.

The engine is designed to be used in-process (tests, notebooks) exactly
as the HTTP server uses it; no sockets are involved until
:mod:`repro.serve.http` wraps it.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.batch_solver import BATCHABLE_ALGORITHMS, BatchJob, select_many
from repro.core.compare_sets import CompareSetsSelector
from repro.core.compare_sets_plus import CompareSetsPlusSelector
from repro.core.problem import SelectionConfig
from repro.core.selection import SELECTORS, SelectionResult, make_selector
from repro.core.vectors import OpinionScheme
from repro.data.io import load_corpus
from repro.graph.similarity import build_item_graph
from repro.resilience.deadline import Deadline, DeadlineExceeded, resolve_deadline
from repro.resilience.fallback import (
    DEFAULT_STAGES,
    FallbackChain,
    StageSolver,
    builtin_stage,
)
from repro.serve.admission import AdmissionController, Overloaded, request_cost
from repro.serve.batch import MicroBatcher
from repro.serve.breaker import STATE_CODES, BreakerBoard
from repro.serve.cache import ResultCache
from repro.serve.cachetier import SharedCacheTier, tier_key
from repro.serve.health import HealthMonitor
from repro.serve.jitter import NO_JITTER, RetryJitter
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshot import RecoveryInfo, SnapshotInfo, SnapshotManager
from repro.serve.store import (
    CorpusValidationError,
    DeltaValidationError,
    InstanceArtifacts,
    ItemStore,
)
from repro.serve.wal import WriteAheadLog, review_from_record, review_record

_RECOVERY_MODE_CODES = {"cold": 0, "cold+wal": 1, "snapshot": 2, "snapshot+wal": 3}


class InvalidRequest(ValueError):
    """A request failed semantic validation (HTTP 422)."""


class EngineClosed(RuntimeError):
    """The engine was shut down (HTTP 503)."""


class EngineDraining(EngineClosed):
    """The engine is draining for graceful shutdown (HTTP 503 + Retry-After)."""


_SCHEMES = {scheme.value: scheme for scheme in OpinionScheme}


@dataclass(frozen=True, slots=True)
class SelectRequest:
    """Parameters of one ``select`` call (all have CLI-matching defaults).

    ``target=None`` picks the first viable target in the corpus, like the
    CLI does.
    """

    target: str | None = None
    m: int = 3
    lam: float = 1.0
    mu: float = 0.1
    scheme: str = OpinionScheme.BINARY.value
    algorithm: str = "CompaReSetS+"
    max_comparisons: int = 10
    min_reviews: int = 3

    def validated(self) -> "SelectRequest":
        """Raise :class:`InvalidRequest` on semantic errors."""
        if self.m < 1:
            raise InvalidRequest(f"m must be >= 1, got {self.m}")
        if self.lam < 0 or self.mu < 0:
            raise InvalidRequest("lam and mu must be >= 0")
        if self.scheme not in _SCHEMES:
            raise InvalidRequest(
                f"unknown scheme {self.scheme!r}; one of {sorted(_SCHEMES)}"
            )
        if self.algorithm not in SELECTORS:
            raise InvalidRequest(
                f"unknown algorithm {self.algorithm!r}; "
                f"one of {sorted(SELECTORS)}"
            )
        if self.max_comparisons < 1:
            raise InvalidRequest(
                f"max_comparisons must be >= 1, got {self.max_comparisons}"
            )
        if self.min_reviews < 1:
            raise InvalidRequest(
                f"min_reviews must be >= 1, got {self.min_reviews}"
            )
        return self

    def config(self) -> SelectionConfig:
        return SelectionConfig(
            max_reviews=self.m,
            lam=self.lam,
            mu=self.mu,
            scheme=_SCHEMES[self.scheme],
        )


@dataclass(frozen=True, slots=True)
class NarrowRequest(SelectRequest):
    """A ``narrow`` call: select, then TargetHkS down to ``k`` items."""

    k: int = 3
    time_limit: float = 60.0
    stages: tuple[str, ...] = DEFAULT_STAGES

    def validated(self) -> "NarrowRequest":
        # Explicit base call: zero-arg super() is broken inside
        # dataclass(slots=True) bodies (the decorator recreates the class).
        SelectRequest.validated(self)
        if self.k < 1:
            raise InvalidRequest(f"k must be >= 1, got {self.k}")
        if self.time_limit <= 0:
            raise InvalidRequest(f"time_limit must be positive, got {self.time_limit}")
        if not self.stages:
            raise InvalidRequest("stages must not be empty")
        return self


@dataclass(frozen=True, slots=True)
class Provenance:
    """How an answer was produced (attached to every response).

    ``stage_timings`` carries the solver kernel's per-stage wall times in
    milliseconds (dedup / gram / screen / pursuit / round / evaluate) for
    the solve that produced the cached value; cache hits repeat the
    original solve's timings unchanged.  ``batch_size``/``batched_with``
    record cross-request batch amortisation: the solve ran inside a
    GEMM-stacked group of ``batch_size`` requests, sharing its pursuit
    rounds with ``batched_with`` others (absent for solo solves).
    ``solver_counters`` carries the kernel's integer event counts —
    notably the candidate pre-screen's examined/kept/promoted column
    totals for huge items.
    """

    cache: str  # "hit" | "miss" | "coalesced" | "tier"
    backend: str
    corpus_version: str
    wall_ms: float
    proven_optimal: bool | None = None
    fallback_depth: int | None = None
    degraded: bool = False
    breaker_skipped: tuple[str, ...] = ()
    stage_timings: Mapping[str, float] | None = None
    batch_size: int | None = None
    batched_with: int | None = None
    solver_counters: Mapping[str, int] | None = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "cache": self.cache,
            "backend": self.backend,
            "corpus_version": self.corpus_version,
            "wall_ms": round(self.wall_ms, 3),
            "degraded": self.degraded,
        }
        if self.proven_optimal is not None:
            payload["proven_optimal"] = self.proven_optimal
        if self.fallback_depth is not None:
            payload["fallback_depth"] = self.fallback_depth
        if self.breaker_skipped:
            payload["breaker_skipped"] = list(self.breaker_skipped)
        if self.stage_timings is not None:
            payload["stage_ms"] = {
                stage: round(ms, 3) for stage, ms in self.stage_timings.items()
            }
        if self.batch_size is not None:
            payload["batch_size"] = self.batch_size
            payload["batched_with"] = self.batched_with
        if self.solver_counters:
            payload["solver_counters"] = dict(self.solver_counters)
        return payload


@dataclass(frozen=True, slots=True)
class EngineResponse:
    """A JSON-ready result block plus its provenance."""

    result: dict[str, object]
    provenance: Provenance

    def as_dict(self) -> dict[str, object]:
        return {"result": self.result, "provenance": self.provenance.as_dict()}


def selection_payload(result: SelectionResult) -> dict[str, object]:
    """The canonical JSON-ready rendering of a :class:`SelectionResult`.

    This is the single serialisation path: the HTTP API, the in-process
    engine, and the byte-for-byte equivalence tests all call it, so
    "server output == offline selector output" is checkable with a plain
    bytes comparison of the dumps.
    """
    items = []
    for item_index, product in enumerate(result.instance.products):
        items.append(
            {
                "product_id": product.product_id,
                "title": product.title,
                "role": "target" if item_index == 0 else "comparative",
                "selected": [
                    {
                        "review_id": review.review_id,
                        "rating": review.rating,
                        "text": review.text,
                    }
                    for review in result.selected_reviews(item_index)
                ],
            }
        )
    return {
        "algorithm": result.algorithm,
        "target": result.instance.target.product_id,
        "selections": [list(s) for s in result.selections],
        "items": items,
    }


@dataclass(frozen=True, slots=True)
class _SolvedSelect:
    """Cached value for one select key.

    Deliberately JSON-able (payload + scalars only, no
    :class:`SelectionResult`) so the shared tier can round-trip it
    across processes; ``from_tier`` marks values decoded from the tier
    rather than solved locally, for provenance.
    """

    payload: dict[str, object]
    degraded: bool = False
    timings: Mapping[str, float] | None = None
    from_tier: bool = False
    counters: Mapping[str, int] | None = None
    batch_size: int | None = None
    batched_with: int | None = None


@dataclass(frozen=True, slots=True)
class _SolvedNarrow:
    payload: dict[str, object]
    backend: str
    proven_optimal: bool
    fallback_depth: int
    degraded: bool
    breaker_skipped: tuple[str, ...] = ()
    stage_timings: Mapping[str, float] | None = None
    from_tier: bool = False


class SelectionEngine:
    """Cached, deadline-aware selection serving against an ItemStore.

    ``batch_window`` > 0 enables micro-batching: concurrent cache-missing
    select requests of one corpus generation — same or different targets,
    mixed budgets/algorithms — are grouped for up to that many seconds
    and solved in one handler call; requests sharing per-item solver
    artifacts are GEMM-stacked through
    :func:`repro.core.batch_solver.select_many`, byte-identical to solo
    solves, with ``batch_size``/``batched_with`` amortisation recorded
    in provenance and ``repro_batch_*`` gauges in ``/metrics``.

    Overload protection: ``admission`` (default: a generous
    :class:`AdmissionController`) sheds excess requests with
    :class:`~repro.serve.admission.Overloaded` before they reach the
    worker pool; ``breakers`` trips failing narrow backends out of the
    fallback chain; ``stage_solvers`` overrides named fallback stages
    (the chaos harness injects faulty backends through it).
    """

    def __init__(
        self,
        store: ItemStore,
        *,
        cache: ResultCache | None = None,
        cache_size: int = 256,
        ttl: float | None = None,
        workers: int = 4,
        batch_window: float = 0.0,
        batch_max: int = 8,
        metrics: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
        breakers: BreakerBoard | None = None,
        stage_solvers: Mapping[str, StageSolver] | None = None,
        tier: SharedCacheTier | None = None,
        wal: WriteAheadLog | None = None,
        snapshots: SnapshotManager | None = None,
        snapshot_every: int = 0,
        recovery: RecoveryInfo | None = None,
        jitter: RetryJitter | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0, got {snapshot_every}")
        self.store = store
        # Every collaborator with process-wide state is injectable —
        # store, cache, tier, admission, breakers — so a shard worker can
        # assemble an engine over its own partition without hidden
        # globals; ``cache_size``/``ttl`` only shape the default cache.
        self.cache = (
            cache if cache is not None else ResultCache(max_size=cache_size, ttl=ttl)
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jitter = jitter or NO_JITTER
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_pending=workers * 64, jitter=self.jitter)
        )
        self.tier = tier
        self.wal = wal
        self.snapshots = snapshots
        self.snapshot_every = snapshot_every
        self.recovery = recovery
        self._ingest_lock = threading.Lock()
        self._deltas_since_snapshot = 0
        self._recovery_pending = False
        self.breakers = breakers if breakers is not None else BreakerBoard()
        # Hook the board (own or caller-supplied) into the metrics
        # registry so breaker transitions are always visible in /metrics.
        self.breakers.add_transition_hook(self._on_breaker_transition)
        self.health = HealthMonitor()
        self._stage_solvers = dict(stage_solvers or {})
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self.batcher: MicroBatcher | None = None
        if batch_window > 0:
            self.batcher = MicroBatcher(
                self._solve_batch, max_batch=batch_max, max_wait=batch_window
            )
        self._latency = {
            endpoint: self.metrics.histogram(
                "repro_request_latency_seconds",
                "request wall time in seconds",
                labels={"endpoint": endpoint},
            )
            for endpoint in ("select", "narrow")
        }
        self._shed_latency = self.metrics.histogram(
            "repro_shed_latency_seconds",
            "wall time of requests refused by admission control",
        )
        self._wire_gauges()
        self._wire_health()
        if recovery is not None and recovery.mode != "cold":
            # Restarted from durable state: surface "recovering" until the
            # first request completes against the rebuilt generation.
            self._recovery_pending = True
            self.health.begin_recovery()

    def _on_breaker_transition(self, backend: str, old: str, new: str) -> None:
        self.metrics.counter(
            "repro_breaker_transitions_total",
            "circuit breaker state changes",
            labels={"backend": backend, "to": new},
        ).inc()
        self._register_breaker_gauge(backend)

    def _register_breaker_gauge(self, backend: str) -> None:
        self.metrics.gauge(
            "repro_breaker_state",
            lambda _backend=backend: STATE_CODES[
                self.breakers.breaker(_backend).state
            ],
            "breaker state per backend (0 closed, 1 half-open, 2 open)",
            labels={"backend": backend},
        )

    def _wire_health(self) -> None:
        for backend in DEFAULT_STAGES:
            self._register_breaker_gauge(backend)

        def breaker_probe() -> str | None:
            opened = self.breakers.open_backends()
            if opened:
                return "circuit open: " + ", ".join(opened)
            return None

        def admission_probe() -> str | None:
            if self.admission.saturated():
                stats = self.admission.stats()
                return (
                    f"admission queue saturated "
                    f"({stats.inflight}/{stats.max_pending} pending)"
                )
            return None

        self.health.add_probe(breaker_probe)
        self.health.add_probe(admission_probe)
        self.metrics.gauge(
            "repro_health_state",
            self.health.code,
            "serving health (0 healthy, 1 degraded, 2 draining, 3 recovering)",
        )
        self.metrics.gauge(
            "repro_inflight",
            lambda: self.admission.inflight,
            "requests currently inside the engine",
        )
        admission_stats = self.admission.stats
        self.metrics.gauge(
            "repro_admission_shed_ratio",
            lambda: admission_stats().shed_ratio,
            "fraction of offered requests refused by admission control",
        )

    def _wire_gauges(self) -> None:
        stats = self.cache.stats
        self.metrics.gauge(
            "repro_cache_hits", lambda: stats().hits, "result cache hits"
        )
        self.metrics.gauge(
            "repro_cache_misses", lambda: stats().misses, "result cache misses"
        )
        self.metrics.gauge(
            "repro_cache_coalesced",
            lambda: stats().coalesced,
            "requests served by another request's in-flight solve",
        )
        self.metrics.gauge(
            "repro_cache_hit_ratio",
            lambda: stats().hit_ratio,
            "fraction of lookups answered without a fresh solve",
        )
        self.metrics.gauge(
            "repro_cache_size", lambda: stats().size, "cached results"
        )
        self.metrics.gauge(
            "repro_store_artifacts",
            lambda: self.store.stats()["cached_artifacts"],
            "precomputed instance artifacts",
        )
        if self.batcher is not None:
            batch_stats = self.batcher.stats
            self.metrics.gauge(
                "repro_batch_submitted",
                lambda: batch_stats().submitted,
                "requests submitted to the micro-batcher",
            )
            self.metrics.gauge(
                "repro_batch_batches",
                lambda: batch_stats().batches,
                "sealed micro-batches executed",
            )
            self.metrics.gauge(
                "repro_batch_batched_requests",
                lambda: batch_stats().batched_requests,
                "requests that joined another request's batch window",
            )
            self.metrics.gauge(
                "repro_batch_largest",
                lambda: batch_stats().largest_batch,
                "largest sealed micro-batch so far",
            )
            self.metrics.gauge(
                "repro_batch_amortisation",
                lambda: batch_stats().amortisation,
                "mean requests per micro-batch handler call",
            )
        if self.tier is not None:
            tier_stats = self.tier.stats
            self.metrics.gauge(
                "repro_tier_hits", lambda: tier_stats().hits,
                "shared cache tier hits",
            )
            self.metrics.gauge(
                "repro_tier_gets", lambda: tier_stats().gets,
                "shared cache tier lookups",
            )
            self.metrics.gauge(
                "repro_tier_puts", lambda: tier_stats().puts,
                "results published to the shared cache tier",
            )
            self.metrics.gauge(
                "repro_tier_errors", lambda: tier_stats().errors,
                "shared cache tier backend failures (absorbed)",
            )
            self.metrics.gauge(
                "repro_tier_skipped", lambda: tier_stats().skipped,
                "tier calls skipped while its breaker was open",
            )
            self.metrics.gauge(
                "repro_tier_breaker_state",
                lambda: STATE_CODES[self.tier.breaker.state],
                "shared tier breaker state (0 closed, 1 half-open, 2 open)",
            )
        if self.recovery is not None:
            recovery = self.recovery
            self.metrics.gauge(
                "repro_recovery_mode",
                lambda: _RECOVERY_MODE_CODES.get(recovery.mode, -1),
                "how the store was rebuilt "
                "(0 cold, 1 cold+wal, 2 snapshot, 3 snapshot+wal)",
            )
            self.metrics.gauge(
                "repro_recovery_replayed_deltas",
                lambda: recovery.replayed_deltas,
                "WAL deltas replayed at the last restart",
            )
            self.metrics.gauge(
                "repro_recovery_restarts",
                lambda: recovery.restarts,
                "supervisor restarts since the service started",
            )

    # -- public API ----------------------------------------------------------

    def select(
        self,
        request: SelectRequest | None = None,
        deadline: Deadline | float | None = None,
        **kwargs,
    ) -> EngineResponse:
        """Answer one select request (kwargs build a request if none given)."""
        if request is None:
            request = SelectRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass either a request object or kwargs, not both")
        request = request.validated()
        return self._run("select", request, resolve_deadline(deadline))

    def select_plus(
        self,
        request: SelectRequest | None = None,
        deadline: Deadline | float | None = None,
        **kwargs,
    ) -> EngineResponse:
        """``select`` pinned to CompaReSetS+ (Problem 2)."""
        if request is None:
            request = SelectRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass either a request object or kwargs, not both")
        return self.select(replace(request, algorithm="CompaReSetS+"), deadline)

    def narrow(
        self,
        request: NarrowRequest | None = None,
        deadline: Deadline | float | None = None,
        **kwargs,
    ) -> EngineResponse:
        """Select, then narrow to the k-item core list via the fallback chain."""
        if request is None:
            request = NarrowRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass either a request object or kwargs, not both")
        request = request.validated()
        return self._run("narrow", request, resolve_deadline(deadline))

    def close(self) -> None:
        """Stop accepting work and release the worker pool (abruptly).

        In-flight futures are cancelled; prefer :meth:`drain` for a
        graceful stop that lets accepted requests finish first.
        """
        self._closed = True
        self.health.start_draining()
        if self.batcher is not None:
            self.batcher.close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self.wal is not None:
            self.wal.close()

    def drain(self, timeout: float = 30.0) -> bool:
        """Gracefully stop: refuse new work, let in-flight requests finish.

        Enters the draining health state immediately (new requests raise
        :class:`EngineDraining`, the HTTP layer's 503), waits up to
        ``timeout`` seconds for every in-flight request to complete,
        then releases the worker pool.  Returns ``True`` when the engine
        drained fully within the timeout; on ``False`` the stragglers
        were cancelled as in :meth:`close`.
        """
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        self.health.start_draining()
        deadline = Deadline.after(timeout)
        while self.admission.inflight > 0 and not deadline.expired():
            time.sleep(0.005)
        drained = self.admission.inflight == 0
        self._closed = True
        if self.batcher is not None:
            self.batcher.close()
        self._pool.shutdown(wait=drained, cancel_futures=not drained)
        if self.wal is not None:
            self.wal.close()
        return drained

    def reload_corpus(self, corpus) -> str:
        """Validated hot reload: swap the store's corpus, flush the cache.

        Delegates to :meth:`ItemStore.safe_reload` — the new corpus is
        validated while the old generation keeps serving, and a failing
        corpus raises :class:`~repro.serve.store.CorpusValidationError`
        without any visible change.  On success the result cache is
        cleared (its versioned keys are already unreachable; clearing
        just frees the memory immediately).
        """
        version = self.store.safe_reload(corpus)
        self.cache.clear()
        self.metrics.counter(
            "repro_reloads_total", "successful corpus reloads"
        ).inc()
        if self.snapshots is not None:
            # A reload starts a new lineage: WAL records for the old one
            # are obsolete.  Snapshot the fresh generation immediately so
            # a crash right after the reload recovers to it, and compact
            # the stale tail away.  Failure is non-fatal — serving is
            # already on the new corpus; the next snapshot retries.
            try:
                self.snapshot()
            except OSError:
                self.metrics.counter(
                    "repro_snapshot_failures_total", "failed snapshot writes"
                ).inc()
        return version

    def reload_from_path(self, path: str | Path) -> str:
        """Load a JSONL corpus from disk and :meth:`reload_corpus` it.

        An unreadable or unparsable file — including one that is
        truncated mid-record, not UTF-8, or missing required fields — is
        a validation failure (the corpus never existed as far as serving
        is concerned), reported as :class:`CorpusValidationError`.
        """
        try:
            corpus = load_corpus(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CorpusValidationError(
                f"cannot load corpus from {str(path)!r}: {exc}"
            ) from exc
        return self.reload_corpus(corpus)

    # -- durable ingest -------------------------------------------------------

    def ingest_reviews(
        self, records: Sequence[Mapping], *, delta_seq: int | None = None
    ) -> dict[str, object]:
        """Apply one review delta durably; returns an ack payload.

        The write discipline is WAL-before-apply-before-ack: the batch
        is validated against the live generation, fsynced to the WAL,
        applied as a new generation, and only then acknowledged — so an
        acknowledged delta survives any crash (the chaos suite's
        zero-acked-lost invariant).  A WAL append failure (disk full)
        surfaces as :class:`OSError` with the store untouched; the batch
        was never acked and never applied.

        ``delta_seq`` is an optional caller-supplied identity for the
        batch (the cluster gateway's global delta sequence): it is
        stamped into the WAL record so a restarted shard worker can
        rebuild its applied-delta set from replay and treat a hinted
        re-delivery as the no-op it is.  The single-process path never
        sets it.

        Invalidation is generation-chained: exactly the entries tagged
        with an affected product are evicted, locally and in the shared
        tier.
        """
        if self.health.draining:
            raise EngineDraining("engine is draining for shutdown")
        if self._closed:
            raise EngineClosed("engine is closed")
        try:
            reviews = [review_from_record(record) for record in records]
        except (ValueError, TypeError) as exc:
            raise DeltaValidationError(str(exc)) from exc
        with self._ingest_lock:
            self.store.validate_delta(reviews)
            seq = 0
            if self.wal is not None:
                record: dict[str, object] = {
                    "kind": "delta",
                    "reviews": [review_record(r) for r in reviews],
                }
                if delta_seq is not None:
                    record["delta_seq"] = delta_seq
                seq = self.wal.append(record)
            outcome = self.store.apply_delta(reviews)
            self._deltas_since_snapshot += 1
            snapshot_due = (
                self.snapshots is not None
                and self.snapshot_every > 0
                and self._deltas_since_snapshot >= self.snapshot_every
            )
        evicted = self.cache.invalidate_tags(outcome.affected)
        tier_purged = 0
        if self.tier is not None:
            tier_purged = self.tier.purge_products(outcome.affected)
        self.metrics.counter(
            "repro_ingest_total", "acknowledged review deltas"
        ).inc()
        self.metrics.counter(
            "repro_ingest_reviews_total", "reviews added via delta ingest"
        ).inc(outcome.added)
        self.metrics.counter(
            "repro_cache_invalidated_total",
            "cache entries evicted by delta invalidation",
        ).inc(evicted)
        self.metrics.counter(
            "repro_ingest_artifacts_patched_total",
            "solver artifacts extended in place by delta ingest",
        ).inc(outcome.patched)
        self.metrics.counter(
            "repro_ingest_artifacts_rebuilt_total",
            "solver artifacts dropped for cold rebuild by delta ingest",
        ).inc(outcome.rebuilt)
        self.metrics.histogram(
            "repro_ingest_patch_seconds",
            "wall time of the per-delta artifact carry-over pass",
        ).observe(outcome.patch_ms / 1e3)
        if snapshot_due:
            try:
                self.snapshot()
            except OSError:
                # Non-fatal: the delta is already durable in the WAL.
                self.metrics.counter(
                    "repro_snapshot_failures_total", "failed snapshot writes"
                ).inc()
        return {
            "version": outcome.version,
            "added": outcome.added,
            "affected": list(outcome.affected),
            "wal_seq": seq,
            "cache_evicted": evicted,
            "tier_purged": tier_purged,
            "artifacts": {
                "patched": outcome.patched,
                "rebuilt": outcome.rebuilt,
                "verify_failures": outcome.verify_failures,
            },
            "stage_ms": {"artifact_patch": outcome.patch_ms},
        }

    def snapshot(self) -> SnapshotInfo:
        """Write an atomic generation snapshot and compact the WAL.

        Everything at or below the snapshot's WAL watermark is covered
        by the snapshot, so the log keeps only the tail the next
        recovery still needs.  Raises :class:`RuntimeError` when no
        snapshot manager is configured.
        """
        if self.snapshots is None:
            raise RuntimeError("snapshots are not configured (no state dir)")
        with self._ingest_lock:
            wal_seq = self.wal.last_seq if self.wal is not None else 0
            info = self.snapshots.save(self.store, wal_seq=wal_seq)
            if self.wal is not None:
                self.wal.compact(info.wal_seq)
            self._deltas_since_snapshot = 0
        self.metrics.counter(
            "repro_snapshots_total", "generation snapshots written"
        ).inc()
        return info

    # -- internals -----------------------------------------------------------

    def _run(
        self, endpoint: str, request: SelectRequest, deadline: Deadline
    ) -> EngineResponse:
        if self.health.draining and not self._closed:
            raise EngineDraining("engine is draining for shutdown")
        if self._closed:
            raise EngineClosed("engine is closed")
        started = time.perf_counter()
        self.metrics.counter(
            "repro_requests_total", "requests by endpoint",
            labels={"endpoint": endpoint},
        ).inc()
        cost = request_cost(
            endpoint,
            request.m,
            k=getattr(request, "k", 0),
            stages=len(getattr(request, "stages", ())),
            reviews=self.store.stats()["reviews"],
        )
        try:
            slot = self.admission.admit(cost)
        except Overloaded as exc:
            self.metrics.counter(
                "repro_shed_total", "requests refused by admission control",
                labels={"reason": exc.reason},
            ).inc()
            self._shed_latency.observe(time.perf_counter() - started)
            raise
        with slot:
            try:
                artifacts = self._artifacts_for(request)
                request = self._pin_target(request, artifacts)
                key = self._cache_key(endpoint, request, artifacts)
                tags = tuple(
                    p.product_id for p in artifacts.instance.products
                )
                solved, source = self.cache.get_or_compute(
                    key,
                    lambda: self._compute(endpoint, request, artifacts, deadline),
                    deadline,
                    tags=tags,
                )
            except Exception:
                self.metrics.counter(
                    "repro_request_errors_total", "failed requests by endpoint",
                    labels={"endpoint": endpoint},
                ).inc()
                raise
        if source == "miss" and solved.from_tier:
            source = "tier"
        if self._recovery_pending:
            self._recovery_pending = False
            self.health.end_recovery()
        wall_ms = (time.perf_counter() - started) * 1e3
        self._latency[endpoint].observe(wall_ms / 1e3)
        if isinstance(solved, _SolvedNarrow):
            provenance = Provenance(
                cache=source,
                backend=solved.backend,
                corpus_version=artifacts.version,
                wall_ms=wall_ms,
                proven_optimal=solved.proven_optimal,
                fallback_depth=solved.fallback_depth,
                degraded=solved.degraded,
                breaker_skipped=solved.breaker_skipped,
                stage_timings=solved.stage_timings,
            )
        else:
            provenance = Provenance(
                cache=source,
                backend=request.algorithm,
                corpus_version=artifacts.version,
                wall_ms=wall_ms,
                degraded=solved.degraded,
                stage_timings=solved.timings,
                batch_size=solved.batch_size,
                batched_with=solved.batched_with,
                solver_counters=solved.counters,
            )
        return EngineResponse(result=solved.payload, provenance=provenance)

    def _artifacts_for(self, request: SelectRequest) -> InstanceArtifacts:
        target = request.target
        if target is None:
            target = self.store.default_target(
                request.max_comparisons, request.min_reviews
            )
        return self.store.artifacts(
            target,
            request.config(),
            max_comparisons=request.max_comparisons,
            min_reviews=request.min_reviews,
        )

    @staticmethod
    def _pin_target(
        request: SelectRequest, artifacts: InstanceArtifacts
    ) -> SelectRequest:
        """Replace ``target=None`` with the resolved default target id."""
        if request.target is not None:
            return request
        return replace(
            request, target=artifacts.instance.target.product_id
        )

    @staticmethod
    def _cache_key(
        endpoint: str, request: SelectRequest, artifacts: InstanceArtifacts
    ) -> tuple:
        # Keyed by the generation *chain*, not the version string: a
        # delta to product P changes only P's epoch, so entries for
        # untouched targets stay addressable across deltas (and, via the
        # chain token, across process restarts in the shared tier).
        key: tuple = (
            endpoint,
            artifacts.chain if artifacts.chain else artifacts.version,
            request.target,
            artifacts.comparative_ids,
            request.m,
            request.lam,
            request.mu,
            request.scheme,
            request.algorithm,
        )
        if isinstance(request, NarrowRequest):
            key += (request.k, request.stages, request.time_limit)
        return key

    def _tier_token(
        self, endpoint: str, request: SelectRequest, artifacts: InstanceArtifacts
    ) -> str | None:
        """The cross-process tier key, or None when the tier is off."""
        if self.tier is None:
            return None
        parts: tuple = (
            endpoint,
            request.target,
            artifacts.comparative_ids,
            request.m,
            request.lam,
            request.mu,
            request.scheme,
            request.algorithm,
        )
        if isinstance(request, NarrowRequest):
            parts += (request.k, request.stages, request.time_limit)
        return tier_key(artifacts.chain_token, *parts)

    @staticmethod
    def _encode_tier(solved) -> dict:
        """A JSON envelope for one solved value (both endpoint shapes)."""
        if isinstance(solved, _SolvedNarrow):
            return {
                "kind": "narrow",
                "payload": solved.payload,
                "backend": solved.backend,
                "proven_optimal": solved.proven_optimal,
                "fallback_depth": solved.fallback_depth,
                "degraded": solved.degraded,
                "breaker_skipped": list(solved.breaker_skipped),
                "stage_timings": dict(solved.stage_timings)
                if solved.stage_timings
                else None,
            }
        return {
            "kind": "select",
            "payload": solved.payload,
            "degraded": solved.degraded,
            "timings": dict(solved.timings) if solved.timings else None,
            "counters": dict(solved.counters) if solved.counters else None,
            "batch_size": solved.batch_size,
            "batched_with": solved.batched_with,
        }

    @staticmethod
    def _decode_tier(endpoint: str, value: dict):
        """The solved object for a tier envelope, or None if unusable."""
        try:
            if value["kind"] != endpoint:
                return None
            if endpoint == "narrow":
                return _SolvedNarrow(
                    payload=value["payload"],
                    backend=str(value["backend"]),
                    proven_optimal=bool(value["proven_optimal"]),
                    fallback_depth=int(value["fallback_depth"]),
                    degraded=bool(value["degraded"]),
                    breaker_skipped=tuple(value.get("breaker_skipped") or ()),
                    stage_timings=value.get("stage_timings"),
                    from_tier=True,
                )
            batch_size = value.get("batch_size")
            batched_with = value.get("batched_with")
            return _SolvedSelect(
                payload=value["payload"],
                degraded=bool(value["degraded"]),
                timings=value.get("timings"),
                from_tier=True,
                counters=value.get("counters"),
                batch_size=int(batch_size) if batch_size is not None else None,
                batched_with=(
                    int(batched_with) if batched_with is not None else None
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _compute(
        self,
        endpoint: str,
        request: SelectRequest,
        artifacts: InstanceArtifacts,
        deadline: Deadline,
    ):
        """One local-cache miss: consult the shared tier, else solve.

        A tier hit skips the worker pool entirely; a fresh solve is
        published back (tagged with the instance's product ids so a
        delta's purge reaches it).  Tier trouble never fails the
        request — the tier degrades to misses internally.
        """
        token = self._tier_token(endpoint, request, artifacts)
        if token is not None:
            cached = self.tier.get(token)
            if cached is not None:
                decoded = self._decode_tier(endpoint, cached)
                if decoded is not None:
                    return decoded
        solved = self._dispatch(endpoint, request, artifacts, deadline)
        if token is not None:
            self.tier.put(
                token,
                self._encode_tier(solved),
                tags=tuple(p.product_id for p in artifacts.instance.products),
            )
        return solved

    def _dispatch(
        self,
        endpoint: str,
        request: SelectRequest,
        artifacts: InstanceArtifacts,
        deadline: Deadline,
    ):
        """Run one cache miss on the worker pool, bounded by ``deadline``."""
        if self.batcher is not None and endpoint == "select":
            # Solver-aware grouping: any select misses of one corpus
            # generation may share GEMM-stacked pursuit rounds, so the
            # window coalesces across targets and parameters; the handler
            # partitions the sealed batch by concrete artifact identity.
            return self.batcher.submit(
                artifacts.version, (request, artifacts), deadline
            )
        future = self._pool.submit(self._solve, endpoint, request, artifacts)
        timeout = deadline.remaining() if deadline.bounded else None
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            raise DeadlineExceeded(
                f"deadline exceeded while solving {endpoint} request"
            ) from None

    def _solve_batch(self, key: tuple, requests: list) -> list:
        """Micro-batch handler: GEMM-stack the batchable groups.

        The sealed batch shares a corpus generation; requests that also
        share an artifact object (same target/scheme/lambda — budgets,
        ``mu``, and algorithm may differ) and run a batchable paper
        algorithm are solved in one :func:`select_many` call, stacking
        their per-item pursuits into multi-RHS rounds.  Everything else
        (baselines, lone members) solves individually; partitions run
        concurrently on the pool.
        """
        self.metrics.histogram(
            "repro_batch_size",
            "sealed micro-batch sizes (requests per handler call)",
        ).observe(len(requests))
        groups: dict[int, list[int]] = {}
        for position, (request, artifacts) in enumerate(requests):
            if request.algorithm in BATCHABLE_ALGORITHMS and artifacts.solver:
                groups.setdefault(id(artifacts), []).append(position)
        stacked = [members for members in groups.values() if len(members) >= 2]
        in_group = {position for members in stacked for position in members}
        group_futures = [
            (
                members,
                self._pool.submit(
                    self._solve_group, [requests[p] for p in members]
                ),
            )
            for members in stacked
        ]
        solo_futures = {
            position: self._pool.submit(self._solve, "select", request, artifacts)
            for position, (request, artifacts) in enumerate(requests)
            if position not in in_group
        }
        results: list = [None] * len(requests)
        for members, future in group_futures:
            for position, solved in zip(members, future.result()):
                results[position] = solved
        for position, future in solo_futures.items():
            results[position] = future.result()
        return results

    def _solve_group(self, group: list) -> list:
        """Solve one shared-artifact partition through the batch solver."""
        artifacts = group[0][1]
        jobs = [
            BatchJob(algorithm=request.algorithm, config=request.config())
            for request, _ in group
        ]
        selected = select_many(
            artifacts.instance,
            jobs,
            space=artifacts.space,
            solver_artifacts=artifacts.solver,
        )
        # One timer spans the whole group, so observe its totals once
        # rather than once per member.
        self._observe_stage_timings(selected[0].timings if selected else None)
        size = len(group)
        return [
            _SolvedSelect(
                payload=selection_payload(result),
                degraded=result.degraded,
                timings=result.timings,
                counters=result.counters,
                batch_size=size,
                batched_with=size - 1,
            )
            for result in selected
        ]

    def _solve(
        self, endpoint: str, request: SelectRequest, artifacts: InstanceArtifacts
    ):
        selected = self._select_result(request, artifacts)
        if endpoint == "select":
            return _SolvedSelect(
                payload=selection_payload(selected),
                degraded=selected.degraded,
                timings=selected.timings,
                counters=selected.counters,
            )
        assert isinstance(request, NarrowRequest)
        return self._narrow_result(request, artifacts, selected)

    def _select_result(
        self, request: SelectRequest, artifacts: InstanceArtifacts
    ) -> SelectionResult:
        config = request.config()
        selector = make_selector(request.algorithm)
        if isinstance(selector, (CompareSetsSelector, CompareSetsPlusSelector)):
            # The paper algorithms accept the store's precomputed space and
            # per-item solver artifacts (dedup + Gram reuse); baselines
            # build their own (they are cheap by construction).
            result = selector.select(
                artifacts.instance,
                config,
                space=artifacts.space,
                solver_artifacts=artifacts.solver or None,
            )
        else:
            result = selector.select(artifacts.instance, config)
        self._observe_stage_timings(result.timings)
        return result

    def _observe_stage_timings(self, timings: Mapping[str, float] | None) -> None:
        """Export one solve's per-stage kernel timings to /metrics."""
        if not timings:
            return
        for stage, ms in timings.items():
            self.metrics.histogram(
                "repro_solver_stage_seconds",
                "per-stage solver kernel wall time for cache-miss solves",
                labels={"stage": stage},
            ).observe(ms / 1e3)

    def _chain_for(
        self, request: NarrowRequest
    ) -> tuple[FallbackChain, list[str]]:
        """Build the fallback chain with breaker-guarded stage solvers.

        Named stages resolve through ``stage_solvers`` overrides first,
        then the built-in solver registry; ``(name, solver)`` pairs pass
        through for in-process callers.  Every stage is wrapped by its
        backend's circuit breaker except the terminal one, which must
        always be allowed to answer (a degraded answer beats none).
        """
        skipped: list[str] = []
        stages: list[tuple[str, StageSolver]] = []
        last = len(request.stages) - 1
        for position, stage in enumerate(request.stages):
            if isinstance(stage, str):
                name = stage
                solver = self._stage_solvers.get(name)
                if solver is None:
                    if name not in DEFAULT_STAGES:
                        raise InvalidRequest(
                            f"unknown fallback stage {name!r}; "
                            f"one of {sorted(DEFAULT_STAGES)}"
                        )
                    solver = builtin_stage(name, request.time_limit)
            else:
                name, solver = stage
                name = str(name)
            stages.append(
                (
                    name,
                    self.breakers.wrap(
                        name, solver, skipped=skipped, gate=position != last
                    ),
                )
            )
        return FallbackChain(stages, time_limit=request.time_limit), skipped

    def _narrow_result(
        self,
        request: NarrowRequest,
        artifacts: InstanceArtifacts,
        selected: SelectionResult,
    ) -> _SolvedNarrow:
        config = request.config()
        graph = build_item_graph(selected, config)
        k = min(request.k, artifacts.instance.num_items)
        chain, skipped = self._chain_for(request)
        outcome = chain.solve(graph.weights, k)
        kept = [0] + sorted(v for v in outcome.solution.selected if v != 0)
        narrowed = selected.restricted_to_items(kept)
        payload = {
            "k": k,
            "core_product_ids": [
                artifacts.instance.products[i].product_id for i in kept
            ],
            "weight": outcome.solution.weight,
            "attempts": [
                {"backend": a.backend, "status": a.status}
                for a in outcome.attempts
            ],
            "selection": selection_payload(narrowed),
        }
        depth = len(outcome.attempts) - 1
        self.metrics.histogram(
            "repro_fallback_depth", "stages tried before a narrow answer"
        ).observe(depth)
        return _SolvedNarrow(
            payload=payload,
            backend=outcome.backend,
            proven_optimal=outcome.solution.proven_optimal,
            fallback_depth=depth,
            degraded=outcome.degraded or selected.degraded,
            breaker_skipped=tuple(skipped),
            stage_timings=selected.timings,
        )


def build_durable_engine(
    state_dir: str | Path,
    *,
    corpus_path: str | Path | None = None,
    cache_tier: str | SharedCacheTier | None = None,
    snapshot_every: int = 32,
    keep_snapshots: int = 2,
    wal_fsync: bool = True,
    restarts: int = 0,
    jitter_seed: int | None = None,
    **engine_kwargs,
) -> SelectionEngine:
    """Open (or recover) durable state under ``state_dir`` and build an
    engine on top of it.

    The one-stop constructor for durable serving — the CLI's
    ``--state-dir`` path and the supervisor's child process both call
    it.  ``cache_tier`` may be ``None``, ``"file"`` (a FileBackend under
    ``state_dir/tier``), ``"memory"``, or a ready
    :class:`SharedCacheTier`.  ``restarts`` is stamped into the recovery
    provenance so ``/healthz`` can report how many times the supervisor
    has brought the engine back.
    """
    from repro.serve.cachetier import FileBackend, InMemoryBackend
    from repro.serve.snapshot import open_durable_store

    state_dir = Path(state_dir)
    store, wal, snapshots, recovery = open_durable_store(
        state_dir,
        corpus_path=corpus_path,
        keep_snapshots=keep_snapshots,
        wal_fsync=wal_fsync,
    )
    recovery.restarts = restarts
    tier = cache_tier
    if tier == "file":
        tier = SharedCacheTier(FileBackend(state_dir / "tier"))
    elif tier == "memory":
        tier = SharedCacheTier(InMemoryBackend())
    elif isinstance(tier, str):
        raise ValueError(
            f"unknown cache tier {tier!r}; one of 'file', 'memory'"
        )
    jitter = None
    if jitter_seed is not None:
        jitter = RetryJitter(seed=jitter_seed)
    return SelectionEngine(
        store,
        tier=tier,
        wal=wal,
        snapshots=snapshots,
        snapshot_every=snapshot_every,
        recovery=recovery,
        jitter=jitter,
        **engine_kwargs,
    )
