"""The serving health state machine: healthy → degraded → draining.

Load balancers and operators need one coarse signal, not a metrics
dashboard.  :class:`HealthMonitor` computes it:

* **healthy** — accepting work, no probe firing.
* **degraded** — still accepting work, but some probe reports trouble
  (an open circuit breaker, a saturated admission queue).  ``/healthz``
  stays 200 so the instance keeps taking traffic, with the reasons in
  the body for operators.
* **draining** — graceful shutdown has begun: new work is refused with
  503 (so balancers fail over), in-flight requests finish, then the
  process exits.  Draining is sticky — once entered it is never left.
* **recovering** — the process restarted and is rebuilding state
  (snapshot load, WAL replay, cache re-warm).  Requests are served
  (possibly slower: cold local cache), so ``/healthz`` stays 200, but
  the state is surfaced so operators and dashboards can tell a fresh
  recovery from steady state.  Unlike draining it is reversible:
  :meth:`HealthMonitor.end_recovery` returns to derived health.

Degradation is *derived*, not stored: probes are zero-arg callables
returning a reason string (or ``None``), registered by the engine, so
the state can never go stale.  The numeric encoding for the
``repro_health_state`` gauge is healthy=0, degraded=1, draining=2,
recovering=3.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"
RECOVERING = "recovering"

_STATE_CODES = {HEALTHY: 0, DEGRADED: 1, DRAINING: 2, RECOVERING: 3}

#: A probe returns a human-readable reason when unhealthy, else None.
HealthProbe = Callable[[], "str | None"]


class HealthMonitor:
    """Derived health state with explicit, irreversible draining."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._draining = False
        self._recovering = False
        self._probes: list[HealthProbe] = []

    def add_probe(self, probe: HealthProbe) -> None:
        """Register a degradation probe (evaluated on every read)."""
        with self._lock:
            self._probes.append(probe)

    def start_draining(self) -> None:
        """Enter the terminal draining state (idempotent)."""
        with self._lock:
            self._draining = True

    def begin_recovery(self) -> None:
        """Mark the instance as rebuilding state after a restart."""
        with self._lock:
            self._recovering = True

    def end_recovery(self) -> None:
        """Recovery finished: return to derived (probe-based) health."""
        with self._lock:
            self._recovering = False

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def recovering(self) -> bool:
        with self._lock:
            return self._recovering

    def reasons(self) -> tuple[str, ...]:
        """Every firing probe's reason (empty when fully healthy)."""
        with self._lock:
            probes = list(self._probes)
        found = []
        for probe in probes:
            reason = probe()
            if reason:
                found.append(reason)
        return tuple(found)

    def state(self) -> str:
        if self.draining:
            return DRAINING
        if self.recovering:
            return RECOVERING
        return DEGRADED if self.reasons() else HEALTHY

    def code(self) -> int:
        """The state as the ``repro_health_state`` gauge value."""
        return _STATE_CODES[self.state()]

    def view(self) -> dict[str, object]:
        """A JSON-ready snapshot for ``/healthz``."""
        state = self.state()
        payload: dict[str, object] = {"state": state}
        if state == DEGRADED:
            payload["reasons"] = list(self.reasons())
        return payload
